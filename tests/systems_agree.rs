//! Cross-system equivalence: every evaluated system — LogGrep, LogGrep-SP,
//! gzip+grep, CLP, MiniEs — must return exactly the same lines for every
//! workload's queries. This is what makes the latency comparisons of the
//! benchmark harness meaningful.

use baselines::{Clp, GzipGrep, LogGrepSystem, LogSystem, MiniEs};

fn systems() -> Vec<Box<dyn LogSystem>> {
    vec![
        Box::new(GzipGrep),
        Box::new(Clp {
            segment_lines: 512,
        }),
        Box::new(MiniEs {
            flush_docs: 256,
            merge_factor: 4,
        }),
        Box::new(LogGrepSystem::sp()),
        Box::new(LogGrepSystem::full()),
    ]
}

fn check_log(spec: &workloads::LogSpec, bytes: usize) {
    let raw = spec.generate(11, bytes);
    let reference_sys = GzipGrep;
    let ref_stored = reference_sys.compress(&raw).unwrap();
    let reference = reference_sys.open(&ref_stored).unwrap();

    for sys in systems() {
        let stored = sys
            .compress(&raw)
            .unwrap_or_else(|e| panic!("{} compress failed on {}: {e}", sys.name(), spec.name));
        let archive = sys
            .open(&stored)
            .unwrap_or_else(|e| panic!("{} open failed on {}: {e}", sys.name(), spec.name));
        for q in &spec.queries {
            let got = archive
                .query(q)
                .unwrap_or_else(|e| panic!("{} query `{q}` failed on {}: {e}", sys.name(), spec.name));
            let want = reference.query(q).unwrap();
            assert_eq!(
                got,
                want,
                "{} vs reference on {} query `{q}`: {} vs {} lines",
                sys.name(),
                spec.name,
                got.len(),
                want.len()
            );
            assert!(
                !want.is_empty(),
                "{}: query `{q}` matched nothing — workload bug",
                spec.name
            );
        }
    }
}

#[test]
fn production_logs_agree() {
    for spec in workloads::production_logs() {
        check_log(&spec, 96 * 1024);
    }
}

#[test]
fn public_logs_agree() {
    for spec in workloads::public_logs() {
        check_log(&spec, 96 * 1024);
    }
}

#[test]
fn extra_adhoc_queries_agree() {
    // Beyond each log's primary query, throw generic probes at a few logs.
    let probes = [
        "ERROR",
        "INFO not ERROR",
        "11.187.3",
        "blk_*",
        "a and b or c",
        "zz-absent-zz",
        "0",
    ];
    for spec in workloads::all_logs().into_iter().step_by(7) {
        let raw = spec.generate(23, 48 * 1024);
        let ref_sys = GzipGrep;
        let reference = ref_sys.open(&ref_sys.compress(&raw).unwrap()).unwrap();
        for sys in systems() {
            let archive = sys.open(&sys.compress(&raw).unwrap()).unwrap();
            for q in probes {
                assert_eq!(
                    archive.query(q).unwrap(),
                    reference.query(q).unwrap(),
                    "{} on {} query `{q}`",
                    sys.name(),
                    spec.name
                );
            }
        }
    }
}
