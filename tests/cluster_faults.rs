//! Acceptance: the fault-tolerant cluster vs the single-node engine.
//!
//! The oracle is the real end-to-end single-node LogGrep system run over
//! the merged log. Under a seeded fault schedule that kills one of three
//! replicas per shard and delays another, the cluster must return the
//! *exact* oracle result with `complete == true`; with a whole shard
//! partitioned away it must return `complete == false` plus the exact
//! results from every surviving shard. Both are asserted deterministically
//! across three seeds.

use baselines::{LogSystem, LogGrepSystem};
use cluster::{Cluster, ClusterConfig, FaultPlan};
use loggrep::query::lang::Query;
use loggrep::LogGrepConfig;
use logparse::DEFAULT_DELIMS;

const SEEDS: [u64; 3] = [1, 2, 3];
const BLOCK_BYTES: usize = 8 * 1024;

fn merged_log() -> Vec<u8> {
    // A realistic workload log, large enough for a few dozen blocks.
    workloads::all_logs()[0].generate(17, 192 * 1024)
}

fn single_node_oracle(raw: &[u8], query: &str) -> Vec<Vec<u8>> {
    let sys = LogGrepSystem::full();
    let archive = sys.open(&sys.compress(raw).unwrap()).unwrap();
    archive.query(query).unwrap()
}

#[test]
fn replicated_cluster_equals_single_node_under_faults() {
    let raw = merged_log();
    let queries = ["ERROR", "INFO", "0"];
    for seed in SEEDS {
        let cfg = ClusterConfig {
            replication: 3,
            shards: 8,
            faults: FaultPlan::seeded(seed),
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, BLOCK_BYTES).unwrap();

        // Kill one replica of every shard, slow another down 20x.
        let dead = (seed as usize) % 3;
        c.crash_node(dead);
        c.set_slow_node((dead + 1) % 3, true);

        for q in queries {
            let result = c.query(q).unwrap();
            assert!(result.complete, "seed {seed} query `{q}` must be complete");
            let want = single_node_oracle(&raw, q);
            assert!(!want.is_empty(), "query `{q}` matched nothing — test bug");
            assert_eq!(
                result.lines, want,
                "seed {seed} query `{q}`: cluster under faults vs single node"
            );
        }
    }
}

#[test]
fn partitioned_shard_reports_partial_but_exact_survivors() {
    let raw = merged_log();
    for seed in SEEDS {
        let cfg = ClusterConfig {
            replication: 1,
            shards: 6,
            faults: FaultPlan::seeded(seed),
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, BLOCK_BYTES).unwrap();
        let victim = (seed as usize) % 3;
        c.partition_node(victim);

        // Expected: per-block oracle over the blocks whose only replica
        // is not the partitioned node, in block order.
        let map = *c.shard_map();
        let q = Query::parse("ERROR").unwrap();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (i, block) in cluster::split_blocks(&raw, BLOCK_BYTES).iter().enumerate() {
            if map.replicas(map.shard_of_block(i))[0] == victim {
                continue;
            }
            expected.extend(
                loggrep::engine::split_lines(block)
                    .into_iter()
                    .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
                    .map(|l| l.to_vec()),
            );
        }
        let full = single_node_oracle(&raw, "ERROR");
        assert!(
            expected.len() < full.len(),
            "seed {seed}: the victim node must own blocks for this test to bite"
        );

        let result = c.query("ERROR").unwrap();
        assert!(
            !result.complete,
            "seed {seed}: losing a whole shard must be reported"
        );
        assert_eq!(
            result.lines, expected,
            "seed {seed}: surviving shards must be exact"
        );
        assert!(result.failed_shards().count() >= 1, "seed {seed}");
    }
}
