//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! parking_lot calling convention (`lock()` returns the guard directly,
//! poisoning is transparent), backed by `std::sync`.

use std::fmt;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with the parking_lot calling convention.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
