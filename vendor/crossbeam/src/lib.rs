//! Offline stand-in for the `crossbeam` crate: only the scoped-thread API
//! this workspace uses, implemented on top of `std::thread::scope`.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to [`scope`]'s closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; joining returns the closure's value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing the environment can
    /// be spawned; all threads are joined before `scope` returns. Returns
    /// `Err` if the closure (or an unjoined child) panicked, matching the
    /// crossbeam signature.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let counter = &counter;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope ok");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(total, (0..8).map(|i| i * 2).sum());
    }

    #[test]
    fn panic_surfaces_as_err() {
        let r = crate::thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
