//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // Exclusive.
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec_lengths");
        let s = vec(any::<u8>(), 2..5);
        let mut lens = [0usize; 8];
        for _ in 0..500 {
            lens[s.sample(&mut rng).len()] += 1;
        }
        assert_eq!(lens[0] + lens[1], 0);
        assert!(lens[2] > 0 && lens[3] > 0 && lens[4] > 0);
        assert_eq!(lens[5] + lens[6] + lens[7], 0);
    }

    #[test]
    fn exact_size() {
        let mut rng = TestRng::deterministic("vec_exact");
        assert_eq!(vec(any::<u8>(), 7).sample(&mut rng).len(), 7);
    }
}
