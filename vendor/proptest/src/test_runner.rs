//! Test-runner support types: configuration, RNG, and case errors.

use std::fmt;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (carried out of the test body by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic generator whose stream depends only on `label`
    /// (typically the test function name), so every test has an independent
    /// but reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the label.
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_give_distinct_streams() {
        let a = TestRng::deterministic("a").next_u64();
        let b = TestRng::deterministic("b").next_u64();
        assert_ne!(a, b);
        assert_eq!(a, TestRng::deterministic("a").next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }
}
