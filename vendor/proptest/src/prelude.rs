//! The proptest prelude: everything tests conventionally import.

pub use crate::strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
