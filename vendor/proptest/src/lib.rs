//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, [`strategy::Just`], [`prop_oneof!`], [`collection::vec`],
//! `any::<T>()`, integer-range strategies, and string strategies from a
//! small character-class regex subset (`"[a-z]{1,5}"`).
//!
//! Failing inputs are *not* shrunk — the failing case is reported verbatim.
//! Generation is deterministic: every test function uses a fixed seed, so
//! CI failures reproduce locally.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Runs a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let mut case_desc: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let sampled = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        case_desc.push(format!("{} = {:?}", stringify!($arg), &sampled));
                        let $arg = sampled;
                    )*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, case_desc.join(", ")
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// the offending inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Unions heterogeneous strategies with a common value type, choosing one
/// uniformly per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
