//! String generation from a character-class regex subset.
//!
//! Supports patterns of the form used by this workspace's tests: sequences
//! of atoms, each a literal character or a character class `[...]`
//! (with `a-z`-style ranges and literal members), optionally followed by a
//! `{n}` or `{lo,hi}` repetition. Everything else is treated literally.

use crate::test_runner::TestRng;

/// Samples one string matching the pattern subset.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        let (choices, next) = if chars[i] == '[' {
            let (class, after) = parse_class(&chars, i + 1);
            (class, after)
        } else {
            (vec![chars[i]], i + 1)
        };
        let (lo, hi, after_rep) = parse_repeat(&chars, next);
        i = after_rep;
        let span = (hi - lo + 1) as u64;
        let n = lo + rng.below(span) as usize;
        for _ in 0..n {
            let pick = rng.below(choices.len() as u64) as usize;
            out.push(choices[pick]);
        }
    }
    out
}

/// Parses a character class body starting just past `[`; returns the member
/// characters and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut members = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        // `x-y` range (with `-` neither first nor before `]`).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            for c in a..=b {
                if let Some(c) = char::from_u32(c) {
                    members.push(c);
                }
            }
            i += 3;
        } else {
            members.push(chars[i]);
            i += 1;
        }
    }
    assert!(!members.is_empty(), "empty character class in pattern");
    (members, i + 1) // Skip `]`.
}

/// Parses an optional `{n}` / `{lo,hi}` at `i`; returns `(lo, hi, next)`.
fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let mut j = i + 1;
    let mut lo = 0usize;
    while j < chars.len() && chars[j].is_ascii_digit() {
        lo = lo * 10 + chars[j] as usize - '0' as usize;
        j += 1;
    }
    let mut hi = lo;
    if j < chars.len() && chars[j] == ',' {
        j += 1;
        hi = 0;
        while j < chars.len() && chars[j].is_ascii_digit() {
            hi = hi * 10 + chars[j] as usize - '0' as usize;
            j += 1;
        }
    }
    assert!(j < chars.len() && chars[j] == '}', "unterminated repetition");
    assert!(lo <= hi, "bad repetition bounds");
    (lo, hi, j + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_ranges_and_repeats() {
        let mut rng = TestRng::deterministic("string_pattern");
        for _ in 0..500 {
            let s = sample_pattern("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    #[test]
    fn literals_and_stars() {
        let mut rng = TestRng::deterministic("string_literal");
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
        let s = sample_pattern("[ab*]{0,6}", &mut rng);
        assert!(s.len() <= 6);
        assert!(s.chars().all(|c| matches!(c, 'a' | 'b' | '*')));
    }

    #[test]
    fn exact_repeat() {
        let mut rng = TestRng::deterministic("string_exact");
        assert_eq!(sample_pattern("x{3}", &mut rng), "xxx");
        let s = sample_pattern("[0-9]{6}", &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.chars().all(|c| c.is_ascii_digit()));
    }
}
