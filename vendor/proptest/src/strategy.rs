//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// cloneable sampler.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Object-safe form of [`Strategy`], used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<Rc<dyn DynStrategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given branches (must be nonempty).
    pub fn new(branches: Vec<Rc<dyn DynStrategy<Value = T>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self { branches }
    }
}

/// Boxes a strategy for use in a [`Union`], keeping its value type
/// concrete (used by `prop_oneof!`; an `as dyn` cast with an inferred
/// `Value = _` would defer resolution past closure type-checking).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Rc<dyn DynStrategy<Value = S::Value>> {
    Rc::new(strategy)
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].sample_dyn(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (`any::<u8>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// String strategies from a character-class regex subset ("[a-z]{1,5}").
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::deterministic("just_and_map");
        let s = Just(3u32).prop_map(|v| v * 2);
        assert_eq!(s.sample(&mut rng), 6);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5usize..9).sample(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn union_uses_all_branches() {
        let mut rng = TestRng::deterministic("union");
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("tuples");
        let (a, b) = (Just(1u8), 0usize..4).sample(&mut rng);
        assert_eq!(a, 1);
        assert!(b < 4);
    }
}
