//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the bench targets use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a straightforward
//! warmup-then-sample loop reporting the median per-iteration time (and
//! throughput when configured); there is no statistical analysis, HTML
//! report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, self.warm_up, self.measurement, self.sample_size, None, f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Throughput used to report rates alongside times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the throughput basis for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.criterion.warm_up,
            self.criterion.measurement,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations to run per sample (chosen from warmup timing).
    iters_per_sample: u64,
    /// Collected per-sample mean iteration times, in nanoseconds.
    samples: Vec<f64>,
    /// Phase control: warmup estimates the per-iteration cost first.
    warm_up: Duration,
    sample_count: usize,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: run until the warmup budget is spent, estimating cost.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Split the measurement budget across samples.
        let per_sample = self.measurement.as_secs_f64() / self.sample_count as f64;
        self.iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            self.samples
                .push(elapsed * 1e9 / self.iters_per_sample as f64);
        }
    }
}

/// Formats a nanosecond figure with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        warm_up,
        sample_count,
        measurement,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / (median / 1e9) / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / (median / 1e9))
        }
        None => String::new(),
    };
    println!(
        "{label:<40} time: [{} {} {}]{rate}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_output() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &7u32, |b, v| {
            b.iter(|| v + 1)
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
