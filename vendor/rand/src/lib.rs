//! Offline stand-in for the `rand` crate.
//!
//! The build environment resolves crates without network access, so this
//! workspace vendors the small subset of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is xoshiro256** seeded via splitmix64 — high-quality,
//! deterministic, and stable across platforms. It does *not* reproduce the
//! upstream `StdRng` stream (upstream is ChaCha-based); determinism for a
//! given seed is all this workspace relies on.

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: spans
                // are tiny compared to 2^64, so bias is negligible for
                // synthetic workload generation.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on random generators (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Pre-packaged generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let x = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 16 values should appear");
    }

    #[test]
    fn fill_bytes_fills() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
