//! Scale-out demo (the paper's §8 future work): shard a day's logs across a
//! simulated cluster, then compare single-node and multi-node query times.
//!
//! Run with: `cargo run --release --example scale_out`

use cluster::{Cluster, ClusterConfig, FaultPlan};
use loggrep::LogGrepConfig;
use std::time::Instant;

fn main() {
    let spec = workloads::by_name("Log G").expect("catalog has Log G");
    let raw = spec.generate(99, 16 << 20);
    println!(
        "dataset: {} ({:.1} MiB)\n",
        spec.name,
        raw.len() as f64 / (1 << 20) as f64
    );

    let query = &spec.queries[0];
    for nodes in [1usize, 2, 4, 8] {
        let mut c = Cluster::new(nodes, LogGrepConfig::default()).expect("nonzero nodes");
        let t0 = Instant::now();
        let blocks = c.ingest(&raw, 2 << 20).expect("clean input");
        let ingest = t0.elapsed();

        let t1 = Instant::now();
        let result = c.query(query).expect("valid query");
        let qtime = t1.elapsed();

        println!(
            "{nodes} node(s): {blocks} blocks, ingest {ingest:?}, query `{query}` -> {} hit(s) in {qtime:?} (stored {:.1} MiB)",
            result.lines.len(),
            c.stored_bytes() as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\n(ingest parallelizes per block; queries scatter-gather across nodes; \
         wall-clock speedups require more than the {} core(s) available here)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Fault tolerance: replicate 2x, kill a node mid-flight, and watch the
    // query fall back to the surviving replicas with an identical answer.
    println!("\n-- fault tolerance (replication 2, one node crashed) --");
    let mut c = Cluster::with_config(ClusterConfig {
        replication: 2,
        faults: FaultPlan::seeded(7),
        ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
    })
    .expect("valid topology");
    c.ingest(&raw, 2 << 20).expect("clean input");
    let healthy = c.query(query).expect("valid query");
    c.crash_node(1);
    let degraded = c.query(query).expect("valid query");
    println!(
        "healthy: {} hit(s), complete={} | node 1 down: {} hit(s), complete={}",
        healthy.lines.len(),
        healthy.complete,
        degraded.lines.len(),
        degraded.complete,
    );
    assert_eq!(healthy.lines, degraded.lines, "replicas cover the crash");
}
