//! Scale-out demo (the paper's §8 future work): shard a day's logs across a
//! simulated cluster, then compare single-node and multi-node query times.
//!
//! Run with: `cargo run --release --example scale_out`

use cluster::Cluster;
use loggrep::LogGrepConfig;
use std::time::Instant;

fn main() {
    let spec = workloads::by_name("Log G").expect("catalog has Log G");
    let raw = spec.generate(99, 16 << 20);
    println!(
        "dataset: {} ({:.1} MiB)\n",
        spec.name,
        raw.len() as f64 / (1 << 20) as f64
    );

    let query = &spec.queries[0];
    for nodes in [1usize, 2, 4, 8] {
        let mut c = Cluster::new(nodes, LogGrepConfig::default());
        let t0 = Instant::now();
        let blocks = c.ingest(&raw, 2 << 20).expect("clean input");
        let ingest = t0.elapsed();

        let t1 = Instant::now();
        let result = c.query(query).expect("valid query");
        let qtime = t1.elapsed();

        println!(
            "{nodes} node(s): {blocks} blocks, ingest {ingest:?}, query `{query}` -> {} hit(s) in {qtime:?} (stored {:.1} MiB)",
            result.lines.len(),
            c.stored_bytes() as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\n(ingest parallelizes per block; queries scatter-gather across nodes; \
         wall-clock speedups require more than the {} core(s) available here)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
}
