//! Explores the Equation-1 cost model (§6): measures all five systems on
//! one workload, prints the per-TB cost breakdown, and sweeps the query
//! frequency to find where each trade-off flips.
//!
//! Run with: `cargo run --release --example cost_explorer`

use baselines::{Clp, GzipGrep, LogGrepSystem, LogSystem, MiniEs};
use bench::{measure_system, CostModel};

fn main() {
    let spec = workloads::by_name("Log B").expect("catalog has Log B");
    let raw = spec.generate(7, 2 << 20);
    println!(
        "measuring all systems on {} ({:.1} MiB) ...\n",
        spec.name,
        raw.len() as f64 / (1 << 20) as f64
    );

    let systems: Vec<Box<dyn LogSystem>> = vec![
        Box::new(GzipGrep),
        Box::new(Clp::default()),
        Box::new(MiniEs::default()),
        Box::new(LogGrepSystem::sp()),
        Box::new(LogGrepSystem::full()),
    ];
    let measurements: Vec<_> = systems
        .iter()
        .map(|sys| {
            measure_system(sys.as_ref(), &spec.name, &raw, &spec.queries[0], 3)
                .expect("measurement")
        })
        .collect();

    let model = CostModel::default();
    println!(
        "{:<12} {:>8} {:>10} {:>12}  {:>9} {:>10} {:>8} {:>9}",
        "system", "ratio", "MB/s", "query-ms", "storage$", "compress$", "query$", "total$/TB"
    );
    for m in &measurements {
        let cost = model.cost_per_tb(m.ratio(), m.speed_mb_s(), m.query_secs_per_tb());
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>12.2}  {:>9.2} {:>10.4} {:>8.4} {:>9.2}",
            m.system,
            m.ratio(),
            m.speed_mb_s(),
            m.query_secs * 1e3,
            cost.storage,
            cost.compression,
            cost.query,
            cost.total()
        );
    }

    // Sweep query frequency: at what point does the low-latency system (ES)
    // become cheaper than LogGrep? (§6.1 reports 7.4k-542k for production.)
    let lg = &measurements[4];
    let es = &measurements[2];
    println!("\nquery-frequency sweep (total $/TB):");
    println!("{:>12} {:>12} {:>12}", "frequency", "LogGrep", "ES");
    for freq in [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0] {
        let m = CostModel {
            query_frequency: freq,
            ..CostModel::default()
        };
        let lg_cost = m
            .cost_per_tb(lg.ratio(), lg.speed_mb_s(), lg.query_secs_per_tb())
            .total();
        let es_cost = m
            .cost_per_tb(es.ratio(), es.speed_mb_s(), es.query_secs_per_tb())
            .total();
        println!("{freq:>12.0} {lg_cost:>12.2} {es_cost:>12.2}");
    }
    match model.break_even_frequency(
        (lg.ratio(), lg.speed_mb_s(), lg.query_secs_per_tb()),
        (es.ratio(), es.speed_mb_s(), es.query_secs_per_tb()),
    ) {
        Some(f) => println!("\nES overtakes LogGrep above ~{f:.0} queries per retention period"),
        None => println!("\nES never overtakes LogGrep at these measurements"),
    }
}
