//! Ablation tour (§6.3): runs the same query under every LogGrep variant
//! and shows, via the execution statistics, *why* each technique helps —
//! which Capsules get decompressed, what the stamps reject, and what the
//! query plan looks like (`Archive::explain`).
//!
//! Run with: `cargo run --release --example ablation_tour`

use loggrep::{LogGrep, LogGrepConfig};
use std::time::Instant;

fn main() {
    let spec = workloads::by_name("Log B").expect("catalog has Log B");
    let raw = spec.generate(31, 4 << 20);
    let query = "RequestId:5EA6F82F4A";
    println!(
        "workload: {} ({:.1} MiB), query: `{query}`\n",
        spec.name,
        raw.len() as f64 / (1 << 20) as f64
    );

    // First, what the planner sees (no decompression at all).
    let full = LogGrep::new(LogGrepConfig::default())
        .compress_to_archive(&raw)
        .expect("clean input");
    println!("{}", full.explain(query).expect("valid query"));

    let variants: Vec<(&str, LogGrepConfig)> = vec![
        ("full", LogGrepConfig::default()),
        ("LogGrep-SP", LogGrepConfig::sp()),
        ("w/o real", LogGrepConfig::without_real()),
        ("w/o nomi", LogGrepConfig::without_nominal()),
        ("w/o stamp", LogGrepConfig::without_stamps()),
        ("w/o fixed", LogGrepConfig::without_fixed()),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "variant", "hits", "time-ms", "decomp-KiB", "capsules", "stamps"
    );
    for (label, config) in variants {
        let engine = LogGrep::new(config);
        let archive = engine.compress_to_archive(&raw).expect("clean input");
        let t = Instant::now();
        let result = archive.query(query).expect("valid query");
        println!(
            "{label:<12} {:>10} {:>10.2} {:>12} {:>10} {:>8}",
            result.lines.len(),
            t.elapsed().as_secs_f64() * 1e3,
            result.stats.bytes_decompressed / 1024,
            result.stats.capsules_decompressed,
            result.stats.stamp_rejections,
        );
    }
    println!("\n(every variant returns identical lines; the cost of getting them differs)");
}
