//! Quickstart: compress a log block with LogGrep and grep it.
//!
//! Run with: `cargo run --release --example quickstart`

use loggrep::{LogGrep, LogGrepConfig};

fn main() {
    // A small log block in the style of the paper's Figure 1.
    let raw = b"\
T134 bk.FF.13 read\n\
T169 state: SUC#1604\n\
T179 bk.C5.15 read\n\
T181 state: ERR#1623\n\
T190 bk.0A.02 read\n\
T204 state: SUC#1611\n\
T219 state: ERR#1604\n";

    // Compress: parse static patterns, extract runtime patterns, build
    // stamped Capsules, pack into a CapsuleBox.
    let engine = LogGrep::new(LogGrepConfig::default());
    let (boxed, stats) = engine.compress_with_stats(raw).expect("clean text input");
    println!(
        "compressed {} bytes -> {} bytes ({} groups, {} capsules)",
        stats.raw_size,
        stats.compressed_size,
        stats.groups,
        stats.capsules
    );

    // The serialized form is what you would write to object storage.
    let bytes = boxed.to_bytes();
    let archive = loggrep::Archive::from_bytes(&bytes).expect("self-produced bytes");

    // Grep-like queries: search strings joined by and/or/not; `*` matches
    // within a single token.
    for query in ["read", "state: ERR", "ERR#16 and state", "bk.*.15"] {
        let result = archive.query(query).expect("valid query");
        println!("\n$ loggrep query '{query}'   -> {} hit(s)", result.lines.len());
        for line in result.lines_utf8() {
            println!("  {line}");
        }
        println!(
            "  [capsules decompressed: {}, stamp rejections: {}]",
            result.stats.capsules_decompressed, result.stats.stamp_rejections
        );
    }
}
