//! A near-line debugging session in *refining mode* (§3, §6.3): an engineer
//! starts from a broad query and narrows it step by step. The query cache
//! makes each repeated prefix of the session cheap, and the per-query
//! statistics show how runtime patterns and stamps limit decompression.
//!
//! Run with: `cargo run --release --example debugging_session`

use loggrep::{LogGrep, LogGrepConfig};
use std::time::Instant;

fn main() {
    // "Log A" stands in for a production request log; pretend a customer
    // reported failing closed-state requests this morning.
    let spec = workloads::by_name("Log A").expect("catalog has Log A");
    let raw = spec.generate(2024, 8 << 20);
    println!(
        "ingesting {:.1} MiB of request logs ...",
        raw.len() as f64 / (1 << 20) as f64
    );

    let engine = LogGrep::new(LogGrepConfig::default());
    let t = Instant::now();
    let archive = engine.compress_to_archive(&raw).expect("clean text input");
    println!(
        "compressed in {:?} ({:.1}x ratio)\n",
        t.elapsed(),
        raw.len() as f64 / archive.capsule_box().compressed_size() as f64
    );

    // The refining session: each command builds on the previous one. The
    // engine caches per-command results, so re-evaluated prefixes are free.
    let session = [
        "ERROR",
        "ERROR and state:REQ_ST_CLOSED",
        "ERROR and state:REQ_ST_CLOSED and 20012",
        "ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D21AD0",
    ];
    for command in session {
        let t = Instant::now();
        let result = archive.query(command).expect("valid query");
        println!("engineer> {command}");
        println!(
            "  {} hit(s) in {:?}  [decompressed {} capsule(s) / {} KiB, cache {}]",
            result.lines.len(),
            t.elapsed(),
            result.stats.capsules_decompressed,
            result.stats.bytes_decompressed / 1024,
            if result.stats.cache_hit { "hit" } else { "miss" }
        );
        if let Some(line) = result.lines_utf8().first() {
            println!("  e.g. {line}");
        }
        println!();
    }

    // Re-running the final command is a pure cache hit.
    let final_cmd = session[session.len() - 1];
    let t = Instant::now();
    let again = archive.query(final_cmd).expect("valid query");
    println!(
        "re-run of the final command: {:?} (cache {})",
        t.elapsed(),
        if again.stats.cache_hit { "hit" } else { "miss" }
    );
}
