//! Pattern gallery: runs the §4.1 extractors over several workloads and
//! prints what LogGrep discovered — static patterns, runtime patterns with
//! their Capsule stamps, and nominal dictionaries.
//!
//! Run with: `cargo run --release --example pattern_gallery`

use loggrep::extract::{duplication_rate, extract_vector, Extraction};
use loggrep::LogGrepConfig;
use logparse::{Parser, Piece};

fn main() {
    let config = LogGrepConfig::default();
    for name in ["Log A", "Log G", "Hdfs", "Ssh"] {
        let spec = workloads::by_name(name).expect("catalog name");
        let raw = spec.generate(11, 512 * 1024);
        let lines: Vec<&[u8]> = loggrep::engine::split_lines(&raw);
        let parser = Parser::train(&config.parser, lines.iter().copied());
        let parsed = parser.parse_all(lines.iter().copied());

        println!("==== {name} ({} lines) ====", parsed.total_lines);
        for (tid, group) in parsed.groups.iter().enumerate() {
            if group.rows() == 0 || tid == logparse::CATCH_ALL as usize {
                continue;
            }
            let template = &parsed.templates[tid];
            println!("\nstatic pattern [{} rows]: {}", group.rows(), template.display());

            let mut slot = 0usize;
            for piece in template.pieces() {
                if !matches!(piece, Piece::Slot(_)) {
                    continue;
                }
                let values = &group.vars[slot];
                let rate = duplication_rate(values);
                match extract_vector(values, &config, (tid * 97 + slot) as u64) {
                    Extraction::Real(ex) => println!(
                        "  slot {slot}: real vector (dup {rate:.2}) -> {}  [{} outlier(s)]",
                        ex.pattern.display(),
                        ex.outlier_rows.len()
                    ),
                    Extraction::Nominal(ex) => {
                        let pats: Vec<String> = ex
                            .patterns
                            .iter()
                            .map(|p| format!("{} (cnt={}, len={})", p.pattern.display(), p.count, p.max_len))
                            .collect();
                        println!(
                            "  slot {slot}: nominal vector (dup {rate:.2}) -> {} ; IdxLen={}",
                            pats.join(" ; "),
                            ex.idx_len
                        );
                    }
                    Extraction::Plain => {
                        println!("  slot {slot}: plain vector (dup {rate:.2}, no useful pattern)")
                    }
                }
                slot += 1;
            }
        }
        println!();
    }
}
