//! Property tests: Boyer-Moore and KMP must agree with a naive scan, and the
//! fixed-width layer must agree with per-row checks.
//!
//! The naive find-all reference comes from [`difftest::strategies`] — the
//! same oracle the differential harness uses, so the searchers and the
//! end-to-end suite are held to one definition of "every occurrence".
//! Historic proptest regressions for this file were migrated to
//! `crates/difftest/corpus/` in the harness's replayable format.

use difftest::strategies::naive_find_all;
use proptest::prelude::*;
use strsearch::fixed::{pad_values, Mode};
use strsearch::{BoyerMoore, FixedRows, Kmp, TokenPattern};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bm_equals_naive(
        haystack in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..200),
        needle in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..8),
    ) {
        prop_assert_eq!(BoyerMoore::new(&needle).find_all(&haystack), naive_find_all(&haystack, &needle));
    }

    #[test]
    fn kmp_equals_naive(
        haystack in proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y')], 0..200),
        needle in proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y')], 1..6),
    ) {
        prop_assert_eq!(Kmp::new(&needle).find_all(&haystack), naive_find_all(&haystack, &needle));
    }

    #[test]
    fn bm_and_kmp_agree_on_arbitrary_bytes(
        haystack in proptest::collection::vec(any::<u8>(), 0..300),
        needle in proptest::collection::vec(any::<u8>(), 1..10),
    ) {
        prop_assert_eq!(
            BoyerMoore::new(&needle).find_all(&haystack),
            Kmp::new(&needle).find_all(&haystack)
        );
    }

    #[test]
    fn fixed_rows_agree_with_probe(
        values in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1'), Just(b'F')], 0..6),
            0..40
        ),
        needle in proptest::collection::vec(prop_oneof![Just(b'0'), Just(b'1'), Just(b'F')], 1..4),
    ) {
        let width = values.iter().map(|v| v.len()).max().unwrap_or(0);
        let buf = pad_values(values.iter(), width, 0);
        let rows = FixedRows::new(&buf, width, 0);
        for mode in [Mode::Exact, Mode::Prefix, Mode::Suffix, Mode::Contains] {
            let found = rows.find(&needle, mode);
            for row in 0..values.len() {
                prop_assert_eq!(
                    found.contains(&(row as u32)),
                    rows.probe(row, &needle, mode),
                    "mode {:?} row {}", mode, row
                );
            }
        }
    }

    #[test]
    fn wildcard_matches_equals_regex_like_oracle(
        pattern in "[ab*]{0,6}",
        token in "[ab]{0,8}",
    ) {
        // Oracle: simple recursive glob. Stays local — `TokenPattern` globs
        // a bare token with no delimiter semantics, unlike the line-level
        // oracle in `difftest`.
        fn glob(p: &[u8], t: &[u8]) -> bool {
            match p.first() {
                None => t.is_empty(),
                Some(b'*') => glob(&p[1..], t) || (!t.is_empty() && glob(p, &t[1..])),
                Some(&c) => t.first() == Some(&c) && glob(&p[1..], &t[1..]),
            }
        }
        let compiled = TokenPattern::compile(pattern.as_bytes());
        prop_assert_eq!(
            compiled.matches(token.as_bytes()),
            glob(pattern.as_bytes(), token.as_bytes()),
            "pattern {:?} token {:?}", pattern, token
        );
    }
}
