//! In-token wildcard patterns.
//!
//! LogGrep's query language allows `*` inside a search-string token, with the
//! restriction (§3) that a wildcard never matches token delimiters or line
//! breaks. `dst:11.8.*` therefore means: a token starting with `11.8.`
//! follows the token `dst` — the `*` stops at the next delimiter.

/// A compiled in-token wildcard pattern such as `11.8.*` or `*.log`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPattern {
    /// Literal fragments between `*`s; never empty strings except when the
    /// pattern itself is degenerate (`"*"` compiles to one empty part list).
    parts: Vec<Vec<u8>>,
    /// Pattern does not start with `*`: the first part anchors at the start.
    anchor_start: bool,
    /// Pattern does not end with `*`: the last part anchors at the end.
    anchor_end: bool,
}

impl TokenPattern {
    /// Compiles a pattern. Consecutive `*`s collapse into one.
    pub fn compile(pattern: &[u8]) -> Self {
        let anchor_start = !pattern.starts_with(b"*");
        let anchor_end = !pattern.ends_with(b"*");
        let parts: Vec<Vec<u8>> = pattern
            .split(|&b| b == b'*')
            .filter(|p| !p.is_empty())
            .map(|p| p.to_vec())
            .collect();
        Self {
            parts,
            anchor_start,
            anchor_end,
        }
    }

    /// True if the pattern contains no `*` (a plain literal).
    pub fn is_literal(&self) -> bool {
        self.anchor_start && self.anchor_end && self.parts.len() <= 1
    }

    /// The literal bytes if [`Self::is_literal`].
    pub fn as_literal(&self) -> Option<&[u8]> {
        if self.is_literal() {
            Some(self.parts.first().map(|p| p.as_slice()).unwrap_or(b""))
        } else {
            None
        }
    }

    /// The longest literal fragment, used for pre-filtering: any token that
    /// matches the pattern must contain this fragment.
    pub fn longest_part(&self) -> &[u8] {
        self.parts
            .iter()
            .max_by_key(|p| p.len())
            .map(|p| p.as_slice())
            .unwrap_or(b"")
    }

    /// The anchored-prefix fragment, if any (pattern didn't start with `*`).
    pub fn prefix_part(&self) -> Option<&[u8]> {
        if self.anchor_start {
            Some(self.parts.first().map(|p| p.as_slice()).unwrap_or(b""))
        } else {
            None
        }
    }

    /// Sum of literal fragment lengths — a lower bound on match length.
    pub fn min_len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Tests the pattern against a whole token.
    pub fn matches(&self, token: &[u8]) -> bool {
        if token.len() < self.min_len() {
            return false;
        }
        let mut pos = 0usize;
        for (i, part) in self.parts.iter().enumerate() {
            if i == 0 && self.anchor_start {
                if !token[pos..].starts_with(part) {
                    return false;
                }
                pos += part.len();
            } else if i == self.parts.len() - 1 && self.anchor_end {
                // Handled after the loop via the end anchor check; a middle
                // scan would be wrong if the last part must sit at the end.
                let tail = &token[pos..];
                return tail.len() >= part.len() && tail.ends_with(part);
            } else {
                match find_in(&token[pos..], part) {
                    Some(at) => pos += at + part.len(),
                    None => return false,
                }
            }
        }
        if self.parts.is_empty() {
            // "*" (unanchored) matches any token; "" (anchored) only the
            // empty token.
            return !(self.anchor_start && self.anchor_end) || token.is_empty();
        }
        if self.anchor_end {
            // Only reached when the last part was consumed by the start
            // anchor branch (single-part anchored-both pattern).
            pos == token.len()
        } else {
            true
        }
    }

    /// Tests the pattern against any token of `line`, where tokens are
    /// maximal runs not containing any byte of `delims`.
    ///
    /// Tokenization skips from delimiter to delimiter word-parallel
    /// instead of classifying every byte (same semantics as
    /// `line.split(|b| delims.contains(b))`).
    pub fn matches_any_token(&self, line: &[u8], delims: &[u8]) -> bool {
        let mut start = 0usize;
        while start <= line.len() {
            let end = crate::swar::find_byte_any(line, delims, start).unwrap_or(line.len());
            let token = line.get(start..end).unwrap_or_default();
            if self.matches(token) {
                return true;
            }
            start = end + 1;
        }
        false
    }
}

fn find_in(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    crate::find(haystack, needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, token: &str) -> bool {
        TokenPattern::compile(pattern.as_bytes()).matches(token.as_bytes())
    }

    #[test]
    fn literal_patterns() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd"));
        assert!(!m("abc", "xabc"));
        assert!(m("", ""));
        assert!(!m("", "a"));
    }

    #[test]
    fn trailing_star() {
        assert!(m("11.8.*", "11.8.0"));
        assert!(m("11.8.*", "11.8."));
        assert!(!m("11.8.*", "11.9.0"));
    }

    #[test]
    fn leading_star() {
        assert!(m("*.log", "x.log"));
        assert!(m("*.log", ".log"));
        assert!(!m("*.log", "x.logx"));
    }

    #[test]
    fn inner_star() {
        assert!(m("blk_*_tmp", "blk_123_tmp"));
        assert!(m("blk_*_tmp", "blk__tmp"));
        assert!(!m("blk_*_tmp", "blk_123_tm"));
    }

    #[test]
    fn multiple_stars() {
        assert!(m("a*b*c", "aXbYc"));
        assert!(m("a*b*c", "abc"));
        assert!(!m("a*b*c", "acb"));
        assert!(m("*a*", "xax"));
        assert!(!m("*a*", "xxx"));
    }

    #[test]
    fn star_only_matches_everything() {
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("**", "anything"));
    }

    #[test]
    fn end_anchor_respects_overlap() {
        // "a*aa" against "aaa": '*' must be allowed to match nothing while
        // the final part still anchors at the end.
        assert!(m("a*aa", "aaa"));
        assert!(!m("a*aa", "aab"));
        // Greedy-middle pitfall: "a*ab" vs "aab" — middle scan must not eat
        // the only "ab".
        assert!(m("a*ab", "aab"));
    }

    #[test]
    fn token_scan_in_line() {
        let p = TokenPattern::compile(b"11.8.*");
        assert!(p.matches_any_token(b"dst 11.8.42 ok", b" "));
        assert!(!p.matches_any_token(b"dst 11.9.42 ok", b" "));
    }

    #[test]
    fn helpers() {
        let p = TokenPattern::compile(b"blk_*suffix");
        assert!(!p.is_literal());
        assert_eq!(p.longest_part(), b"suffix");
        assert_eq!(p.prefix_part(), Some(&b"blk_"[..]));
        assert_eq!(p.min_len(), 10);
        let lit = TokenPattern::compile(b"plain");
        assert_eq!(lit.as_literal(), Some(&b"plain"[..]));
    }
}
