//! Safe word-parallel (SWAR) byte-scanning primitives.
//!
//! Every helper here processes eight haystack bytes per step using plain
//! `u64` arithmetic — no `unsafe`, no alignment assumptions. Loads go
//! through [`u64::from_le_bytes`] on `chunks_exact(8)` slices, so the
//! compiler proves every access in bounds and still lowers the copy to a
//! single unaligned load on the targets we care about.
//!
//! The zero-byte detector is the classic exact formula
//! `(v.wrapping_sub(LO)) & !v & HI` with `LO = 0x0101…01` and
//! `HI = 0x8080…80`: a lane's high bit is set iff that lane is zero,
//! except that lanes *above* the first zero may be corrupted by the
//! borrow — which is harmless because every caller only consumes the
//! lowest set bit (`trailing_zeros`), and lanes below the first zero are
//! borrow-free and therefore exact.

/// Low bit of every lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every lane.
const HI: u64 = 0x8080_8080_8080_8080;
/// Lanes per word.
const LANES: usize = 8;

/// Broadcasts a byte into all eight lanes.
#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// Loads eight bytes as a little-endian word. `chunk` must be exactly
/// eight bytes (all callers pass `chunks_exact(8)` output).
#[inline]
fn load(chunk: &[u8]) -> u64 {
    let mut word = [0u8; LANES];
    word.copy_from_slice(chunk);
    u64::from_le_bytes(word)
}

/// Lane index (0 = lowest address) of the lowest flagged lane of a
/// zero-byte detector result. Caller guarantees `flags != 0`.
#[inline]
fn first_lane(flags: u64) -> usize {
    (flags.trailing_zeros() / 8) as usize
}

/// Zero-byte flags for `word`: high bit of lane i set iff lane i is zero
/// (lanes above the first zero may carry borrow noise — see module docs).
#[inline]
fn zero_flags(word: u64) -> u64 {
    word.wrapping_sub(LO) & !word & HI
}

/// Finds the first occurrence of `byte` at or after `from`.
#[inline]
pub fn find_byte(haystack: &[u8], byte: u8, from: usize) -> Option<usize> {
    let tail = haystack.get(from..)?;
    let target = splat(byte);
    let mut chunks = tail.chunks_exact(LANES);
    let mut at = from;
    for chunk in chunks.by_ref() {
        let flags = zero_flags(load(chunk) ^ target);
        if flags != 0 {
            return Some(at + first_lane(flags));
        }
        at += LANES;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == byte)
        .map(|i| at + i)
}

/// Finds the first occurrence of `b0` *or* `b1` at or after `from`.
#[inline]
pub fn find_byte2(haystack: &[u8], b0: u8, b1: u8, from: usize) -> Option<usize> {
    let tail = haystack.get(from..)?;
    let (t0, t1) = (splat(b0), splat(b1));
    let mut chunks = tail.chunks_exact(LANES);
    let mut at = from;
    for chunk in chunks.by_ref() {
        let word = load(chunk);
        let flags = zero_flags(word ^ t0) | zero_flags(word ^ t1);
        if flags != 0 {
            return Some(at + first_lane(flags));
        }
        at += LANES;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == b0 || b == b1)
        .map(|i| at + i)
}

/// Finds the first occurrence of any byte of `set` at or after `from`.
///
/// Word-parallel for small sets (one splat-XOR pass per set byte per
/// word); falls back to a scalar scan when the set is large enough that
/// per-byte masking would beat it.
#[inline]
pub fn find_byte_any(haystack: &[u8], set: &[u8], from: usize) -> Option<usize> {
    const MAX_SWAR_SET: usize = 8;
    let tail = haystack.get(from..)?;
    if set.len() > MAX_SWAR_SET {
        return tail.iter().position(|b| set.contains(b)).map(|i| from + i);
    }
    let mut chunks = tail.chunks_exact(LANES);
    let mut at = from;
    for chunk in chunks.by_ref() {
        let word = load(chunk);
        let mut flags = 0u64;
        for &b in set {
            flags |= zero_flags(word ^ splat(b));
        }
        if flags != 0 {
            return Some(at + first_lane(flags));
        }
        at += LANES;
    }
    chunks
        .remainder()
        .iter()
        .position(|b| set.contains(b))
        .map(|i| at + i)
}

/// Index of the *last* byte that differs from `byte`, or `None` if every
/// byte equals it (or the slice is empty). This is the padded-row trim:
/// `value.len() = rfind_not_byte(row, pad).map_or(0, |p| p + 1)`.
#[inline]
pub fn rfind_not_byte(haystack: &[u8], byte: u8) -> Option<usize> {
    let target = splat(byte);
    let mut end = haystack.len();
    let mut chunks = haystack.rchunks_exact(LANES);
    for chunk in chunks.by_ref() {
        // XOR is zero only in lanes equal to `byte`; the highest nonzero
        // lane is the last mismatch. leading_zeros counts whole matching
        // lanes from the top of the little-endian word = end of the slice.
        let diff = load(chunk) ^ target;
        if diff != 0 {
            let lanes_from_end = (diff.leading_zeros() / 8) as usize;
            return Some(end - 1 - lanes_from_end);
        }
        end -= LANES;
    }
    chunks.remainder().iter().rposition(|&b| b != byte)
}

/// Length of the longest common prefix of `a` and `b`.
#[inline]
pub fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let (Some(a), Some(b)) = (a.get(..n), b.get(..n)) else {
        return 0;
    };
    let mut len = 0usize;
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        // The lowest set bit of the XOR lies inside the first differing
        // lane, so first_lane works on the raw diff.
        let diff = load(ca) ^ load(cb);
        if diff != 0 {
            return len + first_lane(diff);
        }
        len += LANES;
    }
    len + ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .take_while(|(x, y)| x == y)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(h: &[u8], b: u8, from: usize) -> Option<usize> {
        h.iter().enumerate().skip(from).find(|&(_, &x)| x == b).map(|(i, _)| i)
    }

    #[test]
    fn find_byte_matches_naive() {
        let h: Vec<u8> = (0..64u32).map(|i| (i * 7 % 11) as u8).collect();
        for from in 0..h.len() + 2 {
            for b in 0..12u8 {
                assert_eq!(find_byte(&h, b, from), naive_find(&h, b, from), "b={b} from={from}");
            }
        }
    }

    #[test]
    fn find_byte_edge_lanes() {
        // Hits in every lane position, including chunk boundaries.
        for pos in 0..24 {
            let mut h = vec![b'x'; 24];
            h[pos] = b'!';
            assert_eq!(find_byte(&h, b'!', 0), Some(pos));
        }
        assert_eq!(find_byte(b"", b'a', 0), None);
        assert_eq!(find_byte(b"abc", b'a', 3), None);
        assert_eq!(find_byte(b"abc", b'a', 9), None);
    }

    #[test]
    fn find_byte2_and_set() {
        let h = b"aaaaaaaaaaXbbbbbbbbbbY";
        assert_eq!(find_byte2(h, b'X', b'Y', 0), Some(10));
        assert_eq!(find_byte2(h, b'Y', b'X', 11), Some(21));
        assert_eq!(find_byte2(h, b'q', b'q', 0), None);
        assert_eq!(find_byte_any(h, b"YX", 0), Some(10));
        assert_eq!(find_byte_any(h, b"", 0), None);
        // Large set takes the scalar fallback.
        assert_eq!(find_byte_any(h, b"0123456789Y", 0), Some(21));
    }

    #[test]
    fn rfind_not_byte_matches_rposition() {
        let cases: &[&[u8]] = &[
            b"",
            b"....",
            b"a...",
            b"...a",
            b"abcdefghij......",
            b"................x",
            b"x................",
        ];
        for h in cases {
            assert_eq!(
                rfind_not_byte(h, b'.'),
                h.iter().rposition(|&b| b != b'.'),
                "h={h:?}"
            );
        }
    }

    #[test]
    fn common_prefix_matches_naive() {
        let a = b"the quick brown fox jumps over the lazy dog";
        for cut in 0..a.len() {
            let mut b = a.to_vec();
            b[cut] ^= 1;
            assert_eq!(common_prefix(a, &b), cut, "cut={cut}");
        }
        assert_eq!(common_prefix(a, a), a.len());
        assert_eq!(common_prefix(a, &a[..10]), 10);
        assert_eq!(common_prefix(b"", b"x"), 0);
    }
}
