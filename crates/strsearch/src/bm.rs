//! Boyer-Moore string search with both the bad-character and good-suffix
//! heuristics.
//!
//! This is the algorithm LogGrep uses to scan decompressed Capsules (§5.2):
//! it may *skip* characters, which is only safe for row-number recovery when
//! every row has a fixed width.

/// A preprocessed Boyer-Moore searcher for one needle.
#[derive(Debug, Clone)]
pub struct BoyerMoore {
    needle: Vec<u8>,
    /// bad_char[b] = rightmost index of byte b in the needle, or -1.
    bad_char: [i64; 256],
    /// Good-suffix shift table (classic `delta2`).
    good_suffix: Vec<usize>,
}

impl BoyerMoore {
    /// Preprocesses `needle`.
    ///
    /// # Panics
    ///
    /// Panics if `needle` is empty — use [`crate::find`] for the degenerate
    /// cases.
    pub fn new(needle: &[u8]) -> Self {
        assert!(!needle.is_empty(), "Boyer-Moore needs a non-empty needle");
        let m = needle.len();

        let mut bad_char = [-1i64; 256];
        for (i, &b) in needle.iter().enumerate() {
            bad_char[b as usize] = i as i64;
        }

        // Good-suffix table via the standard two-pass border computation.
        let mut shift = vec![0usize; m + 1];
        let mut border = vec![0usize; m + 1];
        // Pass 1: strong suffix borders.
        let mut i = m;
        let mut j = m + 1;
        border[i] = j;
        while i > 0 {
            while j <= m && needle[i - 1] != needle[j - 1] {
                if shift[j] == 0 {
                    shift[j] = j - i;
                }
                j = border[j];
            }
            i -= 1;
            j -= 1;
            border[i] = j;
        }
        // Pass 2: fill remaining shifts from the active border width.
        j = border[0];
        for (k, s) in shift.iter_mut().enumerate() {
            if *s == 0 {
                *s = j;
            }
            if k == j {
                j = border[j];
            }
        }

        Self {
            needle: needle.to_vec(),
            bad_char,
            good_suffix: shift,
        }
    }

    /// Length of the needle.
    pub fn needle_len(&self) -> usize {
        self.needle.len()
    }

    /// Finds the first match at or after `from`.
    pub fn find_from(&self, haystack: &[u8], from: usize) -> Option<usize> {
        let m = self.needle.len();
        let n = haystack.len();
        if m > n {
            return None;
        }
        let last = self.needle[m - 1];
        let mut s = from; // Current alignment of the needle in the haystack.
        while s + m <= n {
            // SWAR gallop: an alignment is only viable when its final byte
            // equals the needle's final byte, so jump straight to the next
            // such alignment word-parallel. This only ever skips alignments
            // the compare loop would reject at j == m-1, so no match is
            // missed, and it is at least as far as the bad-character shift
            // for a final-byte mismatch.
            let hit = crate::swar::find_byte(haystack, last, s + m - 1)?;
            s = hit + 1 - m;
            let mut j = m as i64 - 2; // Final byte already matched.
            while j >= 0 && self.needle[j as usize] == haystack[s + j as usize] {
                j -= 1;
            }
            if j < 0 {
                return Some(s);
            }
            let bc = self.bad_char[haystack[s + j as usize] as usize];
            let bad_shift = (j - bc).max(1) as usize;
            let good_shift = self.good_suffix[(j + 1) as usize];
            s += bad_shift.max(good_shift);
        }
        None
    }

    /// Finds the first match.
    pub fn find(&self, haystack: &[u8]) -> Option<usize> {
        self.find_from(haystack, 0)
    }

    /// Returns the offsets of all (possibly overlapping) matches.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.find_from(haystack, from) {
            out.push(pos);
            from = pos + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
        if haystack.len() < needle.len() {
            return Vec::new();
        }
        (0..=haystack.len() - needle.len())
            .filter(|&i| &haystack[i..i + needle.len()] == needle)
            .collect()
    }

    #[test]
    fn matches_naive_on_fixtures() {
        let cases: Vec<(&[u8], &[u8])> = vec![
            (b"hello world hello", b"hello"),
            (b"aaaaaaa", b"aa"),
            (b"abcabcabc", b"abcabc"),
            (b"GCATCGCAGAGAGTATACAGTACG", b"GCAGAGAG"),
            (b"needle at the end needle", b"needle"),
            (b"no match here", b"zzz"),
            (b"x", b"x"),
        ];
        for (h, n) in cases {
            let bm = BoyerMoore::new(n);
            assert_eq!(bm.find_all(h), naive_all(h, n), "h={h:?} n={n:?}");
        }
    }

    #[test]
    fn find_from_skips_earlier_matches() {
        let bm = BoyerMoore::new(b"ab");
        assert_eq!(bm.find_from(b"ab ab ab", 1), Some(3));
        assert_eq!(bm.find_from(b"ab ab ab", 7), None);
    }

    #[test]
    fn overlapping_matches_found() {
        let bm = BoyerMoore::new(b"aba");
        assert_eq!(bm.find_all(b"ababa"), vec![0, 2]);
    }

    #[test]
    fn periodic_needles() {
        for n in [&b"abab"[..], b"aab", b"aabaab", b"abaaba"] {
            let h = b"aabaabaabaababababaabab";
            let bm = BoyerMoore::new(n);
            assert_eq!(bm.find_all(h), naive_all(h, n), "needle {n:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_needle_panics() {
        let _ = BoyerMoore::new(b"");
    }
}
