//! Fixed-width row search over padded buffers.
//!
//! LogGrep's Packer pads every value of a Capsule to the stamp max-length
//! (§5.2), so a Capsule decompresses to `rows * width` bytes. This module
//! searches such buffers with Boyer-Moore and recovers row numbers as
//! `position / width`, plus direct row probes used when one keyword match
//! requires several Capsules to agree.

use crate::bm::BoyerMoore;

/// How a needle must relate to a row's (unpadded) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// The value equals the needle.
    Exact,
    /// The value starts with the needle.
    Prefix,
    /// The value ends with the needle.
    Suffix,
    /// The value contains the needle.
    Contains,
}

/// A view of a decompressed fixed-width Capsule buffer.
#[derive(Debug, Clone, Copy)]
pub struct FixedRows<'a> {
    buf: &'a [u8],
    width: usize,
    pad: u8,
}

impl<'a> FixedRows<'a> {
    /// Wraps `buf` as rows of `width` bytes padded with `pad`.
    ///
    /// A `width` of zero is allowed (every value is empty) and yields zero
    /// addressable rows unless the buffer is empty too.
    ///
    /// # Panics
    ///
    /// Panics if `width > 0` and `buf.len()` is not a multiple of `width`.
    pub fn new(buf: &'a [u8], width: usize, pad: u8) -> Self {
        if width > 0 {
            // lint:allow(no-panic-in-decode) — documented contract; decode paths validate size via CapsuleView::new before wrapping
            assert!(
                buf.len().is_multiple_of(width),
                "buffer length {} not a multiple of width {width}",
                buf.len()
            );
        } else {
            // lint:allow(no-panic-in-decode) — documented contract; decode paths validate size via CapsuleView::new before wrapping
            assert!(buf.is_empty(), "zero width requires an empty buffer");
        }
        Self { buf, width, pad }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.buf.len().checked_div(self.width).unwrap_or(0)
    }

    /// The row width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying padded buffer.
    pub fn buf(&self) -> &'a [u8] {
        self.buf
    }

    /// A sub-view over rows `[start, end)` (clamped to the row count).
    pub fn slice_rows(&self, start: usize, end: usize) -> FixedRows<'a> {
        let n = self.rows();
        let lo = start.min(n) * self.width;
        let hi = end.min(n).max(start.min(n)) * self.width;
        FixedRows::new(self.buf.get(lo..hi).unwrap_or_default(), self.width, self.pad)
    }

    /// The unpadded value of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> &'a [u8] {
        let start = row * self.width;
        // lint:allow(no-panic-in-decode) — documented panic contract; callers bound row by rows()
        let raw = &self.buf[start..start + self.width];
        // SWAR pad trim: find the last non-pad byte word-parallel.
        let end = crate::swar::rfind_not_byte(raw, self.pad).map_or(0, |p| p + 1);
        // lint:allow(no-panic-in-decode) — end ≤ raw.len() by rposition
        &raw[..end]
    }

    /// Checks `mode` against a single row (the direct-probe path of §5.2).
    pub fn probe(&self, row: usize, needle: &[u8], mode: Mode) -> bool {
        let v = self.value(row);
        match mode {
            Mode::Exact => v == needle,
            Mode::Prefix => v.starts_with(needle),
            Mode::Suffix => v.ends_with(needle),
            Mode::Contains => crate::contains(v, needle),
        }
    }

    /// Returns the rows whose values satisfy `mode` for `needle`, in
    /// ascending order without duplicates.
    ///
    /// Uses a single Boyer-Moore pass over the whole buffer for non-empty
    /// needles; matches that straddle a row boundary or fall inside padding
    /// are rejected by position arithmetic.
    pub fn find(&self, needle: &[u8], mode: Mode) -> Vec<u32> {
        if self.width == 0 {
            return Vec::new();
        }
        if needle.is_empty() {
            // An empty needle: Exact matches empty values; the rest match all.
            return (0..self.rows() as u32)
                .filter(|&r| mode != Mode::Exact || self.value(r as usize).is_empty())
                .collect();
        }
        if needle.len() > self.width {
            return Vec::new();
        }
        let bm = BoyerMoore::new(needle);
        let mut rows = Vec::new();
        let mut from = 0usize;
        let mut last_row = usize::MAX;
        while let Some(pos) = bm.find_from(self.buf, from) {
            from = pos + 1;
            let row = pos / self.width;
            let col = pos % self.width;
            if col + needle.len() > self.width {
                continue; // Straddles a row boundary.
            }
            if row == last_row {
                continue;
            }
            let ok = match mode {
                Mode::Contains => true,
                Mode::Prefix => col == 0,
                Mode::Suffix => self.value(row).len() == col + needle.len(),
                Mode::Exact => col == 0 && self.value(row).len() == needle.len(),
            };
            // For anchored modes a rejected hit may still be followed by an
            // accepted one in the same row only for Suffix/Exact oddities;
            // keep scanning rather than skipping the row.
            if ok {
                rows.push(row as u32);
                last_row = row;
                // Skip the rest of this row: it is already reported.
                from = (row + 1) * self.width;
            }
        }
        rows
    }
}

/// Builds a padded fixed-width buffer from values (the Packer-side helper).
///
/// # Panics
///
/// Panics if any value is longer than `width` or contains the pad byte.
pub fn pad_values<I, V>(values: I, width: usize, pad: u8) -> Vec<u8>
where
    I: IntoIterator<Item = V>,
    V: AsRef<[u8]>,
{
    let mut out = Vec::new();
    for v in values {
        let v = v.as_ref();
        // lint:allow(no-panic-in-decode) — compression-side helper; inputs are trusted builder output
        assert!(v.len() <= width, "value longer than row width");
        debug_assert!(!v.contains(&pad), "value contains the pad byte");
        out.extend_from_slice(v);
        out.resize(out.len() + (width - v.len()), pad);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAD: u8 = 0;

    fn rows_of(values: &[&str], width: usize) -> Vec<u8> {
        pad_values(values.iter().map(|v| v.as_bytes()), width, PAD)
    }

    #[test]
    fn value_trims_padding() {
        let buf = rows_of(&["ab", "c", ""], 4);
        let f = FixedRows::new(&buf, 4, PAD);
        assert_eq!(f.rows(), 3);
        assert_eq!(f.value(0), b"ab");
        assert_eq!(f.value(1), b"c");
        assert_eq!(f.value(2), b"");
    }

    #[test]
    fn contains_finds_rows_once() {
        let buf = rows_of(&["8F8F", "1234", "x8F8", "8F8F"], 4);
        let f = FixedRows::new(&buf, 4, PAD);
        assert_eq!(f.find(b"8F", Mode::Contains), vec![0, 2, 3]);
    }

    #[test]
    fn no_cross_row_matches() {
        // Row 0 ends with "ab", row 1 starts with "cd": "bc" spans the
        // boundary only if padding is absent; with exact-width rows it can
        // appear only when width == value length.
        let buf = rows_of(&["ab", "cd"], 2);
        let f = FixedRows::new(&buf, 2, PAD);
        assert_eq!(f.find(b"bc", Mode::Contains), Vec::<u32>::new());
    }

    #[test]
    fn prefix_suffix_exact() {
        let buf = rows_of(&["ERR", "ERRX", "XERR", "E"], 4);
        let f = FixedRows::new(&buf, 4, PAD);
        assert_eq!(f.find(b"ERR", Mode::Prefix), vec![0, 1]);
        assert_eq!(f.find(b"ERR", Mode::Suffix), vec![0, 2]);
        assert_eq!(f.find(b"ERR", Mode::Exact), vec![0]);
        assert_eq!(f.find(b"ERR", Mode::Contains), vec![0, 1, 2]);
    }

    #[test]
    fn needle_longer_than_width() {
        let buf = rows_of(&["ab"], 2);
        let f = FixedRows::new(&buf, 2, PAD);
        assert!(f.find(b"abc", Mode::Contains).is_empty());
    }

    #[test]
    fn empty_needle_semantics() {
        let buf = rows_of(&["a", "", "b"], 2);
        let f = FixedRows::new(&buf, 2, PAD);
        assert_eq!(f.find(b"", Mode::Contains), vec![0, 1, 2]);
        assert_eq!(f.find(b"", Mode::Exact), vec![1]);
    }

    #[test]
    fn probe_matches_find() {
        let buf = rows_of(&["8F8F", "1F", "F8F8"], 4);
        let f = FixedRows::new(&buf, 4, PAD);
        for (needle, mode) in [
            (&b"8F"[..], Mode::Contains),
            (b"8F", Mode::Prefix),
            (b"8F", Mode::Suffix),
            (b"1F", Mode::Exact),
        ] {
            let found = f.find(needle, mode);
            for row in 0..f.rows() {
                assert_eq!(
                    found.contains(&(row as u32)),
                    f.probe(row, needle, mode),
                    "row {row} needle {needle:?} mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn suffix_after_rejected_hit_in_same_row() {
        // "aXa" with needle "a": first hit col 0 fails Suffix, second hit
        // col 2 succeeds — the scan must not skip it.
        let buf = rows_of(&["aXa"], 3);
        let f = FixedRows::new(&buf, 3, PAD);
        assert_eq!(f.find(b"a", Mode::Suffix), vec![0]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_buffer_panics() {
        let _ = FixedRows::new(b"abc", 2, PAD);
    }
}
