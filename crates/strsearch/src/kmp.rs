//! Knuth-Morris-Pratt string search.
//!
//! KMP never skips haystack characters, so it can count delimiters while it
//! scans. The paper's "w/o fixed" ablation (§6.3) queries variant-length
//! capsules with KMP; this module exists so that ablation is faithful.

/// A preprocessed KMP searcher for one needle.
#[derive(Debug, Clone)]
pub struct Kmp {
    needle: Vec<u8>,
    /// Failure function: longest proper border of each prefix.
    fail: Vec<usize>,
}

impl Kmp {
    /// Preprocesses `needle`.
    ///
    /// # Panics
    ///
    /// Panics if `needle` is empty.
    pub fn new(needle: &[u8]) -> Self {
        assert!(!needle.is_empty(), "KMP needs a non-empty needle");
        let m = needle.len();
        let mut fail = vec![0usize; m];
        let mut k = 0usize;
        for i in 1..m {
            while k > 0 && needle[i] != needle[k] {
                k = fail[k - 1];
            }
            if needle[i] == needle[k] {
                k += 1;
            }
            fail[i] = k;
        }
        Self {
            needle: needle.to_vec(),
            fail,
        }
    }

    /// Length of the needle.
    pub fn needle_len(&self) -> usize {
        self.needle.len()
    }

    /// Finds the first match at or after `from`.
    pub fn find_from(&self, haystack: &[u8], from: usize) -> Option<usize> {
        let m = self.needle.len();
        let first = self.needle[0];
        let mut k = 0usize;
        let mut i = from;
        while i < haystack.len() {
            // With no live prefix, the automaton just scans for the first
            // needle byte — do that word-parallel instead of byte-at-a-time.
            if k == 0 {
                i = crate::swar::find_byte(haystack, first, i)?;
            }
            let b = haystack[i];
            while k > 0 && b != self.needle[k] {
                k = self.fail[k - 1];
            }
            if b == self.needle[k] {
                k += 1;
            }
            if k == m {
                return Some(i + 1 - m);
            }
            i += 1;
        }
        None
    }

    /// Finds the first match.
    pub fn find(&self, haystack: &[u8]) -> Option<usize> {
        self.find_from(haystack, 0)
    }

    /// Returns the offsets of all (possibly overlapping) matches in one pass.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<usize> {
        let m = self.needle.len();
        let first = self.needle[0];
        let mut out = Vec::new();
        let mut k = 0usize;
        let mut i = 0usize;
        while i < haystack.len() {
            if k == 0 {
                // SWAR skip to the next possible match start (see find_from).
                match crate::swar::find_byte(haystack, first, i) {
                    Some(p) => i = p,
                    None => break,
                }
            }
            let b = haystack[i];
            while k > 0 && b != self.needle[k] {
                k = self.fail[k - 1];
            }
            if b == self.needle[k] {
                k += 1;
            }
            if k == m {
                out.push(i + 1 - m);
                k = self.fail[k - 1];
            }
            i += 1;
        }
        out
    }

    /// Scans a delimiter-separated buffer, returning the indices of the
    /// *records* (0-based, delimiter-separated) that contain the needle.
    ///
    /// This is the variant-length query path of the "w/o fixed" ablation: the
    /// scan must count `delim` bytes while matching, which KMP supports and
    /// Boyer-Moore does not.
    pub fn find_records(&self, haystack: &[u8], delim: u8) -> Vec<usize> {
        let m = self.needle.len();
        let first = self.needle[0];
        let mut out = Vec::new();
        let mut record = 0usize;
        let mut k = 0usize;
        let mut last_hit_record = usize::MAX;
        let mut i = 0usize;
        while i < haystack.len() {
            if k == 0 {
                // With no live prefix only two bytes matter: the next
                // possible match start and the next delimiter (which must
                // still be counted). Jump to whichever comes first.
                match crate::swar::find_byte2(haystack, first, delim, i) {
                    Some(p) => i = p,
                    None => break,
                }
            }
            let b = haystack[i];
            if b == delim {
                record += 1;
                k = 0; // A match cannot span records.
                i += 1;
                continue;
            }
            while k > 0 && b != self.needle[k] {
                k = self.fail[k - 1];
            }
            if b == self.needle[k] {
                k += 1;
            }
            if k == m {
                if last_hit_record != record {
                    out.push(record);
                    last_hit_record = record;
                }
                k = self.fail[k - 1];
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
        if haystack.len() < needle.len() {
            return Vec::new();
        }
        (0..=haystack.len() - needle.len())
            .filter(|&i| &haystack[i..i + needle.len()] == needle)
            .collect()
    }

    #[test]
    fn matches_naive() {
        let cases: Vec<(&[u8], &[u8])> = vec![
            (b"hello world hello", b"hello"),
            (b"aaaaaaa", b"aa"),
            (b"ababababa", b"aba"),
            (b"mississippi", b"issi"),
            (b"no match", b"qqq"),
        ];
        for (h, n) in cases {
            assert_eq!(Kmp::new(n).find_all(h), naive_all(h, n));
        }
    }

    #[test]
    fn find_and_find_from() {
        let kmp = Kmp::new(b"ss");
        assert_eq!(kmp.find(b"mississippi"), Some(2));
        assert_eq!(kmp.find_from(b"mississippi", 3), Some(5));
        assert_eq!(kmp.find_from(b"mississippi", 6), None);
    }

    #[test]
    fn records_scan() {
        let kmp = Kmp::new(b"err");
        let buf = b"ok\0err\0noerror\0fine\0xerrx";
        // Records: "ok", "err", "noerror", "fine", "xerrx".
        assert_eq!(kmp.find_records(buf, 0), vec![1, 2, 4]);
    }

    #[test]
    fn records_do_not_span_delimiters() {
        let kmp = Kmp::new(b"ab");
        // "a|b" must not match across the delimiter.
        assert_eq!(kmp.find_records(b"a\0b\0ab", 0), vec![2]);
    }

    #[test]
    fn record_reported_once() {
        let kmp = Kmp::new(b"aa");
        assert_eq!(kmp.find_records(b"aaaa\0aa", 0), vec![0, 1]);
    }
}
