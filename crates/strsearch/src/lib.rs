//! String-search substrate for the LogGrep reproduction.
//!
//! Section 5.2 of the paper argues that padding Capsule values to a fixed
//! length lets the query engine use Boyer-Moore (which skips characters and
//! therefore cannot count delimiters) instead of KMP, because the row number
//! of a hit can be recovered as `position / width`. This crate provides both
//! algorithms, the fixed-width row-search layer built on Boyer-Moore, and the
//! in-token wildcard matcher used by the query language.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bm;
pub mod fixed;
pub mod kmp;
pub mod swar;
pub mod wildcard;

pub use bm::BoyerMoore;
pub use fixed::FixedRows;
pub use kmp::Kmp;
pub use wildcard::TokenPattern;

/// Finds the first occurrence of `needle` in `haystack` (Boyer-Moore for
/// needles of length >= 2, byte scan otherwise).
///
/// Returns the byte offset of the first match, or `None`.
///
/// # Examples
///
/// ```
/// assert_eq!(strsearch::find(b"hello world", b"world"), Some(6));
/// assert_eq!(strsearch::find(b"hello world", b"xyz"), None);
/// ```
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    match needle.len() {
        0 => Some(0),
        1 => swar::find_byte(haystack, needle[0], 0),
        // Short needles: SWAR-skip on the first byte and verify in place —
        // cheaper than building Boyer-Moore tables for a one-shot search.
        2..=4 => {
            let mut from = 0;
            while let Some(pos) = swar::find_byte(haystack, needle[0], from) {
                if haystack.get(pos..pos + needle.len()) == Some(needle) {
                    return Some(pos);
                }
                from = pos + 1;
            }
            None
        }
        _ => BoyerMoore::new(needle).find(haystack),
    }
}

/// True if `haystack` contains `needle`.
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    find(haystack, needle).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_basic() {
        assert_eq!(find(b"", b""), Some(0));
        assert_eq!(find(b"abc", b""), Some(0));
        assert_eq!(find(b"", b"a"), None);
        assert_eq!(find(b"abcdef", b"cd"), Some(2));
        assert_eq!(find(b"aaaab", b"ab"), Some(3));
    }

    #[test]
    fn contains_single_byte() {
        assert!(contains(b"xyz", b"y"));
        assert!(!contains(b"xyz", b"q"));
    }
}
