//! Differential fuzzing harness: one oracle, every engine, every knob.
//!
//! LogGrep's core claim is that pattern-level filtering, stamp pruning and
//! fixed-length matching return *exactly* the lines a full scan would
//! (PAPER.md §4–§5), under **every** `LogGrepConfig` knob combination of the
//! §6.3 ablation matrix. This crate falsifies that claim automatically:
//!
//! 1. [`genlog`] builds adversarial logs — workload-catalog output layered
//!    with mutators (schema drift mid-block, padding-edge token lengths,
//!    type-mask flips, empty/huge variable vectors, multi-block splits);
//! 2. [`query`] grows grammar-based query ASTs whose tokens are sampled
//!    from the generated log plus near-misses that straddle capsule/stamp
//!    boundaries;
//! 3. [`oracle`] is a trivially-correct line scanner with its own tiny
//!    query evaluator — independent of `strsearch` and the planner;
//! 4. [`harness`] runs each case through every engine in
//!    [`baselines::LogGrepSystem`] (full, SP, every §6.3 ablation) at
//!    `threads ∈ {1, 4}` plus the non-LogGrep baselines, asserting
//!    identical matched line sets and sane `QueryStats` invariants;
//! 5. [`shrink`] minimizes failures (drop lines → shorten tokens →
//!    simplify the query AST) and [`corpus`] writes them as replayable
//!    fixture files under `crates/difftest/corpus/`, which the test suite
//!    replays as regressions.
//!
//! Everything is seeded and std-only: the same `--seed` reproduces the
//! same cases byte for byte.
//!
//! Two sibling modes reuse the generators: [`cluster_faults`] checks the
//! replicated cluster's partial-results contract under seeded fault
//! schedules, and [`aggregates`] cross-checks the aggregate sink (`count`,
//! `count-by-template`, `top-K`, `histogram`) against a naive raw-line
//! oracle plus the zero-decompression pushdown contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregates;
pub mod cluster_faults;
pub mod corpus;
pub mod genlog;
pub mod harness;
pub mod oracle;
pub mod query;
pub mod shrink;
pub mod strategies;

pub use corpus::Case;
pub use harness::{Failure, Harness};
pub use query::QueryAst;

/// Mixes a run seed and a case index into one per-case RNG seed
/// (splitmix64-style finalizer, so nearby indices get unrelated streams).
pub fn case_seed(seed: u64, case: u64) -> u64 {
    let mut z = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        assert_eq!(case_seed(1, 0), case_seed(1, 0));
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
    }
}
