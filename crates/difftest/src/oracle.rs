//! The trivially-correct oracle: a naive in-memory line scanner with its
//! own tiny query evaluator.
//!
//! Nothing here touches `strsearch`, the planner, stamps, or capsules —
//! matching is re-derived from the language definition alone (§3: a search
//! string occurs anywhere in the line; `*` matches a possibly-empty run of
//! non-delimiter bytes and never crosses a delimiter or line break), so a
//! bug shared between the engine and its fast matchers cannot hide here.

use crate::query::{Op, QueryAst};
use logparse::DEFAULT_DELIMS;

/// One element of a naively-compiled search string.
enum Piece {
    Lit(Vec<u8>),
    Star,
}

/// Splits a term's text on `*`, collapsing adjacent stars.
fn compile(term: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut lit = Vec::new();
    for &b in term.as_bytes() {
        if b == b'*' {
            if !lit.is_empty() {
                pieces.push(Piece::Lit(std::mem::take(&mut lit)));
            }
            if !matches!(pieces.last(), Some(Piece::Star)) {
                pieces.push(Piece::Star);
            }
        } else {
            lit.push(b);
        }
    }
    if !lit.is_empty() {
        pieces.push(Piece::Lit(lit));
    }
    pieces
}

/// Does `term` occur in `line` under the language's wildcard semantics?
pub fn term_matches(term: &str, line: &[u8]) -> bool {
    let pieces = compile(term);
    (0..=line.len()).any(|start| match_from(&pieces, line, start))
}

fn match_from(pieces: &[Piece], line: &[u8], pos: usize) -> bool {
    match pieces.first() {
        None => true,
        Some(Piece::Lit(lit)) => {
            pos + lit.len() <= line.len()
                && &line[pos..pos + lit.len()] == lit.as_slice()
                && match_from(&pieces[1..], line, pos + lit.len())
        }
        Some(Piece::Star) => {
            // Try every run length, longest last; stop at a delimiter.
            let mut end = pos;
            loop {
                if match_from(&pieces[1..], line, end) {
                    return true;
                }
                if end >= line.len() || DEFAULT_DELIMS.contains(&line[end]) || line[end] == b'\n' {
                    return false;
                }
                end += 1;
            }
        }
    }
}

/// Evaluates a query AST against one line, left to right.
pub fn ast_matches(ast: &QueryAst, line: &[u8]) -> bool {
    let mut acc = term_matches(&ast.first, line);
    for (op, term) in &ast.rest {
        let rhs = || term_matches(term, line);
        acc = match op {
            Op::And => acc && rhs(),
            Op::Or => acc || rhs(),
            Op::Not => acc && !rhs(),
        };
    }
    acc
}

/// The oracle verdict for a whole case: every line (across all blocks, in
/// order) that the query matches.
pub fn matching_lines(blocks: &[Vec<Vec<u8>>], ast: &QueryAst) -> Vec<Vec<u8>> {
    blocks
        .iter()
        .flatten()
        .filter(|line| ast_matches(ast, line))
        .cloned()
        .collect()
}

/// Naive find-all for substring searchers (the `strsearch` reference).
pub fn naive_find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return Vec::new();
    }
    (0..=haystack.len() - needle.len())
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_wildcard_semantics() {
        assert!(term_matches("read", b"T134 bk.FF.13 read"));
        assert!(term_matches("dst:11.8.*", b"error dst:11.8.42 x"));
        assert!(!term_matches("dst:11.9.*", b"error dst:11.8.42 x"));
        // A star never crosses a delimiter.
        assert!(!term_matches("dst:*done", b"dst:abc then done"));
        assert!(term_matches("a*b", b"ab"));
        assert!(term_matches("state: SUC", b"T169 state: SUC#1604"));
    }

    #[test]
    fn ast_evaluation_is_left_associative() {
        // A or B not C  ==  (A or B) not C
        let ast = QueryAst {
            first: "alpha".into(),
            rest: vec![(Op::Or, "beta".into()), (Op::Not, "gamma".into())],
        };
        assert!(ast_matches(&ast, b"beta"));
        assert!(!ast_matches(&ast, b"beta gamma"));
        assert!(!ast_matches(&ast, b"delta"));
    }

    /// The independent evaluator must agree with the language's reference
    /// matcher (they are written separately on purpose).
    #[test]
    fn agrees_with_lang_reference() {
        use loggrep::query::lang::SearchString;
        let lines: &[&[u8]] = &[
            b"error dst:11.8.42 x",
            b"dst:abc then done",
            b"T169 state: SUC#1604",
            b"",
            b"blk_",
        ];
        for term in ["dst:*", "*one", "blk_*", "S*C", "state: S*", "x", "11.8"] {
            let reference = SearchString::compile(term).unwrap();
            for line in lines {
                assert_eq!(
                    term_matches(term, line),
                    reference.matches_line(line, DEFAULT_DELIMS),
                    "term {term:?} line {:?}",
                    String::from_utf8_lossy(line)
                );
            }
        }
    }

    #[test]
    fn naive_find_all_basics() {
        assert_eq!(naive_find_all(b"", b"a"), Vec::<usize>::new());
        assert_eq!(naive_find_all(b"abab", b"ab"), vec![0, 2]);
    }
}
