//! Replayable corpus files.
//!
//! A corpus file captures one differential case — the query text and the
//! log blocks — in a line-oriented, escaping-free format (blocks are
//! length-prefixed, so log lines are stored raw):
//!
//! ```text
//! difftest-case v1
//! note: <free text, optional>
//! query: ERROR and blk_*
//! block: 3
//! <line 1>
//! <line 2>
//! <line 3>
//! block: 2
//! <line 1>
//! <line 2>
//! ```
//!
//! The driver writes a shrunk corpus file for every failure it finds;
//! committed files under `crates/difftest/corpus/` are replayed by the
//! test suite as regression fixtures (`tests/replay.rs`).

use crate::query::QueryAst;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One differential case: a query plus the log blocks it runs over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The rendered query text.
    pub query: String,
    /// Log lines per independently compressed block.
    pub blocks: Vec<Vec<Vec<u8>>>,
    /// Optional free-text provenance (seed, case index, failure label).
    pub note: String,
}

impl Case {
    /// Builds a case from generated parts.
    pub fn new(ast: &QueryAst, blocks: Vec<Vec<Vec<u8>>>) -> Self {
        Self {
            query: ast.render(),
            blocks,
            note: String::new(),
        }
    }

    /// The query AST (re-parsed from the stored text).
    pub fn ast(&self) -> Option<QueryAst> {
        QueryAst::parse(&self.query)
    }

    /// Total lines across all blocks.
    pub fn total_lines(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Serializes the case in the corpus format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("difftest-case v1\n");
        if !self.note.is_empty() {
            let _ = writeln!(out, "note: {}", self.note.replace('\n', " "));
        }
        let _ = writeln!(out, "query: {}", self.query);
        for block in &self.blocks {
            let _ = writeln!(out, "block: {}", block.len());
            for line in block {
                out.push_str(&String::from_utf8_lossy(line));
                out.push('\n');
            }
        }
        out
    }

    /// Parses a corpus file's text.
    ///
    /// Returns a description of the first malformed element on error.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("difftest-case v1") => {}
            other => return Err(format!("bad header {other:?}")),
        }
        let mut note = String::new();
        let mut query = None;
        let mut blocks = Vec::new();
        while let Some(line) = lines.next() {
            if let Some(rest) = line.strip_prefix("note: ") {
                note = rest.to_string();
            } else if let Some(rest) = line.strip_prefix("query: ") {
                query = Some(rest.to_string());
            } else if let Some(rest) = line.strip_prefix("block: ") {
                let n: usize = rest
                    .parse()
                    .map_err(|e| format!("bad block count {rest:?}: {e}"))?;
                let mut block = Vec::with_capacity(n.min(4096));
                for i in 0..n {
                    let raw = lines
                        .next()
                        .ok_or_else(|| format!("block truncated at line {i} of {n}"))?;
                    block.push(raw.as_bytes().to_vec());
                }
                blocks.push(block);
            } else if line.is_empty() {
                continue;
            } else {
                return Err(format!("unexpected line {line:?}"));
            }
        }
        let query = query.ok_or_else(|| "missing query".to_string())?;
        if blocks.is_empty() {
            return Err("no blocks".to_string());
        }
        Ok(Self {
            query,
            blocks,
            note,
        })
    }

    /// Writes the case to `dir/<name>.case`, returning the path.
    pub fn save(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.case"));
        std::fs::write(&path, self.to_text())?;
        Ok(path)
    }
}

/// Loads every `*.case` file under `dir`, sorted by file name (so replay
/// order is stable). A missing directory yields an empty list.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Case)>, String> {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "case"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    entries.sort();
    let mut cases = Vec::with_capacity(entries.len());
    for path in entries {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path:?}: {e}"))?;
        let case = Case::from_text(&text).map_err(|e| format!("{path:?}: {e}"))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        cases.push((name, case));
    }
    Ok(cases)
}

/// The committed corpus directory of this crate.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let case = Case {
            query: "ERROR and blk_*".into(),
            blocks: vec![
                vec![b"a 1".to_vec(), b"".to_vec(), b"block: 9 decoy".to_vec()],
                vec![b"b 2".to_vec()],
            ],
            note: "seed 5 case 17".into(),
        };
        let text = case.to_text();
        let back = Case::from_text(&text).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Case::from_text("").is_err());
        assert!(Case::from_text("difftest-case v1\nquery: x\nblock: 2\nonly-one\n").is_err());
        assert!(Case::from_text("difftest-case v1\nblock: 0\n").is_err());
        assert!(Case::from_text("difftest-case v9\nquery: x\n").is_err());
    }
}
