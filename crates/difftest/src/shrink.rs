//! Failure minimization: drop lines → shorten tokens → simplify the query.
//!
//! The minimizer is generic over a *still-fails* predicate so the harness
//! self-test can shrink against an injected bug exactly the way the driver
//! shrinks against a real one. Shrinking is budgeted (each predicate call
//! re-runs the failing engine) and deterministic: candidates are tried in
//! a fixed order, greedily keeping any smaller case that still fails.

use crate::corpus::Case;
use crate::query::QueryAst;

/// Upper bound on predicate evaluations per shrink run.
pub const DEFAULT_BUDGET: usize = 400;

/// Minimizes `case` while `still_fails` holds, within `budget` predicate
/// calls. Returns the smallest failing case found (possibly the input).
pub fn minimize<F>(case: &Case, mut still_fails: F, budget: usize) -> Case
where
    F: FnMut(&Case) -> bool,
{
    let mut best = case.clone();
    let mut calls = 0usize;
    let mut check = |c: &Case, calls: &mut usize| -> bool {
        if *calls >= budget {
            return false;
        }
        *calls += 1;
        c.total_lines() > 0 && still_fails(c)
    };

    // Pass 1: structural — merge blocks, then delete line chunks.
    loop {
        let mut improved = false;
        if best.blocks.len() > 1 {
            let merged = Case {
                blocks: vec![best.blocks.iter().flatten().cloned().collect()],
                ..best.clone()
            };
            if check(&merged, &mut calls) {
                best = merged;
                improved = true;
            }
        }
        if drop_line_chunks(&mut best, &mut |c| check(c, &mut calls)) {
            improved = true;
        }
        if !improved || calls >= budget {
            break;
        }
    }

    // Pass 2: shorten surviving lines token by token.
    shorten_lines(&mut best, &mut |c| check(c, &mut calls));

    // Pass 3: simplify the query AST.
    simplify_query(&mut best, &mut |c| check(c, &mut calls));

    best
}

/// ddmin-style chunked line deletion across all blocks.
fn drop_line_chunks<F>(best: &mut Case, check: &mut F) -> bool
where
    F: FnMut(&Case) -> bool,
{
    let mut improved = false;
    let mut chunk = best.total_lines().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut index = 0usize;
        loop {
            let total = best.total_lines();
            if index >= total {
                break;
            }
            let candidate = remove_range(best, index, chunk);
            if candidate.total_lines() < total && check(&candidate) {
                *best = candidate;
                improved = true;
                // Same index now points at fresh lines.
            } else {
                index += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    improved
}

/// Removes `count` lines starting at flat index `start`, dropping blocks
/// that become empty.
fn remove_range(case: &Case, start: usize, count: usize) -> Case {
    let mut out = case.clone();
    let mut flat = 0usize;
    for block in &mut out.blocks {
        block.retain(|_| {
            let keep = !(start..start + count).contains(&flat);
            flat += 1;
            keep
        });
    }
    out.blocks.retain(|b| !b.is_empty());
    out
}

/// Tries truncating each line (drop trailing words, then halve the line).
fn shorten_lines<F>(best: &mut Case, check: &mut F)
where
    F: FnMut(&Case) -> bool,
{
    for bi in 0..best.blocks.len() {
        for li in 0..best.blocks[bi].len() {
            // Drop trailing whitespace-separated words.
            loop {
                let line = &best.blocks[bi][li];
                let Some(cut) = line.iter().rposition(|&b| b == b' ') else {
                    break;
                };
                let mut candidate = best.clone();
                candidate.blocks[bi][li].truncate(cut);
                if check(&candidate) {
                    *best = candidate;
                } else {
                    break;
                }
            }
            // Halve what remains.
            loop {
                let len = best.blocks[bi][li].len();
                if len < 2 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.blocks[bi][li].truncate(len / 2);
                if check(&candidate) {
                    *best = candidate;
                } else {
                    break;
                }
            }
        }
    }
}

/// Simplifies the query: drop chain steps, drop words, shorten terms,
/// strip wildcards.
fn simplify_query<F>(best: &mut Case, check: &mut F)
where
    F: FnMut(&Case) -> bool,
{
    let Some(mut ast) = best.ast() else {
        return;
    };

    // Drop whole (op, term) steps, last first (cheap to re-render).
    let mut i = ast.rest.len();
    while i > 0 {
        i -= 1;
        let mut candidate = ast.clone();
        candidate.rest.remove(i);
        if try_query(best, &candidate, check) {
            ast = candidate;
        }
    }
    // Promote a later term to `first` (drops the first term).
    if !ast.rest.is_empty() {
        let mut candidate = ast.clone();
        let (_, term) = candidate.rest.remove(0);
        candidate.first = term;
        if try_query(best, &candidate, check) {
            ast = candidate;
        }
    }

    // Per-term simplifications.
    for ti in 0..=ast.rest.len() {
        loop {
            let term = term_at(&ast, ti).to_string();
            let mut progressed = false;
            for simpler in simpler_terms(&term) {
                let mut candidate = ast.clone();
                *term_at_mut(&mut candidate, ti) = simpler;
                if crate::query::valid_term(term_at(&candidate, ti))
                    && try_query(best, &candidate, check)
                {
                    ast = candidate;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

fn term_at(ast: &QueryAst, i: usize) -> &str {
    if i == 0 {
        &ast.first
    } else {
        &ast.rest[i - 1].1
    }
}

fn term_at_mut(ast: &mut QueryAst, i: usize) -> &mut String {
    if i == 0 {
        &mut ast.first
    } else {
        &mut ast.rest[i - 1].1
    }
}

/// Candidate simplifications of one term, in preference order.
fn simpler_terms(term: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Drop a word (multi-word phrases first shrink to single words).
    let words: Vec<&str> = term.split(' ').collect();
    if words.len() > 1 {
        for drop in 0..words.len() {
            let kept: Vec<&str> = words
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, w)| *w)
                .collect();
            out.push(kept.join(" "));
        }
    }
    // Strip wildcards.
    if term.contains('*') {
        out.push(term.replace('*', ""));
    }
    // Halve and chop one byte off either end (ASCII only: corpus files may
    // carry multibyte text where byte slicing would split a char).
    if term.len() >= 2 && term.is_ascii() {
        out.push(term[..term.len() / 2].to_string());
        out.push(term[1..].to_string());
        out.push(term[..term.len() - 1].to_string());
    }
    out
}

fn try_query<F>(best: &mut Case, ast: &QueryAst, check: &mut F) -> bool
where
    F: FnMut(&Case) -> bool,
{
    let mut candidate = best.clone();
    candidate.query = ast.render();
    if check(&candidate) {
        *best = candidate;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_of(lines: &[&str], query: &str) -> Case {
        Case {
            query: query.to_string(),
            blocks: vec![lines.iter().map(|l| l.as_bytes().to_vec()).collect()],
            note: String::new(),
        }
    }

    #[test]
    fn minimizes_to_the_triggering_line() {
        // "Bug": any case whose log contains a line with "BAD" fails.
        let case = case_of(
            &["ok one", "ok two", "BAD apple", "ok three", "ok four"],
            "apple and ok or zz*9",
        );
        let shrunk = minimize(
            &case,
            |c| c.blocks.iter().flatten().any(|l| l.windows(3).any(|w| w == b"BAD")),
            DEFAULT_BUDGET,
        );
        assert_eq!(shrunk.total_lines(), 1);
        let line = &shrunk.blocks[0][0];
        assert!(line.len() <= 3, "{:?}", String::from_utf8_lossy(line));
        // The query also shrank to a single short term.
        assert!(shrunk.query.len() < case.query.len());
    }

    #[test]
    fn multi_block_failures_merge() {
        let case = Case {
            query: "x".into(),
            blocks: vec![
                vec![b"x 1".to_vec()],
                vec![b"noise".to_vec(), b"x 2".to_vec()],
            ],
            note: String::new(),
        };
        let shrunk = minimize(&case, |c| c.total_lines() >= 1, DEFAULT_BUDGET);
        assert_eq!(shrunk.blocks.len(), 1);
        assert_eq!(shrunk.total_lines(), 1);
    }
}
