//! The `difftest` driver: seeded differential fuzzing of the whole engine
//! matrix.
//!
//! ```text
//! difftest --seed N --cases M [--threads 1,4] [--no-baselines]
//!          [--corpus-dir DIR] [--bench-out FILE] [--budget-secs S]
//!          [--replay FILE] [--cluster-faults] [--aggregates]
//! ```
//!
//! `--cluster-faults` switches to the cluster-under-faults mode: each case
//! ingests a generated log into a replicated cluster over a seeded fault
//! schedule and checks the partial-results contract against the oracle
//! (see [`difftest::cluster_faults`]).
//!
//! `--aggregates` switches to the aggregate mode: each case runs one
//! aggregate verb (optionally under a filter) through every engine config
//! at every thread count and compares the merged result against a naive
//! raw-line oracle, plus the zero-decompression pushdown and cache
//! contracts (see [`difftest::aggregates`]).
//!
//! Stdout is deterministic for a given seed and case count (timings go
//! only to the `--bench-out` JSON), so two runs with the same arguments
//! are byte-identical — the reproducibility contract of the harness.
//! Failures are shrunk and written as replayable corpus files; the exit
//! code is non-zero when any case failed.

#![forbid(unsafe_code)]

use difftest::corpus::{self, Case};
use difftest::query::QueryAst;
use difftest::{case_seed, genlog, shrink, Harness};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    seed: u64,
    cases: u64,
    threads: Vec<usize>,
    with_baselines: bool,
    corpus_dir: PathBuf,
    bench_out: Option<String>,
    budget_secs: Option<u64>,
    replay: Option<String>,
    cluster_faults: bool,
    aggregates: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        cases: 100,
        threads: vec![1, 4],
        with_baselines: true,
        corpus_dir: corpus::default_dir(),
        bench_out: None,
        budget_secs: None,
        replay: None,
        cluster_faults: false,
        aggregates: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{} needs a value", argv[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = value(i).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--cases" => {
                args.cases = value(i).parse().expect("--cases takes a u64");
                i += 2;
            }
            "--threads" => {
                args.threads = value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("thread count"))
                    .collect();
                i += 2;
            }
            "--no-baselines" => {
                args.with_baselines = false;
                i += 1;
            }
            "--corpus-dir" => {
                args.corpus_dir = PathBuf::from(value(i));
                i += 2;
            }
            "--bench-out" => {
                args.bench_out = Some(value(i));
                i += 2;
            }
            "--budget-secs" => {
                args.budget_secs = Some(value(i).parse().expect("--budget-secs takes seconds"));
                i += 2;
            }
            "--replay" => {
                args.replay = Some(value(i));
                i += 2;
            }
            "--cluster-faults" => {
                args.cluster_faults = true;
                i += 1;
            }
            "--aggregates" => {
                args.aggregates = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The `--cluster-faults` mode: seeded fault schedules against the
/// replicated cluster, checked against the oracle's partial-results
/// contract. Stdout is deterministic for a given seed and case count.
fn run_cluster_faults(args: &Args) -> ! {
    let start = Instant::now();
    let mut summary = difftest::cluster_faults::Summary::default();
    let mut truncated = false;
    for case in 0..args.cases {
        if let Some(budget) = args.budget_secs {
            if start.elapsed().as_secs() >= budget {
                truncated = true;
                break;
            }
        }
        let outcome = difftest::cluster_faults::run_case(args.seed, case);
        if let Some(d) = &outcome.disagreement {
            println!("case {case}: FAIL {d}");
        }
        summary.absorb(case, &outcome);
    }
    if truncated {
        println!(
            "difftest: stopped at the wall-clock budget after {} of {} cases",
            summary.cases, args.cases
        );
    }
    println!(
        "difftest cluster-faults: seed={} cases={} faults_injected={} fallbacks={} retries={} ingests_aborted={} partials={} disagreements={}",
        args.seed,
        summary.cases,
        summary.faults_injected,
        summary.fallbacks,
        summary.retries,
        summary.ingests_aborted,
        summary.partials,
        summary.disagreements.len(),
    );
    if let Some(out) = &args.bench_out {
        let elapsed = start.elapsed().as_secs_f64();
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\n  \"bench\": \"cluster_faults\",\n  \"seed\": {},\n  \"cases\": {},\n  \"faults_injected\": {},\n  \"fallbacks\": {},\n  \"retries\": {},\n  \"ingests_aborted\": {},\n  \"partials\": {},\n  \"disagreements\": {},\n  \"elapsed_secs\": {elapsed:.3}\n}}\n",
            args.seed,
            summary.cases,
            summary.faults_injected,
            summary.fallbacks,
            summary.retries,
            summary.ingests_aborted,
            summary.partials,
            summary.disagreements.len(),
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
        }
    }
    std::process::exit(if summary.disagreements.is_empty() { 0 } else { 1 });
}

/// The `--aggregates` mode: aggregate verbs over generated logs, every
/// engine config at every thread count, against the naive raw-line oracle
/// (see [`difftest::aggregates`]). Stdout is deterministic for a given
/// seed and case count.
fn run_aggregates(args: &Args) -> ! {
    let start = Instant::now();
    let mut summary = difftest::aggregates::Summary::default();
    let mut truncated = false;
    for case in 0..args.cases {
        if let Some(budget) = args.budget_secs {
            if start.elapsed().as_secs() >= budget {
                truncated = true;
                break;
            }
        }
        let outcome = difftest::aggregates::run_case(args.seed, case, &args.threads);
        if let Some(d) = &outcome.disagreement {
            println!("case {case}: FAIL {d}");
        }
        summary.absorb(case, &outcome);
    }
    if truncated {
        println!(
            "difftest: stopped at the wall-clock budget after {} of {} cases",
            summary.cases, args.cases
        );
    }
    let join = |m: &std::collections::BTreeMap<&str, u64>| {
        m.iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "difftest aggregates: seed={} cases={} engines={} threads={:?} filtered={} verbs[{}] layers[{}] decompression_checks={} disagreements={}",
        args.seed,
        summary.cases,
        difftest::harness::engine_matrix().len(),
        args.threads,
        summary.filtered,
        join(&summary.verbs),
        join(&summary.layers),
        summary.decompression_checks,
        summary.disagreements.len(),
    );
    if let Some(out) = &args.bench_out {
        let elapsed = start.elapsed().as_secs_f64();
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\n  \"bench\": \"aggregates\",\n  \"seed\": {},\n  \"cases\": {},\n  \"filtered\": {},\n  \"decompression_checks\": {},\n  \"disagreements\": {},\n  \"elapsed_secs\": {elapsed:.3},\n  \"cases_per_sec\": {:.2}\n}}\n",
            args.seed,
            summary.cases,
            summary.filtered,
            summary.decompression_checks,
            summary.disagreements.len(),
            if elapsed > 0.0 {
                summary.cases as f64 / elapsed
            } else {
                0.0
            },
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
        }
    }
    std::process::exit(if summary.disagreements.is_empty() { 0 } else { 1 });
}

fn main() {
    let args = parse_args();
    if args.cluster_faults {
        run_cluster_faults(&args);
    }
    if args.aggregates {
        run_aggregates(&args);
    }
    let harness = Harness {
        threads: args.threads.clone(),
        with_baselines: args.with_baselines,
        extra: Vec::new(),
    };

    if let Some(path) = &args.replay {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let case = Case::from_text(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        match harness.check(&case) {
            Ok(()) => println!("replay {path}: PASS"),
            Err(f) => {
                println!("replay {path}: FAIL {f}");
                std::process::exit(1);
            }
        }
        return;
    }

    let start = Instant::now();
    let mut failures = 0u64;
    let mut cases_run = 0u64;
    let mut truncated = false;

    for i in 0..args.cases {
        if let Some(budget) = args.budget_secs {
            if start.elapsed().as_secs() >= budget {
                truncated = true;
                break;
            }
        }
        cases_run += 1;
        let mut rng = StdRng::seed_from_u64(case_seed(args.seed, i));
        let blocks = genlog::generate_blocks(&mut rng);
        let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
        let ast = QueryAst::generate(&mut rng, &lines);
        let case = Case::new(&ast, blocks);

        let Err(failure) = harness.check(&case) else {
            continue;
        };
        failures += 1;
        println!("case {i}: FAIL {failure}");

        let engine = failure.engine.clone();
        let shrunk = shrink::minimize(
            &case,
            |c| harness.check_filtered(c, Some(&engine)).is_err(),
            shrink::DEFAULT_BUDGET,
        );
        let mut named = shrunk;
        named.note = format!("seed {} case {i}: {failure}", args.seed);
        let name = format!("fail-s{}-c{i}", args.seed);
        match named.save(&args.corpus_dir, &name) {
            Ok(path) => println!(
                "case {i}: shrunk to {} lines, query `{}`; saved {}",
                named.total_lines(),
                named.query,
                path.display()
            ),
            Err(e) => println!("case {i}: could not save corpus file: {e}"),
        }
    }

    if truncated {
        println!(
            "difftest: stopped at the wall-clock budget after {cases_run} of {} cases",
            args.cases
        );
    }
    println!(
        "difftest: seed={} cases={cases_run} engines={} threads={:?} baselines={} failures={failures}",
        args.seed,
        difftest::harness::engine_matrix().len(),
        args.threads,
        args.with_baselines,
    );

    if let Some(out) = &args.bench_out {
        let elapsed = start.elapsed().as_secs_f64();
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\n  \"bench\": \"difftest\",\n  \"seed\": {},\n  \"cases\": {cases_run},\n  \"failures\": {failures},\n  \"elapsed_secs\": {elapsed:.3},\n  \"cases_per_sec\": {:.2}\n}}\n",
            args.seed,
            if elapsed > 0.0 { cases_run as f64 / elapsed } else { 0.0 },
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
