//! Shared proptest strategies and assertion helpers.
//!
//! The per-crate property tests (`logparse`, `strsearch`, `baselines`,
//! `loggrep`) previously each carried their own copy of "structured-ish
//! line", "random log" and "random query" generators plus a naive oracle.
//! They live here once, parameterized by vocabulary, so every suite draws
//! from the same machinery — and the oracle they assert against is this
//! crate's independent evaluator, not the engine's own matcher.

use crate::oracle;
use crate::query::QueryAst;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::{boxed, Union};

/// One word drawn from `atoms` — each atom is either a literal word or a
/// character-class pattern like `"[a-z]{1,6}"` (the vendor proptest's
/// regex subset).
pub fn word_strategy(atoms: &'static [&'static str]) -> Union<String> {
    Union::new(atoms.iter().map(|a| boxed(*a)).collect())
}

/// A line of 1..`max_words` space-separated words from `atoms`.
pub fn line_strategy(
    atoms: &'static [&'static str],
    max_words: usize,
) -> impl Strategy<Value = String> {
    vec(word_strategy(atoms), 1..max_words.max(2)).prop_map(|words| words.join(" "))
}

/// A whole log: `lines` lines from [`line_strategy`], newline-joined with
/// a trailing newline.
pub fn log_strategy(
    atoms: &'static [&'static str],
    max_words: usize,
    lines: std::ops::Range<usize>,
) -> impl Strategy<Value = String> {
    vec(line_strategy(atoms, max_words), lines).prop_map(|lines| {
        let mut s = lines.join("\n");
        s.push('\n');
        s
    })
}

/// A query chain of 1..=`max_ops`+1 terms from `terms`, joined by random
/// `and`/`or`/`not` operators. Terms may contain `*` wildcards; callers
/// skip the (rare) samples [`loggrep::query::lang::Query::parse`] rejects,
/// e.g. all-star terms.
pub fn query_strategy(
    terms: &'static [&'static str],
    max_ops: usize,
) -> impl Strategy<Value = String> {
    let op = prop_oneof![
        Just(" and ".to_string()),
        Just(" or ".to_string()),
        Just(" not ".to_string())
    ];
    (
        word_strategy(terms),
        vec((op, word_strategy(terms)), 0..max_ops.max(1) + 1),
    )
        .prop_map(|(first, rest)| {
            let mut q = first;
            for (op, term) in rest {
                q.push_str(&op);
                q.push_str(&term);
            }
            q
        })
}

/// A `key=value`-style line with mixed delimiter runs — the shape the
/// static-pattern parser's property tests exercise (token/delimiter
/// interleavings, trailing delimiters, empty lines).
pub fn kv_line_strategy() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("start".to_string()),
        Just("stop".to_string()),
        Just("level".to_string()),
        "[a-z]{1,5}",
        "[0-9]{1,6}",
        "[0-9a-f]{2,8}",
    ];
    let delim = prop_oneof![
        Just(" ".to_string()),
        Just(", ".to_string()),
        Just(":".to_string()),
        Just("=".to_string()),
        Just("  ".to_string()),
    ];
    (
        vec((token, delim), 0..6),
        prop_oneof![Just("".to_string()), Just(" ".to_string())],
    )
        .prop_map(|(pairs, tail)| {
            let mut s = String::new();
            for (t, d) in pairs {
                s.push_str(&t);
                s.push_str(&d);
            }
            s.push_str(&tail);
            s
        })
}

/// The independent-oracle verdict for `query_text` over `raw`: the matching
/// lines in order, or `None` when the query text does not parse.
///
/// Evaluation goes through [`crate::oracle`] — *not* through the language's
/// own `matches_line` — so engine and reference cannot share a matcher bug.
pub fn oracle_lines(raw: &[u8], query_text: &str) -> Option<Vec<Vec<u8>>> {
    let ast = QueryAst::parse(query_text)?;
    Some(
        loggrep::engine::split_lines(raw)
            .into_iter()
            .filter(|l| oracle::ast_matches(&ast, l))
            .map(|l| l.to_vec())
            .collect(),
    )
}

/// Naive find-all reference for substring searchers (re-export for the
/// `strsearch` property tests).
pub use crate::oracle::naive_find_all;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn strategies_sample_cleanly() {
        let mut rng = TestRng::deterministic("strategies_smoke");
        let log = log_strategy(&["read", "[0-9]{1,3}", "blk_"], 5, 1..20);
        let query = query_strategy(&["read", "b*k", "[a-z]{1,3}"], 2);
        for _ in 0..200 {
            let l = log.sample(&mut rng);
            assert!(l.ends_with('\n'));
            let q = query.sample(&mut rng);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn oracle_lines_matches_by_hand() {
        let raw = b"ERROR a\nINFO b\nERROR b\n";
        let got = oracle_lines(raw, "ERROR and b").unwrap();
        assert_eq!(got, vec![b"ERROR b".to_vec()]);
        assert_eq!(oracle_lines(raw, "and and"), None);
    }
}
