//! Grammar-based query generation.
//!
//! The query language is left-associative (`A and B not C or D` means
//! `((A and B) not C) or D`, see [`loggrep::query::lang::Query::parse`]),
//! so every expressible query is a left-deep chain. [`QueryAst`] models
//! exactly that shape: a first term plus a list of `(operator, term)`
//! steps. Terms are sampled from the log under test — exact tokens,
//! substrings, in-token wildcards — plus adversarial near-misses that
//! straddle capsule/stamp boundaries (off-by-one bytes at stamp min/max
//! edges, length extensions past pad widths).

use loggrep::query::lang::{Expr, Query, SearchString};
use rand::rngs::StdRng;
use rand::Rng;

/// A binary query operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Both sides must match.
    And,
    /// Either side matches.
    Or,
    /// Left matches and right does not.
    Not,
}

impl Op {
    /// The operator keyword as it appears in a rendered query.
    pub fn keyword(self) -> &'static str {
        match self {
            Op::And => "and",
            Op::Or => "or",
            Op::Not => "not",
        }
    }
}

/// A generated query: a left-deep operator chain over search-string terms.
///
/// Terms are stored as their raw text (single-space separated words, no
/// operator words) so the AST pretty-prints unambiguously and re-parses to
/// an equal expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAst {
    /// The leftmost search string.
    pub first: String,
    /// The remaining `(operator, search string)` steps, applied in order.
    pub rest: Vec<(Op, String)>,
}

impl QueryAst {
    /// Pretty-prints the query in canonical form (single spaces, lowercase
    /// operators).
    pub fn render(&self) -> String {
        let mut out = self.first.clone();
        for (op, term) in &self.rest {
            out.push(' ');
            out.push_str(op.keyword());
            out.push(' ');
            out.push_str(term);
        }
        out
    }

    /// The expression tree this AST denotes, built directly (not through
    /// the parser) — the reference for the round-trip property.
    pub fn expr(&self) -> Expr {
        let mut e = Expr::Str(SearchString::compile(&self.first).expect("valid term"));
        for (op, term) in &self.rest {
            let rhs = Expr::Str(SearchString::compile(term).expect("valid term"));
            e = match op {
                Op::And => Expr::And(Box::new(e), Box::new(rhs)),
                Op::Or => Expr::Or(Box::new(e), Box::new(rhs)),
                Op::Not => Expr::Not(Box::new(e), Box::new(rhs)),
            };
        }
        e
    }

    /// Every term of the chain, left to right.
    pub fn terms(&self) -> Vec<&str> {
        std::iter::once(self.first.as_str())
            .chain(self.rest.iter().map(|(_, t)| t.as_str()))
            .collect()
    }

    /// Rebuilds an AST from a rendered query (used by corpus replay). Only
    /// left-deep chains are expressible, so this is total for any text
    /// [`Query::parse`] accepts.
    pub fn parse(text: &str) -> Option<QueryAst> {
        let query = Query::parse(text).ok()?;
        let mut rest_rev: Vec<(Op, String)> = Vec::new();
        let mut cur = query.expr;
        let first = loop {
            match cur {
                Expr::Str(s) => break s.raw,
                Expr::And(l, r) => {
                    rest_rev.push((Op::And, str_of(*r)?));
                    cur = *l;
                }
                Expr::Or(l, r) => {
                    rest_rev.push((Op::Or, str_of(*r)?));
                    cur = *l;
                }
                Expr::Not(l, r) => {
                    rest_rev.push((Op::Not, str_of(*r)?));
                    cur = *l;
                }
            }
        };
        rest_rev.reverse();
        Some(QueryAst {
            first,
            rest: rest_rev,
        })
    }

    /// Generates a random query whose tokens are sampled from `lines`.
    pub fn generate(rng: &mut StdRng, lines: &[Vec<u8>]) -> QueryAst {
        let first = gen_term(rng, lines);
        let steps = rng.gen_range(0usize..4);
        let mut rest = Vec::with_capacity(steps);
        for _ in 0..steps {
            let op = match rng.gen_range(0u32..3) {
                0 => Op::And,
                1 => Op::Or,
                _ => Op::Not,
            };
            rest.push((op, gen_term(rng, lines)));
        }
        QueryAst { first, rest }
    }
}

fn str_of(e: Expr) -> Option<String> {
    match e {
        Expr::Str(s) => Some(s.raw),
        _ => None,
    }
}

/// True when `word` can be one word of a search-string term: non-empty,
/// no whitespace or newlines, and not an operator keyword.
pub fn valid_term_word(word: &str) -> bool {
    !word.is_empty()
        && !word.bytes().any(|b| b.is_ascii_whitespace() || b == 0)
        && !matches!(word.to_ascii_lowercase().as_str(), "and" | "or" | "not")
}

/// True when `term` is a well-formed search string the generator may emit:
/// every word valid, at least one word with literal (non-`*`) content, and
/// the whole string compiles (rejects all-star).
pub fn valid_term(term: &str) -> bool {
    let words: Vec<&str> = term.split(' ').collect();
    !words.is_empty()
        && words.iter().all(|w| valid_term_word(w))
        && words.iter().any(|w| w.bytes().any(|b| b != b'*'))
        && SearchString::compile(term).is_ok()
}

/// Draws one search-string term from the log under test.
fn gen_term(rng: &mut StdRng, lines: &[Vec<u8>]) -> String {
    for _ in 0..64 {
        let candidate = propose_term(rng, lines);
        if valid_term(&candidate) && candidate.len() <= 160 {
            return candidate;
        }
    }
    // Extremely unlikely fallback (e.g. a pathological empty log).
    "x".to_string()
}

/// Tokens of one line, split on the default delimiters (what becomes a
/// variable value or static-pattern token downstream).
fn line_tokens(line: &[u8]) -> Vec<String> {
    line.split(|b| logparse::DEFAULT_DELIMS.contains(b))
        .filter(|t| !t.is_empty())
        .map(|t| String::from_utf8_lossy(t).into_owned())
        .collect()
}

fn pick_line<'a>(rng: &mut StdRng, lines: &'a [Vec<u8>]) -> &'a [u8] {
    if lines.is_empty() {
        return b"";
    }
    &lines[rng.gen_range(0usize..lines.len())]
}

fn pick_token(rng: &mut StdRng, lines: &[Vec<u8>]) -> Option<String> {
    for _ in 0..8 {
        let tokens = line_tokens(pick_line(rng, lines));
        if !tokens.is_empty() {
            return Some(tokens[rng.gen_range(0usize..tokens.len())].clone());
        }
    }
    None
}

fn propose_term(rng: &mut StdRng, lines: &[Vec<u8>]) -> String {
    let Some(token) = pick_token(rng, lines) else {
        return random_word(rng);
    };
    match rng.gen_range(0u32..10) {
        // Exact token: straight hit on one variable value or static token.
        0 | 1 => token,
        // Substring of a token (tests partial matching inside capsules).
        2 => substring(rng, &token),
        // In-token wildcard variants.
        3 => wildcardize(rng, &token),
        // Near-miss: one byte off — straddles a stamp's min/max edge.
        4 => near_miss(rng, &token),
        // Length edge: extend past the capsule pad width.
        5 => {
            let mut t = token;
            let b = *t.as_bytes().last().unwrap_or(&b'x');
            let extra = rng.gen_range(1usize..4);
            for _ in 0..extra {
                t.push(b as char);
            }
            t
        }
        // Multi-word phrase straight from one line.
        6 | 7 => phrase(rng, lines),
        // Token from one line wildcarded against the whole log.
        8 => {
            let sub = substring(rng, &token);
            wildcardize(rng, &sub)
        }
        // Purely random word (usually matches nothing).
        _ => random_word(rng),
    }
}

fn substring(rng: &mut StdRng, token: &str) -> String {
    let bytes = token.as_bytes();
    if bytes.len() <= 1 {
        return token.to_string();
    }
    let start = rng.gen_range(0usize..bytes.len());
    let hi = bytes.len() + 1;
    let end = rng.gen_range(start + 1..hi);
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn wildcardize(rng: &mut StdRng, token: &str) -> String {
    let bytes = token.as_bytes();
    if bytes.is_empty() {
        return "*x".to_string();
    }
    match rng.gen_range(0u32..4) {
        // prefix*
        0 => {
            let keep = rng.gen_range(1usize..bytes.len() + 1);
            format!("{}*", String::from_utf8_lossy(&bytes[..keep]))
        }
        // *suffix
        1 => {
            let keep = rng.gen_range(1usize..bytes.len() + 1);
            format!("*{}", String::from_utf8_lossy(&bytes[bytes.len() - keep..]))
        }
        // pre*post (middle elided)
        2 => {
            let a = rng.gen_range(0usize..bytes.len());
            let b = rng.gen_range(a..bytes.len() + 1);
            format!(
                "{}*{}",
                String::from_utf8_lossy(&bytes[..a]),
                String::from_utf8_lossy(&bytes[b..])
            )
        }
        // star inserted at a random position
        _ => {
            let at = rng.gen_range(0usize..bytes.len() + 1);
            format!(
                "{}*{}",
                String::from_utf8_lossy(&bytes[..at]),
                String::from_utf8_lossy(&bytes[at..])
            )
        }
    }
}

fn near_miss(rng: &mut StdRng, token: &str) -> String {
    let mut bytes = token.as_bytes().to_vec();
    if bytes.is_empty() {
        return "q".to_string();
    }
    let i = rng.gen_range(0usize..bytes.len());
    match rng.gen_range(0u32..3) {
        // Nudge one byte up/down: lands just outside a stamp's [min, max].
        0 => bytes[i] = bytes[i].saturating_add(1).clamp(b'!', b'~'),
        1 => bytes[i] = bytes[i].saturating_sub(1).clamp(b'!', b'~'),
        // Swap in an uncommon printable byte.
        _ => bytes[i] = b'~',
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn phrase(rng: &mut StdRng, lines: &[Vec<u8>]) -> String {
    let line = pick_line(rng, lines);
    let words: Vec<&str> = std::str::from_utf8(line)
        .ok()
        .map(|s| s.split_whitespace().collect())
        .unwrap_or_default();
    let usable: Vec<&str> = words.into_iter().filter(|w| valid_term_word(w)).collect();
    if usable.is_empty() {
        return random_word(rng);
    }
    let start = rng.gen_range(0usize..usable.len());
    let len = rng.gen_range(1usize..4.min(usable.len() - start) + 1);
    usable[start..start + len].join(" ")
}

fn random_word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..7);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn render_parse_roundtrip_simple() {
        let ast = QueryAst {
            first: "ERROR".into(),
            rest: vec![(Op::And, "blk_*".into()), (Op::Not, "state:OK".into())],
        };
        let text = ast.render();
        assert_eq!(text, "ERROR and blk_* not state:OK");
        assert_eq!(QueryAst::parse(&text), Some(ast.clone()));
        let parsed = Query::parse(&text).unwrap();
        assert_eq!(parsed.expr, ast.expr());
    }

    #[test]
    fn generated_terms_are_valid(){
        let mut rng = StdRng::seed_from_u64(7);
        let lines: Vec<Vec<u8>> = vec![
            b"T134 bk.FF.13 read state: SUC#1604".to_vec(),
            b"error dst:11.8.42 x and not or".to_vec(),
            b"".to_vec(),
        ];
        for _ in 0..500 {
            let ast = QueryAst::generate(&mut rng, &lines);
            for term in ast.terms() {
                assert!(valid_term(term), "term {term:?}");
            }
            assert!(Query::parse(&ast.render()).is_ok(), "{:?}", ast.render());
        }
    }

    #[test]
    fn operator_words_never_sampled() {
        assert!(!valid_term_word("AND"));
        assert!(!valid_term_word("not"));
        assert!(!valid_term_word(""));
        assert!(valid_term_word("android")); // contains but is not an operator
    }
}
