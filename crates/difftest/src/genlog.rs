//! Adversarial log generation, layered on [`workloads::gen`].
//!
//! A case's log starts from one of two bases — a workload-catalog spec
//! (`workloads::all_logs()`, the paper's synthetic production/public logs)
//! or a runtime-built template mix — then a seeded subset of mutators is
//! applied:
//!
//! * **schema drift**: a second, unrelated base is spliced in mid-block, so
//!   template discovery sees the vocabulary change under its feet;
//! * **pad-edge tokens**: token lengths pushed to powers-of-two ± 1, the
//!   edges of fixed-length capsule padding;
//! * **type-mask flips**: a token's character class flipped mid-vector
//!   (digits → hex letters → punctuated), breaking class summaries;
//! * **empty values**: double delimiters and trailing `=` producing
//!   zero-length variable values, plus entirely empty lines;
//! * **huge / tiny vectors**: one template replicated hundreds of times
//!   next to templates that appear exactly once;
//! * **multi-block**: the final line set split into 1–3 separately
//!   compressed blocks.
//!
//! Every choice draws from the case RNG, so a seed reproduces the log
//! byte for byte.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Hard cap on lines per case, keeping one case affordable across the
/// whole engine matrix.
pub const MAX_LINES: usize = 600;

/// Generates the blocks of one case: `blocks[i]` is the line list of the
/// i-th independently compressed block.
pub fn generate_blocks(rng: &mut StdRng) -> Vec<Vec<Vec<u8>>> {
    let mut lines = base_lines(rng);

    if rng.gen_bool(0.35) {
        splice_schema_drift(rng, &mut lines);
    }
    if rng.gen_bool(0.5) {
        pad_edge_tokens(rng, &mut lines);
    }
    if rng.gen_bool(0.4) {
        flip_type_masks(rng, &mut lines);
    }
    if rng.gen_bool(0.35) {
        inject_empty_values(rng, &mut lines);
    }
    if rng.gen_bool(0.3) {
        replicate_huge_vector(rng, &mut lines);
    }
    if rng.gen_bool(0.4) {
        // Tiny vector: a template that appears exactly once.
        let at = rng.gen_range(0usize..lines.len() + 1);
        lines.insert(at, unique_line(rng));
    }
    lines.truncate(MAX_LINES);
    sanitize(&mut lines);

    split_blocks(rng, lines)
}

/// The base line set: either a workload-catalog spec or a runtime template
/// mix.
fn base_lines(rng: &mut StdRng) -> Vec<Vec<u8>> {
    if rng.gen_bool(0.45) {
        catalog_lines(rng)
    } else {
        template_mix_lines(rng)
    }
}

/// Lines from one of the paper's synthetic workloads.
fn catalog_lines(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let specs = workloads::all_logs();
    let spec = &specs[rng.gen_range(0usize..specs.len())];
    let raw = spec.generate(rng.next_u64(), rng.gen_range(1024usize..3072));
    let keep = rng.gen_range(20usize..150);
    raw.split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .take(keep)
        .map(|l| l.to_vec())
        .collect()
}

/// A runtime-built template: literal words interleaved with variable slots.
struct Template {
    parts: Vec<Seg>,
}

enum Seg {
    Lit(String),
    Hex { prefix: String, digits: usize },
    Dec { lo: u64, hi: u64 },
    Choice(Vec<String>),
    Ip,
    Counter(u64),
}

impl Template {
    fn render(&self, rng: &mut StdRng, i: u64, out: &mut Vec<u8>) {
        for (k, part) in self.parts.iter().enumerate() {
            if k > 0 {
                out.push(b' ');
            }
            match part {
                Seg::Lit(s) => out.extend_from_slice(s.as_bytes()),
                Seg::Hex { prefix, digits } => {
                    out.extend_from_slice(prefix.as_bytes());
                    for _ in 0..*digits {
                        let d = rng.gen_range(0u32..16);
                        out.push(char::from_digit(d, 16).expect("hex").to_ascii_uppercase() as u8);
                    }
                }
                Seg::Dec { lo, hi } => {
                    out.extend_from_slice(rng.gen_range(*lo..*hi).to_string().as_bytes())
                }
                Seg::Choice(opts) => {
                    let pick = &opts[rng.gen_range(0usize..opts.len())];
                    out.extend_from_slice(pick.as_bytes());
                }
                Seg::Ip => out.extend_from_slice(
                    format!("11.{}.{}.{}", rng.gen_range(0u32..4), rng.gen_range(0u32..32), rng.gen_range(1u32..255)).as_bytes(),
                ),
                Seg::Counter(start) => out.extend_from_slice((start + i).to_string().as_bytes()),
            }
        }
    }
}

fn random_literal(rng: &mut StdRng) -> String {
    const WORDS: &[&str] = &[
        "read", "write", "ERROR", "INFO", "WARN", "open", "close", "state:", "req", "done",
        "socket", "len=", "blk", "node", "GET", "PUT", "ts",
    ];
    WORDS[rng.gen_range(0usize..WORDS.len())].to_string()
}

fn random_template(rng: &mut StdRng) -> Template {
    let parts_n = rng.gen_range(2usize..7);
    let mut parts = Vec::with_capacity(parts_n);
    for _ in 0..parts_n {
        parts.push(match rng.gen_range(0u32..9) {
            0..=2 => Seg::Lit(random_literal(rng)),
            3 => Seg::Hex {
                prefix: ["blk_", "id_", "0x", ""][rng.gen_range(0usize..4)].to_string(),
                digits: rng.gen_range(1usize..10),
            },
            4 => Seg::Dec {
                lo: 0,
                hi: [10, 100, 65_536, 1_000_000_000][rng.gen_range(0usize..4)],
            },
            5 => Seg::Choice(
                ["OK", "ERR", "SUC#1604", "REQ_ST_CLOSED", "-104", "503"]
                    .iter()
                    .take(rng.gen_range(2usize..6))
                    .map(|s| s.to_string())
                    .collect(),
            ),
            6 => Seg::Ip,
            7 => Seg::Counter(rng.gen_range(0u64..10_000)),
            _ => Seg::Lit(format!("t{}", rng.gen_range(0u32..50))),
        });
    }
    Template { parts }
}

fn template_mix_lines(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let templates: Vec<Template> = (0..rng.gen_range(1usize..5)).map(|_| random_template(rng)).collect();
    let n = rng.gen_range(20usize..120);
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let t = &templates[rng.gen_range(0usize..templates.len())];
        let mut line = Vec::new();
        t.render(rng, i as u64, &mut line);
        lines.push(line);
    }
    lines
}

/// Splices a second, unrelated base into the middle: schema drift.
fn splice_schema_drift(rng: &mut StdRng, lines: &mut Vec<Vec<u8>>) {
    let mut other = base_lines(rng);
    other.truncate(rng.gen_range(5usize..60));
    let at = rng.gen_range(0usize..lines.len() + 1);
    let tail = lines.split_off(at);
    lines.extend(other);
    lines.extend(tail);
}

/// Pushes a few token lengths to fixed-width padding edges.
fn pad_edge_tokens(rng: &mut StdRng, lines: &mut [Vec<u8>]) {
    const EDGES: &[usize] = &[1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65];
    let hits = rng.gen_range(1usize..6);
    for _ in 0..hits {
        if lines.is_empty() {
            return;
        }
        let li = rng.gen_range(0usize..lines.len());
        let line = String::from_utf8_lossy(&lines[li]).into_owned();
        let mut words: Vec<String> = line.split(' ').map(|w| w.to_string()).collect();
        if words.is_empty() {
            continue;
        }
        let wi = rng.gen_range(0usize..words.len());
        let target = EDGES[rng.gen_range(0usize..EDGES.len())];
        let fill = *words[wi].as_bytes().last().unwrap_or(&b'k');
        let mut w = words[wi].clone().into_bytes();
        w.resize(target, fill);
        words[wi] = String::from_utf8_lossy(&w).into_owned();
        lines[li] = words.join(" ").into_bytes();
    }
}

/// Flips the character class of one token in a few lines (digit runs become
/// hex letters and vice versa), changing the type mask mid-vector.
fn flip_type_masks(rng: &mut StdRng, lines: &mut [Vec<u8>]) {
    let hits = rng.gen_range(1usize..8);
    for _ in 0..hits {
        if lines.is_empty() {
            return;
        }
        let li = rng.gen_range(0usize..lines.len());
        let line = &mut lines[li];
        if line.is_empty() {
            continue;
        }
        let at = rng.gen_range(0usize..line.len());
        for b in line.iter_mut().skip(at).take(4) {
            *b = match *b {
                b'0'..=b'9' => *b - b'0' + b'A',
                b'a'..=b'z' => b'0' + (*b - b'a') % 10,
                b'A'..=b'Z' => (*b - b'A') % 10 + b'0',
                other => other,
            };
        }
    }
}

/// Double delimiters, trailing `=`, and fully empty lines: zero-length
/// variable values.
fn inject_empty_values(rng: &mut StdRng, lines: &mut Vec<Vec<u8>>) {
    let hits = rng.gen_range(1usize..5);
    for _ in 0..hits {
        let kind = rng.gen_range(0u32..3);
        let at = rng.gen_range(0usize..lines.len() + 1);
        match kind {
            0 => lines.insert(at, Vec::new()),
            1 => lines.insert(at, format!("key=  v{} =", rng.gen_range(0u32..100)).into_bytes()),
            _ => {
                if !lines.is_empty() {
                    let li = at.min(lines.len() - 1);
                    lines[li].push(b'=');
                }
            }
        }
    }
}

/// Replicates one line into a huge vector with one varying counter token.
fn replicate_huge_vector(rng: &mut StdRng, lines: &mut Vec<Vec<u8>>) {
    if lines.is_empty() {
        return;
    }
    let seed_line = lines[rng.gen_range(0usize..lines.len())].clone();
    let copies = rng.gen_range(120usize..320);
    let at = rng.gen_range(0usize..lines.len() + 1);
    let burst: Vec<Vec<u8>> = (0..copies)
        .map(|i| {
            let mut l = seed_line.clone();
            l.push(b' ');
            l.extend_from_slice(format!("seq={i}").as_bytes());
            l
        })
        .collect();
    let tail = lines.split_off(at);
    lines.extend(burst);
    lines.extend(tail);
}

/// A line unlikely to share a template with anything else in the log.
fn unique_line(rng: &mut StdRng) -> Vec<u8> {
    format!(
        "zz{} lone #{} !{}",
        rng.gen_range(0u32..100_000),
        rng.gen_range(0u32..100_000),
        rng.gen_range(0u32..9)
    )
    .into_bytes()
}

/// Strips bytes the pipeline reserves (NUL pad, newlines inside a line)
/// and anything non-ASCII the mutators could have produced.
fn sanitize(lines: &mut [Vec<u8>]) {
    for line in lines.iter_mut() {
        line.retain(|&b| b != 0 && b != b'\n' && b != b'\r' && b.is_ascii());
    }
}

/// Splits the final line set into 1–3 blocks at random cut points.
fn split_blocks(rng: &mut StdRng, lines: Vec<Vec<u8>>) -> Vec<Vec<Vec<u8>>> {
    let nblocks = rng.gen_range(1usize..4).min(lines.len().max(1));
    if nblocks <= 1 || lines.len() < 2 {
        return vec![lines];
    }
    let mut cuts: Vec<usize> = (0..nblocks - 1)
        .map(|_| rng.gen_range(1usize..lines.len()))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut blocks = Vec::with_capacity(cuts.len() + 1);
    let mut rest = lines;
    for cut in cuts.iter().rev() {
        let tail = rest.split_off(*cut);
        blocks.push(tail);
    }
    blocks.push(rest);
    blocks.reverse();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let a = generate_blocks(&mut StdRng::seed_from_u64(42));
        let b = generate_blocks(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = generate_blocks(&mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn blocks_are_clean_and_bounded() {
        for seed in 0..40 {
            let blocks = generate_blocks(&mut StdRng::seed_from_u64(seed));
            assert!(!blocks.is_empty());
            let total: usize = blocks.iter().map(|b| b.len()).sum();
            assert!(total <= MAX_LINES, "seed {seed}: {total} lines");
            for line in blocks.iter().flatten() {
                assert!(
                    line.iter().all(|&b| b != 0 && b != b'\n' && b.is_ascii()),
                    "seed {seed}: dirty line {:?}",
                    String::from_utf8_lossy(line)
                );
            }
        }
    }
}
