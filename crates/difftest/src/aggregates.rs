//! The `--aggregates` mode: differential testing of the aggregate sink.
//!
//! Each case generates an adversarial multi-block log ([`crate::genlog`]),
//! optionally a filter query, and one aggregate verb, then runs it through
//! every LogGrep engine configuration of the §6.3 matrix at every thread
//! count and compares the merged result against a naive oracle computed
//! from the raw lines alone:
//!
//! * `count` counts oracle-matched lines;
//! * `count-by-template` re-derives the static templates with a plain
//!   [`logparse::Parser`] (no capsules, no compression) and tallies
//!   matched lines per template;
//! * `top-K` tallies the variable column's raw values for matched rows;
//! * `histogram` buckets matched global line numbers.
//!
//! On top of result equality it enforces the pushdown contract: unfiltered
//! metadata verbs must decompress **zero** Capsules, unfiltered top-K must
//! stay within its predicted layer's decompression bound ([`AggDrift`]),
//! and with the query cache on, a repeated aggregate must hit the cache
//! and return the identical result.

use crate::harness::{block_bytes, engine_matrix};
use crate::oracle;
use crate::query::QueryAst;
use crate::{case_seed, genlog};
use loggrep::query::lang::AggSpec;
use loggrep::{AggDrift, AggResult, LogGrep};
use logparse::{Parser, ParserConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The outcome of one aggregate case.
#[derive(Debug)]
pub struct Outcome {
    /// First engine that disagreed with the oracle (or broke an
    /// invariant), with a description — `None` when every engine agreed.
    pub disagreement: Option<String>,
    /// The verb this case exercised (`count`, `count-by-template`, ...).
    pub verb: &'static str,
    /// Whether the aggregate ran under a filter query.
    pub filtered: bool,
    /// The layer the default engine answered at (single-threaded, cold).
    pub layer: &'static str,
    /// How many per-block zero/bounded-decompression checks were enforced.
    pub decompression_checks: u64,
}

/// Running totals across cases, for the deterministic summary line.
#[derive(Debug, Default)]
pub struct Summary {
    /// Cases actually run.
    pub cases: u64,
    /// Cases that carried a filter query.
    pub filtered: u64,
    /// Cases per verb.
    pub verbs: BTreeMap<&'static str, u64>,
    /// Cases per answering layer (default engine).
    pub layers: BTreeMap<&'static str, u64>,
    /// Total decompression-bound checks enforced.
    pub decompression_checks: u64,
    /// `(case index, description)` for every disagreement.
    pub disagreements: Vec<(u64, String)>,
}

impl Summary {
    /// Folds one case's outcome into the totals.
    pub fn absorb(&mut self, case: u64, outcome: &Outcome) {
        self.cases += 1;
        self.filtered += u64::from(outcome.filtered);
        *self.verbs.entry(outcome.verb).or_insert(0) += 1;
        *self.layers.entry(outcome.layer).or_insert(0) += 1;
        self.decompression_checks += outcome.decompression_checks;
        if let Some(d) = &outcome.disagreement {
            self.disagreements.push((case, d.clone()));
        }
    }
}

/// Per-block oracle parse: the static templates and row groups, derived
/// with the default parser configuration every matrix engine shares.
struct OracleBlock<'a> {
    lines: &'a [Vec<u8>],
    parsed: logparse::ParsedBlock,
    /// Archive group index -> parser template id (empty groups skipped,
    /// mirroring the engine's assembler).
    nonempty: Vec<usize>,
}

impl<'a> OracleBlock<'a> {
    fn new(lines: &'a [Vec<u8>]) -> Self {
        let parser = Parser::train(&ParserConfig::default(), lines.iter().map(|l| l.as_slice()));
        let parsed = parser.parse_all(lines.iter().map(|l| l.as_slice()));
        let nonempty = parsed
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.rows() > 0)
            .map(|(tid, _)| tid)
            .collect();
        Self {
            lines,
            parsed,
            nonempty,
        }
    }

    fn matches(&self, filter: Option<&QueryAst>, lineno: u32) -> bool {
        filter.is_none_or(|ast| oracle::ast_matches(ast, &self.lines[lineno as usize]))
    }
}

/// Computes the oracle answer for `spec` over all blocks, from raw lines
/// and a plain static-pattern parse alone.
fn oracle_result(blocks: &[OracleBlock<'_>], filter: Option<&QueryAst>, spec: &AggSpec) -> AggResult {
    match spec {
        AggSpec::Count => {
            let mut n = 0u64;
            for b in blocks {
                n += b
                    .lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| b.matches(filter, *i as u32))
                    .count() as u64;
            }
            AggResult::Count(n)
        }
        AggSpec::CountByTemplate => {
            let mut tally: HashMap<String, u64> = HashMap::new();
            for b in blocks {
                for &tid in &b.nonempty {
                    let group = &b.parsed.groups[tid];
                    let hits = group
                        .line_numbers
                        .iter()
                        .filter(|&&l| b.matches(filter, l))
                        .count() as u64;
                    if hits > 0 {
                        *tally
                            .entry(b.parsed.templates[tid].display())
                            .or_insert(0) += hits;
                    }
                }
            }
            let mut out: Vec<(String, u64)> = tally.into_iter().collect();
            out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            AggResult::CountByTemplate(out)
        }
        AggSpec::TopK { k, template, slot } => {
            let mut tally: HashMap<Vec<u8>, u64> = HashMap::new();
            for b in blocks {
                let Some(&tid) = b.nonempty.get(*template) else {
                    continue;
                };
                let group = &b.parsed.groups[tid];
                let Some(column) = group.vars.get(*slot) else {
                    continue;
                };
                for (row, &lineno) in group.line_numbers.iter().enumerate() {
                    if b.matches(filter, lineno) {
                        if let Some(value) = column.get(row) {
                            *tally.entry(value.to_vec()).or_insert(0) += 1;
                        }
                    }
                }
            }
            let mut values: Vec<(Vec<u8>, u64)> = tally.into_iter().collect();
            values.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            AggResult::TopK { k: *k, values }
        }
        AggSpec::Histogram { bucket } => {
            let mut tally: HashMap<u64, u64> = HashMap::new();
            let mut offset = 0u64;
            for b in blocks {
                for (i, _) in b.lines.iter().enumerate() {
                    if b.matches(filter, i as u32) {
                        *tally
                            .entry((offset + i as u64) / bucket * bucket)
                            .or_insert(0) += 1;
                    }
                }
                offset += b.lines.len() as u64;
            }
            let mut buckets: Vec<(u64, u64)> = tally.into_iter().collect();
            buckets.sort_unstable();
            AggResult::Histogram {
                bucket: *bucket,
                buckets,
            }
        }
    }
}

/// Picks the aggregate verb for a case — top-K targets a variable slot
/// that actually exists in the first block, so most top-K cases hit data.
fn pick_spec(rng: &mut StdRng, first: &OracleBlock<'_>) -> AggSpec {
    match rng.gen_range(0u32..4) {
        0 => AggSpec::Count,
        1 => AggSpec::CountByTemplate,
        2 => AggSpec::Histogram {
            bucket: rng.gen_range(1u64..129),
        },
        _ => {
            let candidates: Vec<(usize, usize)> = first
                .nonempty
                .iter()
                .enumerate()
                .flat_map(|(t, &tid)| {
                    (0..first.parsed.groups[tid].vars.len()).map(move |slot| (t, slot))
                })
                .collect();
            if candidates.is_empty() {
                return AggSpec::Count;
            }
            let (template, slot) = candidates[rng.gen_range(0..candidates.len())];
            AggSpec::TopK {
                k: rng.gen_range(1usize..6),
                template,
                slot,
            }
        }
    }
}

/// Runs one aggregate case: generated blocks, an optional filter, one
/// verb, every engine config at every thread count, against the oracle.
pub fn run_case(seed: u64, case: u64, threads: &[usize]) -> Outcome {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case) ^ 0xa66);
    let blocks = genlog::generate_blocks(&mut rng);
    let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
    let filter_ast = if rng.gen_range(0u32..2) == 0 {
        Some(QueryAst::generate(&mut rng, &lines))
    } else {
        None
    };
    let oracle_blocks: Vec<OracleBlock<'_>> = blocks.iter().map(|b| OracleBlock::new(b)).collect();
    let spec = pick_spec(&mut rng, &oracle_blocks[0]);
    let want = oracle_result(&oracle_blocks, filter_ast.as_ref(), &spec);

    let filter_text = filter_ast.as_ref().map(QueryAst::render);
    let filter = filter_text.as_deref();
    let mut outcome = Outcome {
        disagreement: None,
        verb: verb_name(&spec),
        filtered: filter.is_some(),
        layer: "none",
        decompression_checks: 0,
    };

    'matrix: for (label, base) in engine_matrix() {
        for &t in threads {
            let mut config = base.clone();
            config.threads = t;
            let tag = format!("{label} t={t}");
            let use_cache = config.use_query_cache;
            let engine = LogGrep::new(config);
            let mut merged = AggResult::empty(&spec);
            let mut offset = 0u64;
            let mut worst: Option<loggrep::AggLayer> = None;
            for (bi, block) in blocks.iter().enumerate() {
                let raw = block_bytes(block);
                let archive = match engine
                    .compress(&raw)
                    .map_err(|e| e.to_string())
                    .and_then(|boxed| {
                        loggrep::CapsuleBox::from_bytes(&boxed.to_bytes())
                            .map(|b| engine.open(b))
                            .map_err(|e| e.to_string())
                    }) {
                    Ok(a) => a,
                    Err(e) => {
                        outcome.disagreement = Some(format!("{tag}: block {bi}: {e}"));
                        break 'matrix;
                    }
                };
                let fail = |detail: String| Some(format!("{tag}: block {bi}: {detail}"));
                let predicted = match archive.explain_agg(filter, &spec) {
                    Ok(p) => p,
                    Err(e) => {
                        outcome.disagreement = fail(format!("explain_agg failed: {e}"));
                        break 'matrix;
                    }
                };
                let r = match archive.query_agg_at(filter, &spec, offset) {
                    Ok(r) => r,
                    Err(e) => {
                        outcome.disagreement = fail(format!("query_agg failed: {e}"));
                        break 'matrix;
                    }
                };
                // Pushdown contract: metadata verbs decompress nothing
                // when unfiltered; top-K stays within the predicted
                // layer's bound (checked via the drift report for all).
                if filter.is_none() {
                    outcome.decompression_checks += 1;
                    let bound = match predicted {
                        loggrep::AggLayer::Metadata => Some(0),
                        loggrep::AggLayer::Dictionary => Some(1),
                        _ => None,
                    };
                    if let Some(bound) = bound {
                        if r.stats.capsules_decompressed > bound {
                            outcome.disagreement = fail(format!(
                                "predicted {predicted} but decompressed {} capsule(s)",
                                r.stats.capsules_decompressed
                            ));
                            break 'matrix;
                        }
                    }
                }
                let drift = AggDrift::new(predicted, filter.is_some(), &r.stats);
                if !drift.consistent() {
                    outcome.disagreement = fail(format!("aggregate drift out of bounds: {drift}"));
                    break 'matrix;
                }
                // Cache contract: a repeat is a hit iff the cache is on,
                // and the cached answer is identical either way.
                let repeat = match archive.query_agg_at(filter, &spec, offset) {
                    Ok(r) => r,
                    Err(e) => {
                        outcome.disagreement = fail(format!("repeat failed: {e}"));
                        break 'matrix;
                    }
                };
                if repeat.stats.cache_hit != use_cache {
                    outcome.disagreement = fail(format!(
                        "repeat cache_hit = {} with the cache {}",
                        repeat.stats.cache_hit,
                        if use_cache { "on" } else { "off" }
                    ));
                    break 'matrix;
                }
                if repeat.agg != r.agg {
                    outcome.disagreement =
                        fail("cached aggregate differs from the cold one".to_string());
                    break 'matrix;
                }
                worst = worst.max(r.stats.agg_layer);
                if let Err(e) = merged.merge(&r.agg) {
                    outcome.disagreement = fail(format!("merge failed: {e}"));
                    break 'matrix;
                }
                offset += u64::from(archive.total_lines());
            }
            if outcome.layer == "none" {
                outcome.layer = worst.map_or("metadata", |l| l.name());
            }
            if merged != want {
                outcome.disagreement = Some(format!(
                    "{tag}: `{spec}` filter {filter:?}: engine {merged:?} vs oracle {want:?}"
                ));
                break 'matrix;
            }
        }
    }
    outcome
}

fn verb_name(spec: &AggSpec) -> &'static str {
    match spec {
        AggSpec::Count => "count",
        AggSpec::CountByTemplate => "count-by-template",
        AggSpec::TopK { .. } => "top-k",
        AggSpec::Histogram { .. } => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cases_agree() {
        for case in 0..4 {
            let outcome = run_case(7, case, &[1]);
            assert!(
                outcome.disagreement.is_none(),
                "case {case}: {:?}",
                outcome.disagreement
            );
        }
    }

    #[test]
    fn oracle_tallies_a_tiny_block_by_hand() {
        let lines: Vec<Vec<u8>> = vec![
            b"job alpha ok".to_vec(),
            b"job beta ok".to_vec(),
            b"job alpha ok".to_vec(),
        ];
        let blocks = [OracleBlock::new(&lines)];
        assert_eq!(
            oracle_result(&blocks, None, &AggSpec::Count),
            AggResult::Count(3)
        );
        let AggResult::Histogram { buckets, .. } =
            oracle_result(&blocks, None, &AggSpec::Histogram { bucket: 2 })
        else {
            panic!("wrong kind")
        };
        assert_eq!(buckets, vec![(0, 2), (2, 1)]);
    }
}
