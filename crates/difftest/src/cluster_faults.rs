//! Cluster-under-faults differential mode (`difftest --cluster-faults`).
//!
//! Each case generates an adversarial log and query with [`crate::genlog`]
//! and [`crate::query::QueryAst`], ingests the log into a replicated
//! [`cluster::Cluster`] running over a seeded fault schedule (message
//! drops, slow nodes, runtime crashes and partitions, crash-mid-ingest
//! triggers), queries it, and checks the partial-results contract against
//! the trivially-correct [`crate::oracle`] line scanner:
//!
//! * the returned lines must be **exactly** the oracle's matches over the
//!   blocks of every shard reported `ok` — a shard either answers
//!   correctly or is labeled failed, never silently wrong or truncated;
//! * when the schedule leaves every shard at least one reachable replica
//!   and no message drops, the result must be `complete` and equal the
//!   full oracle;
//! * an ingest that fails under faults must roll back to an empty
//!   cluster — half-ingested state is a disagreement too.
//!
//! Everything derives from `case_seed(seed, case)`, so any disagreement
//! reproduces from its seed pair alone.

use crate::query::QueryAst;
use crate::{case_seed, genlog, oracle};
use cluster::{Cluster, ClusterConfig, FaultPlan};
use loggrep::LogGrepConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one cluster-faults case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Distinct fault knobs active in this case (drops, slow, crashes,
    /// partitions, ingest-crash triggers).
    pub faults_injected: u64,
    /// Replica fallbacks taken across all shards.
    pub fallbacks: u64,
    /// Retry attempts beyond the first, summed over shards.
    pub retries: u64,
    /// Whether the ingest was aborted (and rolled back) by the schedule.
    pub ingest_aborted: bool,
    /// Whether the final query result was complete.
    pub complete: bool,
    /// A broken invariant, if any — `None` is a pass.
    pub disagreement: Option<String>,
}

/// Runs one seeded cluster-faults case.
pub fn run_case(seed: u64, case: u64) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, case));
    let blocks = genlog::generate_blocks(&mut rng);
    let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
    let ast = QueryAst::generate(&mut rng, &lines);
    let mut raw = Vec::new();
    for line in &lines {
        raw.extend_from_slice(line);
        raw.push(b'\n');
    }

    let mut out = CaseOutcome {
        faults_injected: 0,
        fallbacks: 0,
        retries: 0,
        ingest_aborted: false,
        complete: false,
        disagreement: None,
    };

    // Seeded topology and fault schedule.
    let nodes = rng.gen_range(2..5usize);
    let replication = rng.gen_range(1..nodes + 1);
    let shards = nodes * rng.gen_range(2..5usize);
    let block_bytes = rng.gen_range(256..2049usize);
    let drop_rate = *[0.0, 0.0, 0.1, 0.25].get(rng.gen_range(0..4usize)).unwrap();
    let slow_node = rng.gen_bool(0.4).then(|| rng.gen_range(0..nodes));
    let ingest_crash = rng.gen_bool(0.25).then(|| {
        (rng.gen_range(0..nodes), rng.gen_range(2..12u64))
    });
    if drop_rate > 0.0 {
        out.faults_injected += 1;
    }
    if slow_node.is_some() {
        out.faults_injected += 1;
    }
    if ingest_crash.is_some() {
        out.faults_injected += 1;
    }

    let plan = FaultPlan {
        seed: case_seed(seed, case),
        drop_rate,
        slow_nodes: slow_node.into_iter().collect(),
        crash_after_messages: ingest_crash.into_iter().collect(),
        ..FaultPlan::default()
    };
    let config = |faults: FaultPlan| ClusterConfig {
        replication,
        shards,
        queue_capacity: 4096,
        faults,
        ..ClusterConfig::for_nodes(nodes, LogGrepConfig::default())
    };

    let mut c = match Cluster::with_config(config(plan.clone())) {
        Ok(c) => c,
        Err(e) => {
            out.disagreement = Some(format!("valid config rejected: {e}"));
            return out;
        }
    };
    if c.ingest(&raw, block_bytes).is_err() {
        // The schedule broke the ingest; the contract is a total rollback.
        out.ingest_aborted = true;
        if c.block_count() != 0 || c.nodes().iter().any(|n| n.block_count() != 0) {
            out.disagreement = Some(format!(
                "aborted ingest leaked state: {} logical blocks, {:?} replicas",
                c.block_count(),
                c.nodes().iter().map(|n| n.block_count()).collect::<Vec<_>>()
            ));
            return out;
        }
        // Re-run the case on a drop-free, trigger-free network so the
        // read path is still exercised.
        let retry_plan = FaultPlan {
            drop_rate: 0.0,
            crash_after_messages: Vec::new(),
            ..plan
        };
        c = Cluster::with_config(config(retry_plan)).expect("validated above");
        if let Err(e) = c.ingest(&raw, block_bytes) {
            out.disagreement = Some(format!("healthy re-ingest failed: {e}"));
            return out;
        }
    }

    // Runtime faults: crash fewer nodes than the replication factor
    // (recoverable), and sometimes partition one more (possibly not).
    let crashes = rng.gen_range(0..replication);
    for k in 0..crashes {
        c.crash_node((k * 2 + 1) % nodes);
        out.faults_injected += 1;
    }
    if rng.gen_bool(0.3) {
        c.partition_node(rng.gen_range(0..nodes));
        out.faults_injected += 1;
    }

    let result = match c.query(&ast.render()) {
        Ok(r) => r,
        Err(e) => {
            out.disagreement = Some(format!("query `{}` rejected: {e}", ast.render()));
            return out;
        }
    };
    out.complete = result.complete;
    for s in &result.shards {
        out.fallbacks += u64::from(s.fallbacks);
        out.retries += u64::from(s.attempts.saturating_sub(1));
    }

    // Invariant 1: the lines are exactly the oracle's matches over the
    // blocks of the shards reported ok, in block order.
    let cluster_blocks = cluster::split_blocks(&raw, block_bytes);
    let mut ok_blocks: Vec<usize> = result
        .shards
        .iter()
        .filter(|s| s.ok)
        .flat_map(|s| s.blocks.iter().copied())
        .collect();
    ok_blocks.sort_unstable();
    let expected: Vec<Vec<u8>> = ok_blocks
        .iter()
        .flat_map(|&b| {
            loggrep::engine::split_lines(cluster_blocks[b])
                .into_iter()
                .filter(|l| oracle::ast_matches(&ast, l))
                .map(|l| l.to_vec())
        })
        .collect();
    if result.lines != expected {
        out.disagreement = Some(format!(
            "query `{}`: got {} lines, oracle says {} over the ok shards",
            ast.render(),
            result.lines.len(),
            expected.len()
        ));
        return out;
    }

    // Invariant 2: with no drops, a shard with a reachable replica must
    // answer — and if every shard does, the result is complete and equals
    // the full oracle.
    if drop_rate == 0.0 || out.ingest_aborted {
        for s in &result.shards {
            let reachable = s.replicas.iter().any(|&r| c.net().reachable(r));
            if reachable && !s.ok {
                out.disagreement = Some(format!(
                    "shard {} has a reachable replica but failed: {:?}",
                    s.shard, s.error
                ));
                return out;
            }
        }
        let every_shard_covered = result
            .shards
            .iter()
            .all(|s| s.replicas.iter().any(|&r| c.net().reachable(r)));
        if every_shard_covered {
            let full: Vec<Vec<u8>> = lines
                .iter()
                .filter(|l| oracle::ast_matches(&ast, l))
                .cloned()
                .collect();
            if !result.complete || result.lines != full {
                out.disagreement = Some(format!(
                    "covered cluster not exact: complete={} got {} want {}",
                    result.complete,
                    result.lines.len(),
                    full.len()
                ));
                return out;
            }
        }
    }

    out
}

/// Aggregated stats over a cluster-faults run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Cases executed.
    pub cases: u64,
    /// Total fault knobs injected.
    pub faults_injected: u64,
    /// Total replica fallbacks taken.
    pub fallbacks: u64,
    /// Total retry attempts beyond the first.
    pub retries: u64,
    /// Cases whose ingest was aborted (and rolled back) by the schedule.
    pub ingests_aborted: u64,
    /// Cases that returned a partial result.
    pub partials: u64,
    /// Broken invariants: `(case index, description)`.
    pub disagreements: Vec<(u64, String)>,
}

impl Summary {
    /// Folds one case outcome into the totals.
    pub fn absorb(&mut self, case: u64, outcome: &CaseOutcome) {
        self.cases += 1;
        self.faults_injected += outcome.faults_injected;
        self.fallbacks += outcome.fallbacks;
        self.retries += outcome.retries;
        self.ingests_aborted += u64::from(outcome.ingest_aborted);
        self.partials += u64::from(!outcome.complete);
        if let Some(d) = &outcome.disagreement {
            self.disagreements.push((case, d.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let a = run_case(7, 3);
        let b = run_case(7, 3);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.fallbacks, b.fallbacks);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.complete, b.complete);
        assert_eq!(a.disagreement, b.disagreement);
    }

    #[test]
    fn a_seeded_sweep_has_zero_disagreements() {
        let mut summary = Summary::default();
        for case in 0..8 {
            summary.absorb(case, &run_case(11, case));
        }
        assert_eq!(summary.cases, 8);
        assert!(
            summary.disagreements.is_empty(),
            "disagreements: {:?}",
            summary.disagreements
        );
        assert!(summary.faults_injected > 0, "the sweep must inject faults");
    }
}
