//! The differential harness: one case, every engine, every knob.
//!
//! [`Harness::check`] runs a [`Case`] through every engine in
//! [`baselines::LogGrepSystem`] — the full system, LogGrep-SP, and each
//! §6.3 ablation — at every configured thread count, plus the non-LogGrep
//! baselines, and compares every result against the naive [`crate::oracle`].
//! On top of exact line-set equality it asserts cross-cutting invariants:
//!
//! * serialized archives are **byte-identical across thread counts**;
//! * `QueryStats` sanity: `capsules_decompressed ≤ capsules_total`,
//!   ascending line numbers, no cache hit on a cold query;
//! * plan drift stays within [`loggrep::query::explain`]'s lazy-execution
//!   bounds (literal queries only — wildcard plans are vacuously
//!   consistent);
//! * with the cache enabled, a repeated query reports `cache_hit` and
//!   returns byte-identical lines; with it disabled, it never does.

use crate::corpus::Case;
use crate::oracle;
use baselines::{Clp, GzipGrep, LogGrepSystem, LogSystem, MiniEs};
use loggrep::LogGrepConfig;
use std::collections::HashMap;

/// One differential failure: which engine disagreed and how.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Engine label plus thread count, e.g. `LogGrep[w/o fixed] t=4`.
    pub engine: String,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.engine, self.detail)
    }
}

/// The engine matrix and its invariant checks.
pub struct Harness {
    /// Worker-pool sizes each LogGrep config runs at.
    pub threads: Vec<usize>,
    /// Also run the non-LogGrep baselines (gzip+grep, CLP, mini-ES).
    pub with_baselines: bool,
    /// Extra systems to compare (used by the harness self-test to prove an
    /// injected bug is caught).
    pub extra: Vec<Box<dyn LogSystem>>,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            threads: vec![1, 4],
            with_baselines: true,
            extra: Vec::new(),
        }
    }
}

/// Every LogGrep engine configuration of the §6.3 matrix, labeled, plus
/// the codec-selection dimension: the default config exercises the
/// per-capsule cost model (`auto`), and the forced single-codec configs
/// cross-check it — a mixed-codec archive must decode to exactly the same
/// lines as a uniformly compressed one.
pub fn engine_matrix() -> Vec<(&'static str, LogGrepConfig)> {
    let with_codec = |name: &str| LogGrepConfig {
        codec_name: name.to_string(),
        ..LogGrepConfig::default()
    };
    vec![
        ("LogGrep", LogGrepConfig::default()),
        ("LogGrep-SP", LogGrepConfig::sp()),
        ("LogGrep[w/o real]", LogGrepConfig::without_real()),
        ("LogGrep[w/o nomi]", LogGrepConfig::without_nominal()),
        ("LogGrep[w/o stamp]", LogGrepConfig::without_stamps()),
        ("LogGrep[w/o fixed]", LogGrepConfig::without_fixed()),
        ("LogGrep[w/o cache]", LogGrepConfig::without_cache()),
        ("LogGrep[lzma]", with_codec("lzma-lite")),
        ("LogGrep[deflate]", with_codec("deflate")),
    ]
}

/// Renders a block's lines back into raw bytes (one trailing newline per
/// line, the framing [`loggrep::engine::split_lines`] undoes).
pub fn block_bytes(lines: &[Vec<u8>]) -> Vec<u8> {
    let mut raw = Vec::new();
    for line in lines {
        raw.extend_from_slice(line);
        raw.push(b'\n');
    }
    raw
}

impl Harness {
    /// Checks one case across the whole matrix. `Ok(())` means every
    /// engine agreed with the oracle and every invariant held.
    pub fn check(&self, case: &Case) -> Result<(), Failure> {
        self.check_filtered(case, None)
    }

    /// Like [`Self::check`], but when `only` is set, runs just the engine
    /// whose tag equals it — the shrinker re-checks candidates against the
    /// originally failing engine alone, which is ~an order of magnitude
    /// cheaper than the full matrix.
    pub fn check_filtered(&self, case: &Case, only: Option<&str>) -> Result<(), Failure> {
        let ast = case.ast().ok_or_else(|| Failure {
            engine: "parser".into(),
            detail: format!("query {:?} does not parse to a left-deep chain", case.query),
        })?;
        let want = oracle::matching_lines(&case.blocks, &ast);

        // Serialized boxes per (config label, block): must not vary with
        // the thread count.
        let mut reference_bytes: HashMap<(usize, usize), Vec<u8>> = HashMap::new();

        for (ci, (label, base)) in engine_matrix().into_iter().enumerate() {
            for &threads in &self.threads {
                let mut config = base.clone();
                config.threads = threads;
                let tag = format!("{label} t={threads}");
                if only.is_some_and(|o| o != tag) {
                    continue;
                }
                self.check_loggrep(case, &want, &tag, config, ci, &mut reference_bytes)?;
            }
        }

        if self.with_baselines {
            for sys in [
                Box::new(GzipGrep) as Box<dyn LogSystem>,
                Box::new(Clp { segment_lines: 16 }),
                Box::new(MiniEs {
                    flush_docs: 8,
                    merge_factor: 2,
                }),
            ] {
                if only.is_some_and(|o| o != sys.name()) {
                    continue;
                }
                check_system(sys.as_ref(), case, &want)?;
            }
        }
        for sys in &self.extra {
            if only.is_some_and(|o| o != sys.name()) {
                continue;
            }
            check_system(sys.as_ref(), case, &want)?;
        }
        Ok(())
    }

    /// One LogGrep configuration at one thread count, over every block.
    fn check_loggrep(
        &self,
        case: &Case,
        want: &[Vec<u8>],
        tag: &str,
        config: LogGrepConfig,
        config_index: usize,
        reference_bytes: &mut HashMap<(usize, usize), Vec<u8>>,
    ) -> Result<(), Failure> {
        let fail = |detail: String| Failure {
            engine: tag.to_string(),
            detail,
        };
        let sys = LogGrepSystem::with_config(tag, config.clone());
        let engine = sys.engine();
        let mut got: Vec<Vec<u8>> = Vec::new();

        for (bi, block) in case.blocks.iter().enumerate() {
            let raw = block_bytes(block);
            let boxed = engine
                .compress(&raw)
                .map_err(|e| fail(format!("block {bi}: compress failed: {e}")))?;
            let bytes = boxed.to_bytes();

            // Determinism across thread counts: the serialized archive is a
            // pure function of (input, config), never of scheduling.
            match reference_bytes.entry((config_index, bi)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(bytes.clone());
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if o.get() != &bytes {
                        return Err(fail(format!(
                            "block {bi}: serialized archive differs across thread counts"
                        )));
                    }
                }
            }

            // Reopen from bytes so the wire decode path is exercised too.
            let reopened = loggrep::CapsuleBox::from_bytes(&bytes)
                .map_err(|e| fail(format!("block {bi}: reopen failed: {e}")))?;
            let archive = engine.open(reopened);

            let result = archive
                .query(&case.query)
                .map_err(|e| fail(format!("block {bi}: query failed: {e}")))?;
            check_stats(&archive, &result, &case.query)
                .map_err(|detail| fail(format!("block {bi}: {detail}")))?;

            // Cache contract: with the cache on, the repeat is a hit with
            // byte-identical lines; with it off, it never is.
            let repeat = archive
                .query(&case.query)
                .map_err(|e| fail(format!("block {bi}: repeat query failed: {e}")))?;
            if config.use_query_cache && !repeat.stats.cache_hit {
                return Err(fail(format!("block {bi}: repeat query missed the cache")));
            }
            if !config.use_query_cache && repeat.stats.cache_hit {
                return Err(fail(format!(
                    "block {bi}: cache hit with the cache disabled"
                )));
            }
            if repeat.lines != result.lines {
                return Err(fail(format!(
                    "block {bi}: cached result differs from cold result"
                )));
            }

            got.extend(result.lines);
        }

        diff_lines(tag, &got, want)
    }
}

/// Compares one [`LogSystem`] implementation against the oracle verdict
/// (lines only — the trait exposes no statistics).
pub fn check_system(sys: &dyn LogSystem, case: &Case, want: &[Vec<u8>]) -> Result<(), Failure> {
    let name = sys.name();
    let fail = |detail: String| Failure {
        engine: name.clone(),
        detail,
    };
    let mut got: Vec<Vec<u8>> = Vec::new();
    for (bi, block) in case.blocks.iter().enumerate() {
        let raw = block_bytes(block);
        let stored = sys
            .compress(&raw)
            .map_err(|e| fail(format!("block {bi}: compress failed: {e}")))?;
        let archive = sys
            .open(&stored)
            .map_err(|e| fail(format!("block {bi}: open failed: {e}")))?;
        got.extend(
            archive
                .query(&case.query)
                .map_err(|e| fail(format!("block {bi}: query failed: {e}")))?,
        );
    }
    diff_lines(&name, &got, want)
}

/// `QueryStats` invariants on a cold query result.
fn check_stats(
    archive: &loggrep::Archive,
    result: &loggrep::query::exec::QueryResult,
    query: &str,
) -> Result<(), String> {
    let stats = &result.stats;
    let capsules_total = archive.capsule_box().capsules.len();
    if stats.capsules_total as usize != capsules_total {
        return Err(format!(
            "stats.capsules_total = {} but the archive holds {capsules_total}",
            stats.capsules_total
        ));
    }
    if stats.capsules_decompressed > capsules_total {
        return Err(format!(
            "capsules_decompressed {} > capsules_total {capsules_total}",
            stats.capsules_decompressed
        ));
    }
    if stats.cache_hit {
        return Err("cold query reported a cache hit".to_string());
    }
    if result.line_numbers.len() != result.lines.len() {
        return Err(format!(
            "{} line numbers for {} lines",
            result.line_numbers.len(),
            result.lines.len()
        ));
    }
    if !result.line_numbers.windows(2).all(|w| w[0] < w[1]) {
        return Err("line numbers not strictly ascending".to_string());
    }
    // Plan drift: execution must stay within the planner's predictions
    // (lazy-execution bounds; vacuous for wildcard queries).
    let explanation = archive
        .explain(query)
        .map_err(|e| format!("explain failed: {e}"))?;
    let drift = explanation.drift(stats);
    if !drift.consistent() {
        return Err(format!("plan drift out of bounds: {drift}"));
    }
    Ok(())
}

/// Ordered line-set comparison with a first-divergence report.
fn diff_lines(engine: &str, got: &[Vec<u8>], want: &[Vec<u8>]) -> Result<(), Failure> {
    if got == want {
        return Ok(());
    }
    let at = got
        .iter()
        .zip(want.iter())
        .position(|(g, w)| g != w)
        .unwrap_or_else(|| got.len().min(want.len()));
    let show = |side: &[Vec<u8>]| match side.get(at) {
        Some(l) => format!("{:?}", String::from_utf8_lossy(l)),
        None => "<absent>".to_string(),
    };
    Err(Failure {
        engine: engine.to_string(),
        detail: format!(
            "matched {} lines, oracle matched {}; first divergence at match #{at}: engine {} vs oracle {}",
            got.len(),
            want.len(),
            show(got),
            show(want)
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryAst;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_case_passes_whole_matrix() {
        let blocks = vec![vec![
            b"ERROR blk_1A read 17".to_vec(),
            b"INFO blk_2B write 18".to_vec(),
            b"ERROR blk_3C read 19".to_vec(),
        ]];
        let case = Case {
            query: "ERROR and read".into(),
            blocks,
            note: String::new(),
        };
        Harness::default().check(&case).expect("matrix agrees");
    }

    #[test]
    fn generated_cases_pass_smoke() {
        let harness = Harness::default();
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let blocks = crate::genlog::generate_blocks(&mut rng);
            let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
            let ast = QueryAst::generate(&mut rng, &lines);
            let case = Case::new(&ast, blocks);
            if let Err(f) = harness.check(&case) {
                panic!("seed {seed}: {f}\n{}", case.to_text());
            }
        }
    }
}
