//! The committed mixed-codec fixture must actually mix codecs under the
//! auto cost model — otherwise the codec-selection dimension of the
//! engine matrix would be cross-checking archives that all chose the same
//! codec. One test function: the telemetry registry is process-global,
//! and this integration binary owns its process.

use difftest::corpus;
use difftest::harness::block_bytes;

#[test]
fn fixture_compresses_with_multiple_codecs() {
    let dir = corpus::default_dir();
    let text = std::fs::read_to_string(dir.join("fixture-mixed-codec.case"))
        .expect("mixed-codec fixture exists");
    let case = corpus::Case::from_text(&text).expect("fixture parses");

    telemetry::set_enabled(true);
    telemetry::reset();
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig::default());
    for block in &case.blocks {
        let boxed = engine.compress(&block_bytes(block)).unwrap();
        std::hint::black_box(&boxed);
    }
    telemetry::set_enabled(false);

    let snap = telemetry::snapshot();
    let used: Vec<&str> = ["store", "deflate", "lzma-lite", "fastlz"]
        .into_iter()
        .filter(|name| snap.counter(&format!("codec.{name}.compress.bytes_in")) > 0)
        .collect();
    assert!(
        used.len() >= 3,
        "mixed-codec fixture only exercised {used:?}; regenerate it or revisit the cost model"
    );
}
