//! Replays every committed corpus case through the full engine matrix.
//!
//! Corpus files under `crates/difftest/corpus/` are regression fixtures:
//! each was once a shrunk failure (or a migrated proptest regression) and
//! must now pass every engine at every thread count.

use difftest::corpus;
use difftest::harness::Harness;

#[test]
fn committed_corpus_replays_clean() {
    let dir = corpus::default_dir();
    let cases = corpus::load_dir(&dir).expect("corpus directory loads");
    assert!(
        !cases.is_empty(),
        "no committed corpus cases under {}",
        dir.display()
    );
    let harness = Harness::default();
    for (name, case) in &cases {
        if let Err(f) = harness.check(case) {
            panic!("corpus case {name}: {f}\n{}", case.to_text());
        }
    }
}
