//! Harness self-test: an intentionally buggy engine must be caught,
//! shrunk to a minimal case, and that case must round-trip through the
//! corpus format — the acceptance criterion for the whole harness.

use baselines::{LogArchive, LogSystem};
use difftest::corpus::Case;
use difftest::harness::Harness;
use difftest::oracle;
use difftest::query::QueryAst;
use difftest::shrink;

/// The injected matcher bug: evaluates queries correctly but drops the
/// last matching line of every block (a classic off-by-one).
struct DropLastMatch;

struct DropLastArchive {
    lines: Vec<Vec<u8>>,
}

impl LogSystem for DropLastMatch {
    fn name(&self) -> String {
        "buggy[drop-last]".into()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        Ok(raw.to_vec())
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        let mut lines: Vec<Vec<u8>> = bytes.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
        // The harness frames blocks with one trailing newline per line,
        // so the final split segment is an artifact, not a log line.
        if lines.last().is_some_and(Vec::is_empty) {
            lines.pop();
        }
        Ok(Box::new(DropLastArchive { lines }))
    }
}

impl LogArchive for DropLastArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        let ast = QueryAst::parse(command).ok_or("unparseable query")?;
        let mut out: Vec<Vec<u8>> = self
            .lines
            .iter()
            .filter(|l| oracle::ast_matches(&ast, l))
            .cloned()
            .collect();
        out.pop(); // The bug.
        Ok(out)
    }
}

#[test]
fn injected_bug_is_caught_shrunk_and_serialized() {
    let case = Case {
        query: "ERROR and read".into(),
        blocks: vec![
            vec![
                b"INFO blk_11 write ok".to_vec(),
                b"ERROR blk_12 read timeout".to_vec(),
                b"WARN retry scheduled".to_vec(),
                b"ERROR blk_13 read timeout".to_vec(),
            ],
            vec![
                b"INFO heartbeat".to_vec(),
                b"ERROR blk_21 read refused".to_vec(),
            ],
        ],
        note: String::new(),
    };

    let harness = Harness {
        threads: vec![1],
        with_baselines: false,
        extra: vec![Box::new(DropLastMatch)],
    };

    let failure = harness.check(&case).expect_err("the bug must be caught");
    assert_eq!(failure.engine, "buggy[drop-last]", "{failure}");

    let engine = failure.engine.clone();
    let still_fails = |c: &Case| {
        matches!(
            harness.check_filtered(c, Some(&engine)),
            Err(f) if f.engine == engine
        )
    };
    let minimized = shrink::minimize(&case, still_fails, shrink::DEFAULT_BUDGET);

    // One matching line is the minimal trigger for drop-last.
    assert_eq!(minimized.total_lines(), 1, "\n{}", minimized.to_text());
    assert!(minimized.query.len() <= case.query.len());
    assert!(
        harness.check_filtered(&minimized, Some(&engine)).is_err(),
        "minimized case no longer fails"
    );

    // And the shrunk case survives the corpus round-trip, so committing
    // it as a fixture reproduces the failure exactly.
    let back = Case::from_text(&minimized.to_text()).expect("corpus text parses");
    assert_eq!(back.query, minimized.query);
    assert_eq!(back.blocks, minimized.blocks);
    assert!(
        harness.check_filtered(&back, Some(&engine)).is_err(),
        "round-tripped case no longer fails"
    );
}

/// A second injected bug in a different direction: an engine that returns
/// a corrupted (truncated) line. The harness must attribute the failure to
/// that engine, not the oracle.
struct TruncateBytes;

struct TruncateArchive {
    lines: Vec<Vec<u8>>,
}

impl LogSystem for TruncateBytes {
    fn name(&self) -> String {
        "buggy[truncate]".into()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        Ok(raw.to_vec())
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        let mut lines: Vec<Vec<u8>> = bytes.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
        if lines.last().is_some_and(Vec::is_empty) {
            lines.pop();
        }
        Ok(Box::new(TruncateArchive { lines }))
    }
}

impl LogArchive for TruncateArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        let ast = QueryAst::parse(command).ok_or("unparseable query")?;
        Ok(self
            .lines
            .iter()
            .filter(|l| oracle::ast_matches(&ast, l))
            .map(|l| l[..l.len().saturating_sub(1)].to_vec()) // The bug.
            .collect())
    }
}

#[test]
fn corrupted_bytes_are_caught() {
    let case = Case {
        query: "timeout".into(),
        blocks: vec![vec![
            b"ERROR blk_9 read timeout".to_vec(),
            b"INFO ok".to_vec(),
        ]],
        note: String::new(),
    };
    let harness = Harness {
        threads: vec![1],
        with_baselines: false,
        extra: vec![Box::new(TruncateBytes)],
    };
    let failure = harness.check(&case).expect_err("corruption must be caught");
    assert_eq!(failure.engine, "buggy[truncate]");
    assert!(
        failure.detail.contains("divergence"),
        "unexpected detail: {}",
        failure.detail
    );
}
