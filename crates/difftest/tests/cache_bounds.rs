//! Satellite: `QueryCache` LRU bounds under the harness.
//!
//! Repeated randomized queries against one archive must never grow the
//! cache past `query_cache_entries`, and a cache-hit result must be
//! byte-identical to the cold result of the same query.

use difftest::genlog;
use difftest::harness::block_bytes;
use difftest::query::QueryAst;
use loggrep::{LogGrep, LogGrepConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lru_bound_holds_under_randomized_queries() {
    const CAP: usize = 5;
    let mut rng = StdRng::seed_from_u64(0xcac4e);
    let blocks = genlog::generate_blocks(&mut rng);
    let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
    let raw = block_bytes(&lines);

    let config = LogGrepConfig {
        query_cache_entries: CAP,
        ..LogGrepConfig::default()
    };
    let engine = LogGrep::new(config);
    let archive = engine.compress_to_archive(&raw).expect("clean input");

    // A disabled-cache twin provides the always-cold reference.
    let cold_config = LogGrepConfig {
        query_cache_entries: CAP,
        ..LogGrepConfig::without_cache()
    };
    let cold_engine = LogGrep::new(cold_config);
    let cold_archive = cold_engine.compress_to_archive(&raw).expect("clean input");

    let mut distinct = std::collections::HashSet::new();
    for i in 0..60u64 {
        let mut qrng = StdRng::seed_from_u64(0xbeef ^ i);
        let ast = QueryAst::generate(&mut qrng, &lines);
        let text = ast.render();
        distinct.insert(text.clone());

        let first = archive.query(&text).expect("query");
        let repeat = archive.query(&text).expect("repeat");
        assert!(repeat.stats.cache_hit, "query {i} repeat missed the cache");
        assert_eq!(first.lines, repeat.lines, "query {i}: hit differs from cold");
        assert_eq!(
            first.line_numbers, repeat.line_numbers,
            "query {i}: hit line numbers differ"
        );

        let reference = cold_archive.query(&text).expect("cold query");
        assert!(!reference.stats.cache_hit, "cache-off archive reported a hit");
        assert_eq!(
            first.lines, reference.lines,
            "query {i}: cached archive differs from cache-off archive"
        );

        assert!(
            archive.query_cache_len() <= CAP,
            "after query {i}: cache holds {} entries (cap {CAP})",
            archive.query_cache_len()
        );
        assert!(
            cold_archive.query_cache_len() == 0,
            "cache-off archive stored an entry"
        );
    }
    assert!(distinct.len() > CAP, "workload never exceeded the cap");
    assert!(
        archive.query_cache_evictions() >= (distinct.len() - CAP) as u64,
        "evictions {} below expectation",
        archive.query_cache_evictions()
    );
}

#[test]
fn unbounded_cache_still_replays_identically() {
    let mut rng = StdRng::seed_from_u64(7);
    let blocks = genlog::generate_blocks(&mut rng);
    let lines: Vec<Vec<u8>> = blocks.iter().flatten().cloned().collect();
    let raw = block_bytes(&lines);
    let config = LogGrepConfig {
        query_cache_entries: 0, // Unbounded.
        ..LogGrepConfig::default()
    };
    let engine = LogGrep::new(config);
    let archive = engine.compress_to_archive(&raw).expect("clean input");
    for i in 0..10u64 {
        let mut qrng = StdRng::seed_from_u64(i);
        let text = QueryAst::generate(&mut qrng, &lines).render();
        let a = archive.query(&text).expect("query");
        let b = archive.query(&text).expect("repeat");
        assert!(b.stats.cache_hit);
        assert_eq!(a.lines, b.lines);
    }
    assert_eq!(archive.query_cache_evictions(), 0);
}
