//! Satellite: query-language round-trip. Every generated query AST
//! pretty-prints to text that re-parses to an *equal* expression tree,
//! including wildcard edge cases (leading/trailing/consecutive stars).

use difftest::query::{Op, QueryAst};
use loggrep::query::lang::{Element, Query, SearchString};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn generated_asts_roundtrip_through_the_parser() {
    let lines: Vec<Vec<u8>> = vec![
        b"ERROR blk_1FF8A3 read dst:11.8.42 state: SUC#1604".to_vec(),
        b"INFO /tmp/x.dat len= 17 t9".to_vec(),
        b"key=  v3 = zz99".to_vec(),
        b"".to_vec(),
    ];
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    for i in 0..2000 {
        let ast = QueryAst::generate(&mut rng, &lines);
        let text = ast.render();
        let parsed = Query::parse(&text)
            .unwrap_or_else(|e| panic!("case {i}: `{text}` failed to parse: {e}"));
        assert_eq!(
            parsed.expr,
            ast.expr(),
            "case {i}: `{text}` re-parsed to a different tree"
        );
        // And the flattening inverse agrees too.
        assert_eq!(
            QueryAst::parse(&text).as_ref(),
            Some(&ast),
            "case {i}: `{text}` did not flatten back"
        );
    }
}

#[test]
fn wildcard_edge_cases_roundtrip() {
    // Stars at the edges, consecutive stars (the compiler collapses them
    // in `elements` but preserves `raw`), stars between every byte.
    for term in ["*a", "a*", "a**b", "*a*b*", "x*y*z", "a* b*c", "* a"] {
        let ast = QueryAst {
            first: term.to_string(),
            rest: vec![(Op::And, "k*".to_string()), (Op::Not, "*v".to_string())],
        };
        let text = ast.render();
        let parsed = Query::parse(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        assert_eq!(parsed.expr, ast.expr(), "`{text}`");
        // The compiler collapses star runs in `elements` yet keeps `raw`
        // verbatim, so raw-text round-trips stay exact.
        let compiled = SearchString::compile(term).unwrap();
        assert_eq!(compiled.raw, term, "`{term}`");
        let stars = compiled
            .elements
            .iter()
            .filter(|e| matches!(e, Element::Star))
            .count();
        assert!(stars <= term.matches('*').count(), "`{term}`");
    }
    // All-star terms have no literal content and must be rejected — the
    // generator never emits them.
    assert!(!difftest::query::valid_term("*"));
    assert!(!difftest::query::valid_term("**"));
    assert!(!difftest::query::valid_term("* *"));
    // Operator words are data only inside larger words.
    assert!(Query::parse("android or nott").is_ok());
    assert!(Query::parse("a and and b").is_err());
}
