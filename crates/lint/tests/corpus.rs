//! Fixture-corpus tests for the analyzer's rule packs.
//!
//! Each fixture under `tests/fixtures/` is a self-describing Rust
//! source: lines that must produce a diagnostic carry a trailing
//! `// expect: <rule>` marker, and the driver asserts the analyzer
//! reports *exactly* the marked set — so a fixture simultaneously pins
//! positives (marked lines fire) and negatives (unmarked lines stay
//! silent). Fixtures live outside `src/`, so the in-tree gate never
//! sees them.

use lint::cache::fnv1a_hex;
use lint::rules::RULE_LOCK_CYCLE;
use lint::{analyze_file, finalize, FileAnalysis};
use std::fs;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// `(line, rule)` pairs declared by `// expect:` markers in `src`.
fn expected(src: &str) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = src
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("// expect: ")
                .nth(1)
                .map(|r| (i as u32 + 1, r.trim().to_string()))
        })
        .collect();
    out.sort();
    out
}

fn analyze(name: &str, rel: &str) -> (String, FileAnalysis) {
    let src = fixture(name);
    let a = analyze_file(rel, &src, fnv1a_hex(&src));
    (src, a)
}

/// Runs one fixture through the full per-file + global pipeline and
/// compares the diagnostic set against the fixture's own markers.
fn check(name: &str, rel: &str) {
    let (src, a) = analyze(name, rel);
    let mut got: Vec<(u32, String)> = finalize(&[a])
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    got.sort();
    assert_eq!(got, expected(&src), "fixture {name}");
}

// Taint fixtures run under a designated decode-path scope (the rel path
// suffix-matches the wire reader's designation).

#[test]
fn taint_positive() {
    check("taint_positive.rs", "crates/loggrep/src/wire.rs");
}

#[test]
fn taint_negative() {
    check("taint_negative.rs", "crates/loggrep/src/wire.rs");
}

#[test]
fn taint_allow_hatch() {
    check("taint_allow.rs", "crates/loggrep/src/wire.rs");
}

#[test]
fn lock_across_blocking() {
    check("lock_blocking.rs", "crates/cluster/src/node.rs");
}

#[test]
fn pool_worker_blocking() {
    check("pool_worker.rs", "crates/pool/src/worker.rs");
}

#[test]
fn swallowed_result() {
    check("swallowed.rs", "crates/cluster/src/net.rs");
}

#[test]
fn span_balance() {
    check("span_balance.rs", "crates/telemetry/src/user.rs");
}

#[test]
fn stale_allow() {
    check("stale_allow.rs", "crates/loggrep/src/wire.rs");
}

/// Positive: the two lock-cycle fixtures together close a cross-file
/// cycle (A: items→stats, B: stats→items).
#[test]
fn lock_cycle_pair_is_reported() {
    let (_, a) = analyze("lock_cycle_a.rs", "crates/pool/src/lock_cycle_a.rs");
    let (_, b) = analyze("lock_cycle_b.rs", "crates/pool/src/lock_cycle_b.rs");
    let d = finalize(&[a, b]);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, RULE_LOCK_CYCLE);
    assert!(d[0].message.contains("Queue.items"), "{}", d[0].message);
    assert!(d[0].message.contains("Queue.stats"), "{}", d[0].message);
}

/// Negative: either file alone only contributes edges — no cycle.
#[test]
fn lock_cycle_single_file_is_clean() {
    let (_, a) = analyze("lock_cycle_a.rs", "crates/pool/src/lock_cycle_a.rs");
    assert!(finalize(&[a]).is_empty());
    let (_, b) = analyze("lock_cycle_b.rs", "crates/pool/src/lock_cycle_b.rs");
    assert!(finalize(&[b]).is_empty());
}

/// Allow-hatch: a reasoned `lint:allow(lock-order-cycle)` on the edge
/// the diagnostic anchors to suppresses it and counts as live.
#[test]
fn lock_cycle_allow_hatch() {
    let (_, a) = analyze("lock_cycle_allow_a.rs", "crates/pool/src/lock_cycle_a.rs");
    let (_, b) = analyze("lock_cycle_b.rs", "crates/pool/src/lock_cycle_b.rs");
    let d = finalize(&[a, b]);
    assert!(d.is_empty(), "{d:?}");
}
