// Fixture: taint rules, positive cases. Analyzed as a designated
// decode-path file; every marked line must produce exactly that rule.

fn read_vec(r: &mut Reader) -> Result<Vec<u8>> {
    let n = r.get_usize()?;
    let hop = n;
    let out = Vec::with_capacity(hop); // expect: no-untrusted-prealloc
    Ok(out)
}

fn read_count(r: &mut Reader) -> Result<usize> {
    let n = r.get_u64()?;
    Ok(n as usize) // expect: no-as-truncation
}

fn extent(meta: &Meta) -> u64 {
    meta.raw_size + HEADER_BYTES // expect: checked-length-arithmetic
}

fn first(v: &[u8]) -> u8 {
    v[0] // expect: no-panic-in-decode
}
