// Fixture: no-lock-across-blocking — positive, negative, and allow.

impl Node {
    fn holds_lock_across_send(&self) {
        let g = self.state.lock();
        self.tx.send(1); // expect: no-lock-across-blocking
        drop(g);
    }

    fn drops_before_send(&self) {
        let g = self.state.lock();
        touch(&g);
        drop(g);
        self.tx.send(1);
    }

    fn scoped_before_send(&self) {
        {
            let g = self.state.lock();
            touch(&g);
        }
        self.tx.send(1);
    }

    fn hatched(&self) {
        let g = self.state.lock();
        // lint:allow(no-lock-across-blocking) — fixture: bounded channel drained by a dedicated thread
        self.tx.send(1);
        drop(g);
    }
}
