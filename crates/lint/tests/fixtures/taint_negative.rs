// Fixture: taint rules, negative cases. Same designated scope as the
// positive fixture; none of these may produce a diagnostic.

fn read_vec_clamped(r: &mut Reader) -> Result<Vec<u8>> {
    let n = r.get_len(MAX_VEC)?;
    let out = Vec::with_capacity(n);
    Ok(out)
}

fn read_count_checked(r: &mut Reader) -> Result<usize> {
    let n = usize::try_from(r.get_u64()?).map_err(|_| corrupt())?;
    Ok(n)
}

fn widened_extent(meta: &Meta) -> u64 {
    u64::from(meta.rows) * u64::from(meta.width)
}

fn bounded_prealloc(r: &mut Reader) -> Result<Vec<u8>> {
    let n = r.get_usize()?;
    let out = Vec::with_capacity(n.min(MAX_VEC));
    Ok(out)
}

fn first(v: &[u8]) -> Option<u8> {
    v.first().copied()
}
