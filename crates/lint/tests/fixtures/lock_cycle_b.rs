// Fixture: lock-order-cycle, file B — acquires stats before items,
// closing the cycle against file A.

impl Queue {
    fn report(&self) -> Report {
        let h = self.stats.lock();
        let g = self.items.lock();
        Report::new(h.pushed, g.len())
    }
}
