// Fixture: lock-order-cycle, file A — acquires items before stats.

impl Queue {
    fn push(&self, v: u64) {
        let g = self.items.lock();
        let h = self.stats.lock();
        g.push(v);
        h.pushed += 1;
    }
}
