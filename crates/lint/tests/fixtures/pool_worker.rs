// Fixture: no-blocking-in-pool-worker — positive, negative, and allow.

fn blocking_worker(pool: &Pool, items: &[u64]) -> Vec<u64> {
    pool.map(items, |_, x| { sleep(tick()); x + 1 }) // expect: no-blocking-in-pool-worker
}

fn iterator_map_is_fine(items: &[u64]) -> Vec<u64> {
    items.iter().map(|x| { sleep(tick()); x + 1 }).collect()
}

fn pure_worker(pool: &Pool, items: &[u64]) -> Vec<u64> {
    pool.map(items, |_, x| x + 1)
}

fn hatched(pool: &Pool, items: &[u64]) -> Vec<u64> {
    // lint:allow(no-blocking-in-pool-worker) — fixture: simulated latency in a load generator
    pool.map(items, |_, x| { sleep(tick()); x })
}
