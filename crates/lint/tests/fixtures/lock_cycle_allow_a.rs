// Fixture: lock-order-cycle, allow-hatch variant of file A. The hatch
// sits on the acquisition edge the cycle diagnostic anchors to.

impl Queue {
    fn push(&self, v: u64) {
        let g = self.items.lock();
        // lint:allow(lock-order-cycle) — fixture: report() only runs at shutdown, after workers quiesce
        let h = self.stats.lock();
        g.push(v);
        h.pushed += 1;
    }
}
