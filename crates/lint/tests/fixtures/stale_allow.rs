// Fixture: stale-allow — a hatch whose violation was fixed must be
// reported; a hatch still covering a live violation must not.

fn fixed_long_ago(x: Option<u8>) -> u8 {
    // lint:allow(no-panic-in-decode) — the unwrap this covered was removed // expect: stale-allow
    x.unwrap_or(0)
}

fn still_live(x: Option<u8>) -> u8 {
    // lint:allow(no-panic-in-decode) — fixture: caller checked is_some
    x.unwrap()
}
