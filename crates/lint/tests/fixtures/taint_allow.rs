// Fixture: taint rules, reasoned allow hatch. The hatch must suppress
// the violation on the next line and must itself count as live.

fn read_vec(r: &mut Reader) -> Result<Vec<u8>> {
    let n = r.get_usize()?;
    // lint:allow(no-untrusted-prealloc) — fixture: n is bounded by the framing layer above
    let out = Vec::with_capacity(n);
    Ok(out)
}
