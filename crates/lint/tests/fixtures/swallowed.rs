// Fixture: swallowed-result — positive, negative, and allow.

impl Net {
    fn fire_and_forget(&self) {
        let _ = self.rpc(self.peer, msg()); // expect: swallowed-result
    }

    fn handled(&self) {
        if let Err(e) = self.rpc(self.peer, msg()) {
            self.log(e);
        }
        let _ack = self.rpc(self.peer, msg());
    }

    fn infallible_discard(&self, v: &Vec<u8>) {
        let _ = v.len();
    }

    fn hatched(&self) {
        // lint:allow(swallowed-result) — fixture: best-effort notification, peer death handled elsewhere
        let _ = self.rpc(self.peer, msg());
    }
}
