// Fixture: span-balance — positive, negative, and the RAII exemption.

fn leaky(j: &Journal) { // expect: span-balance
    j.record_span_begin(1, t0());
    j.record_span_begin(2, t0());
    work();
    j.record_span_end(1, t1());
}

fn discarded_guard(ctx: &Ctx) {
    let _ = ctx.span("query"); // expect: span-balance
    work();
}

fn balanced(j: &Journal) {
    j.record_span_begin(1, t0());
    work();
    j.record_span_end(1, t1());
}

fn bound_guard(ctx: &Ctx) {
    let _span = ctx.span("query");
    work();
}

fn raii_begin_half(&self, id: u64) {
    self.j.record_span_begin(id, now());
}
