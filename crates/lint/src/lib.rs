//! Project-specific static analysis for untrusted decode paths.
//!
//! LogGrep queries archives without fully decompressing them, so the
//! CapsuleBox parser, wire reader, and codec decompressors routinely
//! consume bytes this process did not produce. This crate walks the
//! workspace with a hand-rolled Rust lexer and enforces the rules
//! documented in DESIGN.md ("Static analysis & untrusted-input
//! hardening"): no panics in decode paths, no unbounded wire-sized
//! pre-allocation, checked length arithmetic, no truncating casts of
//! wire integers, and crate-root hygiene.
//!
//! Run it as `cargo run -p lint` (add `--json` for machine-readable
//! output); `scripts/ci.sh` enforces it before tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use rules::Diagnostic;

/// Lints every workspace source file under `root` and returns the
/// diagnostics sorted by file and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut diags = Vec::new();
    for file in files {
        let Ok(src) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = relative(root, &file);
        if let Some(scope) = config::scope_for(&rel) {
            diags.extend(rules::check_source(&rel, &src, scope));
        }
        if let Some(is_lib) = crate_root_kind(&rel) {
            diags.extend(rules::check_crate_root(&rel, &src, is_lib));
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// Renders diagnostics as a JSON array (no external deps, so by hand).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            escape(d.rule),
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir` (sorted by the caller).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// If `rel` is a crate root, returns `Some(is_lib)`.
fn crate_root_kind(rel: &str) -> Option<bool> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] | ["crates", _, "src", "lib.rs"] => Some(true),
        ["src", "main.rs"] | ["crates", _, "src", "main.rs"] => Some(false),
        ["crates", _, "src", "bin", f] if f.ends_with(".rs") => Some(false),
        _ => None,
    }
}
