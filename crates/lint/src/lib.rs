//! Project-specific static analysis for untrusted decode paths and
//! concurrency discipline.
//!
//! LogGrep queries archives without fully decompressing them, so the
//! CapsuleBox parser, wire reader, and codec decompressors routinely
//! consume bytes this process did not produce; the worker pool and the
//! replicated cluster add lock ordering and blocking-call discipline on
//! top. This crate walks the workspace with a hand-rolled Rust lexer, a
//! lightweight item parser ([`parser`]), and four rule passes:
//!
//! * [`rules`] — token-window rules: panics in decode paths, crate-root
//!   hygiene;
//! * [`dataflow`] — flow-sensitive taint tracking from wire sources to
//!   allocation/arithmetic/cast sinks;
//! * [`lockorder`] — a global lock-order graph (cycle ⇒ potential
//!   deadlock), blocking calls under locks, blocking calls in pool
//!   workers;
//! * [`hygiene`] — swallowed `Result`s, telemetry span balance, stale
//!   `lint:allow` hatches.
//!
//! Per-file results are cached by content hash ([`cache`]) so warm runs
//! re-analyze only changed files; the global passes (cycle detection,
//! suppression, stale-allow) are recomputed every run from cached data.
//! Output formats: human text, `--json`, and SARIF 2.1.0 ([`sarif`]).
//!
//! Run it as `cargo run -p lint` (see `--help` for flags);
//! `scripts/ci.sh` enforces a zero-diagnostics gate before tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod config;
pub mod dataflow;
pub mod hygiene;
pub mod lexer;
pub mod lockorder;
pub mod parser;
pub mod rules;
pub mod sarif;

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use lexer::Allow;
use lockorder::{FileLockInfo, FnLockSummary};
use rules::Diagnostic;

/// Everything the analyzer learned about one file. `raw` is
/// *pre-suppression*: the stale-allow pass needs to know what an allow
/// would have suppressed, so suppression is applied later, centrally,
/// in [`finalize`].
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// FNV-1a content hash (hex) keying the incremental cache.
    pub hash: String,
    /// Raw per-file diagnostics, before suppression.
    pub raw: Vec<Diagnostic>,
    /// `lint:allow` comments found in the file.
    pub allows: Vec<Allow>,
    /// Per-function lock summaries for the global lock-order pass.
    pub locks: Vec<FnLockSummary>,
    /// Whether this analysis was served from the cache.
    pub from_cache: bool,
}

/// Counters for one analyzer run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total `.rs` files considered.
    pub files: usize,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Wall time of the run in milliseconds.
    pub wall_ms: u64,
}

impl RunStats {
    /// Cache hits as a fraction of files (0.0 on an empty workspace).
    pub fn hit_rate(&self) -> f64 {
        if self.files == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.files as f64
        }
    }
}

/// Analyzer options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (must contain `Cargo.toml`).
    pub root: PathBuf,
    /// Read/write `target/lint-cache.json` for incremental runs.
    pub use_cache: bool,
}

/// Runs the full analyzer: walk, per-file passes (cached), global
/// passes, suppression. Diagnostics come back sorted by file and line.
pub fn run(opts: &Options) -> std::io::Result<(Vec<Diagnostic>, RunStats)> {
    let started = Instant::now();
    let files = workspace_files(&opts.root)?;
    let cached = if opts.use_cache {
        cache::load(&opts.root)
    } else {
        HashMap::new()
    };

    let mut analyses = Vec::with_capacity(files.len());
    let mut stats = RunStats::default();
    for file in files {
        let Ok(src) = fs::read_to_string(&file) else {
            continue;
        };
        stats.files += 1;
        let rel = relative(&opts.root, &file);
        let hash = cache::fnv1a_hex(&src);
        if let Some(hit) = cached.get(&rel).filter(|c| c.hash == hash) {
            stats.cache_hits += 1;
            analyses.push(hit.clone());
        } else {
            analyses.push(analyze_file(&rel, &src, hash));
        }
    }
    if opts.use_cache {
        cache::store(&opts.root, &analyses).ok(); // a lost cache only costs a cold run
    }
    let diags = finalize(&analyses);
    stats.wall_ms = started.elapsed().as_millis() as u64;
    Ok((diags, stats))
}

/// Compatibility entry point: a cold, cache-less run.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    run(&Options {
        root: root.to_path_buf(),
        use_cache: false,
    })
    .map(|(diags, _)| diags)
}

/// Runs every per-file pass over one source file.
pub fn analyze_file(rel: &str, src: &str, hash: String) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let toks = &lexed.tokens;
    let mut raw = Vec::new();
    if let Some(scope) = config::scope_for(rel) {
        raw.extend(rules::check_panic(rel, toks, scope));
        raw.extend(dataflow::check(rel, toks, scope));
    }
    let lockinfo = lockorder::analyze(rel, toks);
    raw.extend(lockinfo.diags);
    raw.extend(hygiene::check(rel, toks));
    if let Some(is_lib) = crate_root_kind(rel) {
        raw.extend(rules::check_crate_root(rel, src, is_lib));
    }
    FileAnalysis {
        file: rel.to_string(),
        hash,
        raw,
        allows: lexed.allows,
        locks: lockinfo.fns,
        from_cache: false,
    }
}

/// The global phase: lock-order cycles across files, then suppression,
/// allow-reason, and stale-allow bookkeeping.
pub fn finalize(analyses: &[FileAnalysis]) -> Vec<Diagnostic> {
    let infos: Vec<FileLockInfo> = analyses
        .iter()
        .map(|a| FileLockInfo {
            file: a.file.clone(),
            fns: a.locks.clone(),
            diags: Vec::new(),
        })
        .collect();
    let info_refs: Vec<&FileLockInfo> = infos.iter().collect();
    let mut global_by_file: HashMap<String, Vec<Diagnostic>> = HashMap::new();
    for d in lockorder::global(&info_refs) {
        global_by_file.entry(d.file.clone()).or_default().push(d);
    }

    let mut out = Vec::new();
    for a in analyses {
        let mut file_raw = a.raw.clone();
        if let Some(globals) = global_by_file.remove(&a.file) {
            file_raw.extend(globals);
        }
        let mut allowed: HashSet<(u32, &str)> = HashSet::new();
        for allow in &a.allows {
            if !allow.has_reason {
                out.push(Diagnostic {
                    file: a.file.clone(),
                    line: allow.line,
                    rule: rules::RULE_ALLOW_REASON,
                    message: "lint:allow must state a reason after the rule list".to_string(),
                });
            }
            for r in &allow.rules {
                allowed.insert((allow.line, r.as_str()));
                allowed.insert((allow.line + 1, r.as_str()));
            }
        }
        for d in &file_raw {
            if !allowed.contains(&(d.line, d.rule)) {
                out.push(d.clone());
            }
        }
        out.extend(hygiene::stale_allows(&a.file, &a.allows, &file_raw));
    }
    // Cycle diagnostics pointing at files outside the walk (shouldn't
    // happen, but never drop a deadlock report silently).
    for (_, globals) in global_by_file {
        out.extend(globals);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Renders diagnostics as a JSON array (no external deps, so by hand).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            escape(d.rule),
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every workspace `.rs` file under `root`, sorted.
fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (sorted by the caller).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// If `rel` is a crate root, returns `Some(is_lib)`.
fn crate_root_kind(rel: &str) -> Option<bool> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] | ["crates", _, "src", "lib.rs"] => Some(true),
        ["src", "main.rs"] | ["crates", _, "src", "main.rs"] => Some(false),
        ["crates", _, "src", "bin", f] if f.ends_with(".rs") => Some(false),
        _ => None,
    }
}

/// Unique per-test scratch directory (tests clean up after themselves).
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lint-test-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::{
        RULE_ALLOW_REASON, RULE_LOCK_CYCLE, RULE_PANIC, RULE_PREALLOC, RULE_STALE_ALLOW,
        RULE_SWALLOWED,
    };

    fn one_file(src: &str) -> Vec<Diagnostic> {
        let a = analyze_file("crates/loggrep/src/wire.rs", src, cache::fnv1a_hex(src));
        finalize(&[a])
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic-in-decode) — caller guarantees Some\n    x.unwrap()\n}";
        assert!(one_file(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "fn f(x: Option<u8>) {\n    // lint:allow(no-panic-in-decode)\n    x.unwrap();\n}";
        let d = one_file(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_ALLOW_REASON);
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f(x: Option<u8>) {\n    // lint:allow(no-as-truncation) — wrong rule\n    x.unwrap();\n}";
        let d = one_file(src);
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_PANIC), "{d:?}");
        assert!(rules.contains(&RULE_STALE_ALLOW), "{d:?}");
    }

    #[test]
    fn stale_allow_fires_after_fix() {
        // The unwrap was fixed but the hatch stayed behind.
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic-in-decode) — caller guarantees Some\n    x.unwrap_or(0)\n}";
        let d = one_file(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_STALE_ALLOW);
    }

    /// Self-test: seed a taint-laundering bug (wire length laundered
    /// through two locals into an allocation) and prove the dataflow
    /// pass catches it end to end through the public entry point.
    #[test]
    fn seeded_taint_laundering_is_caught() {
        let src = "fn decode(r: &mut Reader) -> Result<Vec<u8>> {\n\
                   \x20   let n = r.get_usize()?;\n\
                   \x20   let hops = n;\n\
                   \x20   let total = hops;\n\
                   \x20   let out = Vec::with_capacity(total);\n\
                   \x20   Ok(out)\n}";
        let d = one_file(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_PREALLOC);
        assert_eq!(d[0].line, 5);
    }

    /// Self-test: seed a cross-file lock-order cycle and prove the
    /// global pass reports the deadlock.
    #[test]
    fn seeded_lock_order_cycle_is_caught() {
        let a = analyze_file(
            "crates/pool/src/a.rs",
            "impl Queue { fn push(&self) { let g = self.items.lock(); let h = self.stats.lock(); } }",
            "h1".to_string(),
        );
        let b = analyze_file(
            "crates/pool/src/b.rs",
            "impl Queue { fn report(&self) { let h = self.stats.lock(); let g = self.items.lock(); } }",
            "h2".to_string(),
        );
        let d = finalize(&[a, b]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_LOCK_CYCLE);
        assert!(d[0].message.contains("Queue.items"), "{}", d[0].message);
        assert!(d[0].message.contains("Queue.stats"), "{}", d[0].message);
    }

    #[test]
    fn warm_run_reanalyzes_only_changed_files() {
        let root = test_dir("warm_run");
        let src_dir = root.join("crates/one/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src_dir.join("lib.rs"),
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! One.\npub fn one() {}\n",
        )
        .unwrap();
        fs::write(src_dir.join("other.rs"), "pub fn two() {}\n").unwrap();

        let opts = Options {
            root: root.clone(),
            use_cache: true,
        };
        let (d1, s1) = run(&opts).unwrap();
        assert!(d1.is_empty(), "{d1:?}");
        assert_eq!(s1.files, 2);
        assert_eq!(s1.cache_hits, 0);

        // Untouched workspace: everything served from cache.
        let (_, s2) = run(&opts).unwrap();
        assert_eq!(s2.cache_hits, 2);
        assert!((s2.hit_rate() - 1.0).abs() < 1e-9);

        // Touch one file: exactly one re-analysis, and the new
        // diagnostic in the changed file is reported.
        fs::write(
            src_dir.join("other.rs"),
            "pub fn two(&self) { let _ = self.net.rpc(p, m); }\n",
        )
        .unwrap();
        let (d3, s3) = run(&opts).unwrap();
        assert_eq!(s3.cache_hits, 1);
        assert_eq!(d3.len(), 1, "{d3:?}");
        assert_eq!(d3[0].rule, RULE_SWALLOWED);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cached_lock_summaries_still_feed_the_global_pass() {
        // One file of a cross-file cycle comes from the cache, the other
        // is fresh: the cycle must still be detected.
        let root = test_dir("warm_cycle");
        let src_dir = root.join("crates/one/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src_dir.join("a.rs"),
            "impl Q { fn push(&self) { let g = self.items.lock(); let h = self.stats.lock(); } }\n",
        )
        .unwrap();
        fs::write(src_dir.join("b.rs"), "pub fn free() {}\n").unwrap();
        let opts = Options {
            root: root.clone(),
            use_cache: true,
        };
        let (d1, _) = run(&opts).unwrap();
        assert!(d1.is_empty(), "{d1:?}");

        // Introduce the reverse order in b.rs only; a.rs is warm.
        fs::write(
            src_dir.join("b.rs"),
            "impl Q { fn report(&self) { let h = self.stats.lock(); let g = self.items.lock(); } }\n",
        )
        .unwrap();
        let (d2, s2) = run(&opts).unwrap();
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(d2.len(), 1, "{d2:?}");
        assert_eq!(d2[0].rule, RULE_LOCK_CYCLE);
        fs::remove_dir_all(&root).ok();
    }
}
