//! Intra-procedural taint tracking for the untrusted-input rules.
//!
//! PR 4's matchers were token-window heuristics: any `as` cast near a
//! `+` fired `checked-length-arithmetic`, and taint only propagated one
//! `let` hop. This pass is flow-sensitive: it walks each designated
//! function's body in order, maintaining a per-variable taint
//! environment, so
//!
//! * laundering through locals is caught (`let a = r.get_usize()?;
//!   let b = a; Vec::with_capacity(b)` fires), and
//! * untainted arithmetic no longer fires (`i + 1` near an unrelated
//!   cast is clean), killing the false positives that forced windowing
//!   hacks before.
//!
//! **Sources.** `Reader::get_u64` / `get_u32` / `get_usize` calls, wire
//! struct fields (`.rows`, `.clen`, `.total_lines`, ...), and — because
//! wire integers are `u64` on disk — `u64`-typed parameters of
//! designated decode functions.
//!
//! **Sinks.** `Vec::with_capacity(n)` / `vec![x; n]` with a
//! length-tainted `n` (`no-untrusted-prealloc`); narrowing `as` casts of
//! u64-tainted values (`no-as-truncation`); unchecked `+` / `*` with a
//! tainted operand (`checked-length-arithmetic`).
//!
//! **Neutralizers.** `get_len`, `.min()`, `.clamp()`, `try_from` /
//! `try_into`, and any `checked_*` / `saturating_*` call clear taint for
//! the expression they appear in: a bounded value is no longer
//! attacker-sized.

use std::collections::HashMap;

use crate::lexer::{TokKind, Token};
use crate::parser::{
    match_open, parse, postfix_expr_start, prev_ends_expr, punct_at, top_level_semi, Function,
    KEYWORDS,
};
use crate::rules::{Diagnostic, ScopeSpec, RULE_ARITH, RULE_PREALLOC, RULE_TRUNC};

/// Taint bit: carries a wire-derived length/count.
pub const TAINT_LEN: u8 = 1;
/// Taint bit: carries a full wire-read `u64` (narrowing must be checked).
pub const TAINT_U64: u8 = 2;

/// `Reader` methods that introduce wire-derived values.
const WIRE_SOURCES: &[&str] = &["get_u64", "get_u32", "get_usize"];
/// Struct fields that carry wire-derived lengths/counts.
const LEN_FIELDS: &[&str] = &["rows", "clen", "total_lines", "count", "dict_len", "raw_size"];
/// Struct fields deserialized as `u64` from the wire.
const U64_FIELDS: &[&str] = &["offset", "clen", "raw_size"];
/// Call names that bound a wire-derived value, clearing taint.
const NEUTRALIZERS: &[&str] = &["get_len", "min", "clamp", "try_from", "try_into", "len"];
/// Call-name prefixes that guard arithmetic (and clear taint).
const GUARD_PREFIXES: &[&str] = &["checked_", "saturating_", "wrapping_", "overflowing_"];
/// Cast targets narrower than `u64`.
const NARROW_TYPES: &[&str] = &["usize", "u32", "u16", "u8", "i32", "i16", "i8"];

/// Runs the taint pass over one file's designated functions, returning
/// raw (pre-suppression) diagnostics.
pub fn check(file: &str, toks: &[Token], scope: ScopeSpec) -> Vec<Diagnostic> {
    let parsed = parse(toks);
    let mut diags = Vec::new();
    for func in &parsed.functions {
        if func.in_test {
            continue;
        }
        let designated = match scope {
            ScopeSpec::WholeFile => true,
            ScopeSpec::Functions(names) => names.contains(&func.name.as_str()),
        };
        if !designated {
            continue;
        }
        check_function(file, toks, func, &mut diags);
    }
    diags
}

/// Walks one function body in order, tracking per-variable taint.
fn check_function(file: &str, toks: &[Token], func: &Function, diags: &mut Vec<Diagnostic>) {
    let mut env: HashMap<String, u8> = HashMap::new();
    seed_param_taint(toks, func, &mut env);

    let body = func.body_open + 1..func.body_close;
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident if t.text == "let" => {
                i = process_let(toks, i, body.end, &mut env);
                continue;
            }
            TokKind::Ident if t.text == "with_capacity" && punct_at(toks, i + 1, '(') => {
                if let Some(close) = match_open(toks, i + 1) {
                    if expr_taint(&toks[i + 2..close], &env) & TAINT_LEN != 0 {
                        push(diags, file, t.line, RULE_PREALLOC,
                            "with_capacity sized by a wire-derived value; bound it via Reader::get_len(max) or .min(remaining)");
                    }
                }
            }
            TokKind::Ident
                if t.text == "vec" && punct_at(toks, i + 1, '!') && punct_at(toks, i + 2, '[') =>
            {
                if let Some(close) = match_open(toks, i + 2) {
                    if let Some(semi) = top_level_semi(toks, i + 3, close) {
                        if expr_taint(&toks[semi + 1..close], &env) & TAINT_LEN != 0 {
                            push(diags, file, t.line, RULE_PREALLOC,
                                "vec![_; n] sized by a wire-derived value; bound it via Reader::get_len(max) or .min(remaining)");
                        }
                    }
                }
            }
            TokKind::Ident if t.text == "as" => {
                check_cast(file, toks, i, &env, diags);
            }
            TokKind::Punct if (t.is_punct('+') || t.is_punct('*')) && !punct_at(toks, i + 1, '=') => {
                check_arith(file, toks, i, body.clone(), &env, diags);
            }
            // Plain reassignment `name = expr;` updates the environment.
            TokKind::Ident
                if env.contains_key(&t.text)
                    && punct_at(toks, i + 1, '=')
                    && !punct_at(toks, i + 2, '=')
                    && !punct_at(toks, i + 2, '>') =>
            {
                let end = top_level_semi(toks, i + 2, body.end.min(i + 200)).unwrap_or(i + 2);
                let taint = expr_taint(&toks[i + 2..end], &env);
                env.insert(t.text.clone(), taint);
                i = end;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Marks `u64`-typed parameters of a designated decode function tainted:
/// wire integers are `u64` on disk, so a `u64` argument reaching a decode
/// path is untrusted until bounded.
fn seed_param_taint(toks: &[Token], func: &Function, env: &mut HashMap<String, u8>) {
    // The signature's parameter list is the first paren group before the body.
    let mut open = None;
    for j in (0..func.body_open).rev() {
        if toks[j].is_ident("fn") {
            for (k, t) in toks.iter().enumerate().take(func.body_open).skip(j) {
                if t.is_punct('(') {
                    open = Some(k);
                    break;
                }
            }
            break;
        }
    }
    let Some(open) = open else { return };
    let Some(close) = match_open(toks, open) else {
        return;
    };
    let params = &toks[open + 1..close.min(func.body_open)];
    // Split on top-level commas into `name: Type` entries.
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut entries = Vec::new();
    for (k, t) in params.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    entries.push(&params[start..k]);
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    if start < params.len() {
        entries.push(&params[start..]);
    }
    for entry in entries {
        let Some(colon) = entry.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let name = entry[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()));
        let is_u64 = entry[colon..].iter().any(|t| t.is_ident("u64"));
        if let (Some(name), true) = (name, is_u64) {
            env.insert(name.text.clone(), TAINT_LEN | TAINT_U64);
        }
    }
}

/// Handles `let [mut] name = expr;` (including `let Some(name)` /
/// `let Ok(name)` destructuring); returns the index to resume at.
fn process_let(
    toks: &[Token],
    let_idx: usize,
    body_end: usize,
    env: &mut HashMap<String, u8>,
) -> usize {
    let mut j = let_idx + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(first) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return let_idx + 1;
    };
    // `let Some(x) = ...` / `let Ok(x) = ...`: bind the inner name.
    let name = if matches!(first.text.as_str(), "Some" | "Ok") && punct_at(toks, j + 1, '(') {
        let mut k = j + 2;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        match toks.get(k).filter(|t| t.kind == TokKind::Ident) {
            Some(inner) => inner.text.clone(),
            None => return let_idx + 1,
        }
    } else {
        first.text.clone()
    };
    let Some(eq) = (j..body_end.min(j + 40)).find(|&k| {
        punct_at(toks, k, '=')
            && !punct_at(toks, k + 1, '=')
            && !punct_at(toks, k + 1, '>')
            && !punct_at(toks, k.wrapping_sub(1), '!')
    }) else {
        return let_idx + 1;
    };
    let end = top_level_semi(toks, eq + 1, body_end.min(eq + 400)).unwrap_or(eq + 1);
    let taint = expr_taint(&toks[eq + 1..end], env);
    env.insert(name, taint);
    // Resume *inside* the initializer so sinks in it are still checked.
    eq + 1
}

/// The taint of an expression span under `env`.
///
/// A neutralizer or guard call anywhere in the span clears taint — the
/// value has been bounded. Otherwise the span's taint is the union of
/// its sources: wire reads, wire fields, and tainted identifiers.
pub fn expr_taint(span: &[Token], env: &HashMap<String, u8>) -> u8 {
    let neutralized = span.iter().any(|t| {
        t.kind == TokKind::Ident
            && (NEUTRALIZERS.contains(&t.text.as_str())
                || GUARD_PREFIXES.iter().any(|p| t.text.starts_with(p)))
    });
    if neutralized {
        return 0;
    }
    let mut mask = 0u8;
    for (k, t) in span.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_field = k > 0 && span[k - 1].is_punct('.');
        if WIRE_SOURCES.contains(&name) {
            mask |= TAINT_LEN;
            if name == "get_u64" {
                mask |= TAINT_U64;
            }
        } else if is_field {
            if LEN_FIELDS.contains(&name) {
                mask |= TAINT_LEN;
            }
            if U64_FIELDS.contains(&name) {
                mask |= TAINT_U64;
            }
        } else if let Some(&m) = env.get(name) {
            mask |= m;
        }
    }
    mask
}

/// `<tainted u64> as usize/u32/...` → `no-as-truncation`.
fn check_cast(
    file: &str,
    toks: &[Token],
    as_idx: usize,
    env: &HashMap<String, u8>,
    diags: &mut Vec<Diagnostic>,
) {
    let narrow = toks
        .get(as_idx + 1)
        .is_some_and(|t| t.kind == TokKind::Ident && NARROW_TYPES.contains(&t.text.as_str()));
    if !narrow || as_idx == 0 {
        return;
    }
    let start = postfix_expr_start(toks, as_idx - 1);
    if start >= as_idx {
        return;
    }
    let operand = &toks[start..as_idx];
    if expr_taint(operand, env) & TAINT_U64 != 0 {
        let shown: String = operand
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("");
        push(
            diags,
            file,
            toks[as_idx].line,
            RULE_TRUNC,
            &format!(
                "`{} as {}` silently truncates a wire-read u64; use try_from/try_into and return Error::Corrupt",
                shown,
                toks[as_idx + 1].text
            ),
        );
    }
}

/// Unchecked binary `+`/`*` with a tainted operand → `checked-length-arithmetic`.
fn check_arith(
    file: &str,
    toks: &[Token],
    op_idx: usize,
    body: std::ops::Range<usize>,
    env: &HashMap<String, u8>,
    diags: &mut Vec<Diagnostic>,
) {
    if !prev_ends_expr(toks, op_idx) {
        return; // prefix `*` deref / unary context / trait-bound `+`
    }
    let left_start = postfix_expr_start(toks, op_idx - 1);
    let left = if left_start < op_idx {
        expr_taint(&toks[left_start..op_idx], env)
    } else {
        0
    };
    let right_span_end = forward_operand_end(toks, op_idx + 1, body.end);
    let right = if op_idx + 1 < right_span_end {
        expr_taint(&toks[op_idx + 1..right_span_end], env)
    } else {
        0
    };
    if (left | right) == 0 {
        return;
    }
    // A guard anywhere in the enclosing statement absolves the operator:
    // `a.checked_add(b * scale)` is deliberate, bounded arithmetic.
    let is_boundary =
        |t: &Token| t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
    let mut lo = op_idx;
    while lo > body.start && op_idx - lo < 40 && !is_boundary(&toks[lo - 1]) {
        lo -= 1;
    }
    let hi = right_span_end.min(body.end);
    let win = &toks[lo..hi];
    let guarded = win.iter().enumerate().any(|(k, t)| {
        t.kind == TokKind::Ident
            && (GUARD_PREFIXES.iter().any(|p| t.text.starts_with(p))
                // `u64::from(x)` / `u128::from(x)`: widened operands
                // cannot wrap (the message suggests exactly this fix).
                || (matches!(t.text.as_str(), "u64" | "u128")
                    && win.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && win.get(k + 3).is_some_and(|t| t.is_ident("from"))))
    });
    if !guarded {
        push(
            diags,
            file,
            toks[op_idx].line,
            RULE_ARITH,
            &format!(
                "`{}` on a wire-derived value can wrap in release builds; use checked_add/checked_mul (or widen via u64::from)",
                toks[op_idx].text
            ),
        );
    }
}

/// One-past-the-end of the operand expression starting at `from` (after
/// a binary operator): prefix ops, an ident/field/path chain with call
/// and index groups, `?`, and a trailing `as` cast.
fn forward_operand_end(toks: &[Token], from: usize, limit: usize) -> usize {
    let mut i = from;
    // Skip prefix operators.
    while i < limit
        && toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && matches!(t.text.as_str(), "&" | "*" | "-"))
    {
        i += 1;
    }
    while let Some(t) = toks.get(i).filter(|_| i < limit) {
        match t.kind {
            TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) || t.text == "as" => {
                i += 1;
            }
            TokKind::Num | TokKind::Str => i += 1,
            TokKind::Punct if matches!(t.text.as_str(), "(" | "[") => match match_open(toks, i) {
                Some(close) => i = close + 1,
                None => break,
            },
            TokKind::Punct if matches!(t.text.as_str(), "." | "?" | ":") => i += 1,
            _ => break,
        }
    }
    i
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: &'static str, message: &str) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message: message.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn whole(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        check("t.rs", &l.tokens, ScopeSpec::WholeFile)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn tainted_with_capacity_fires() {
        let src = "fn f(r: &mut Reader) { let n = r.get_usize()?; let v = Vec::with_capacity(n); }";
        assert_eq!(rules_of(&whole(src)), vec![RULE_PREALLOC]);
    }

    #[test]
    fn laundering_through_locals_is_caught() {
        // The PR 4 matcher only propagated one `let` hop; the dataflow
        // pass must follow the whole chain.
        let src = "fn f(r: &mut Reader) {\n let a = r.get_usize()?;\n let b = a;\n let c = b;\n let v = Vec::with_capacity(c);\n}";
        let d = whole(src);
        assert_eq!(rules_of(&d), vec![RULE_PREALLOC]);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn get_len_and_min_neutralize() {
        let a = "fn f(r: &mut Reader) { let n = r.get_len(r.remaining())?; let v = Vec::with_capacity(n); }";
        assert!(whole(a).is_empty());
        let b = "fn f(r: &mut Reader) { let n = r.get_usize()?; let v = Vec::with_capacity(n.min(cap)); }";
        assert!(whole(b).is_empty());
    }

    #[test]
    fn rebinding_through_neutralizer_clears_taint() {
        let src = "fn f(r: &mut Reader) { let mut n = r.get_usize()?; n = n.min(cap); let v = Vec::with_capacity(n); }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn per_function_environments_are_independent() {
        let src = "fn a(r: &mut Reader) { let n = r.get_usize()?; use_it(n); }\n\
                   fn b(r: &mut Reader) { let n = r.get_len(r.remaining())?; let v = Vec::with_capacity(n); }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn vec_macro_with_wire_field_fires() {
        let src = "fn f(&self) { let v = vec![0u8; self.meta.total_lines as usize]; }";
        let d = whole(src);
        assert!(rules_of(&d).contains(&RULE_PREALLOC), "{d:?}");
    }

    #[test]
    fn unchecked_add_of_u64_param_fires() {
        let src = "fn f(start: usize, clen: u64) -> usize { start + clen as usize }";
        let d = whole(src);
        assert!(rules_of(&d).contains(&RULE_ARITH), "{d:?}");
    }

    #[test]
    fn untainted_arithmetic_is_clean() {
        // The PR 4 window heuristic fired on any `as` near `+`; the
        // dataflow pass must not.
        let src = "fn f(xs: &[u8]) -> usize { let i = xs.len(); i + 1 + (3 as usize) }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn checked_add_passes() {
        let src = "fn f(start: u64, clen: u64) -> Option<u64> { start.checked_add(clen) }";
        assert!(whole(src).is_empty());
        let widened = "fn f(w: u32, r: u32) -> u64 { u64::from(w) * u64::from(r) }";
        assert!(whole(widened).is_empty());
    }

    #[test]
    fn wire_field_narrowing_fires() {
        let src = "fn f(meta: &Meta) -> usize { meta.clen as usize }";
        let d = whole(src);
        assert!(rules_of(&d).contains(&RULE_TRUNC), "{d:?}");
    }

    #[test]
    fn tainted_u64_narrowing_fires_and_try_from_passes() {
        let bad = "fn f(r: &mut Reader) { let n = r.get_u64()?; g(n as usize); }";
        assert!(rules_of(&whole(bad)).contains(&RULE_TRUNC));
        let ok = "fn f(r: &mut Reader) { let n = usize::try_from(r.get_u64()?).map_err(corrupt)?; g(n); }";
        assert!(whole(ok).is_empty());
    }

    #[test]
    fn chained_cast_of_wire_call_fires() {
        let bad = "fn f(r: &mut Reader) { g(r.get_u64()? as usize); }";
        assert!(rules_of(&whole(bad)).contains(&RULE_TRUNC));
    }

    #[test]
    fn lossless_widening_passes() {
        assert!(whole("fn f(n: u32) -> u64 { n as u64 }").is_empty());
    }

    #[test]
    fn fn_scope_limits_the_pass() {
        let src = "fn decode(r: &mut Reader) { let n = r.get_usize()?; Vec::with_capacity(n); }\n\
                   fn encode(r: &mut Reader) { let n = r.get_usize()?; Vec::with_capacity(n); }";
        let l = lex(src);
        let d = check("t.rs", &l.tokens, ScopeSpec::Functions(&["decode"]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t(r: &mut Reader) { let n = r.get_usize()?; Vec::with_capacity(n); }\n}";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn destructuring_let_binds_inner_name() {
        let src = "fn f(r: &mut Reader) { let Some(n) = r.get_usize().ok() else { return; }; let v = Vec::with_capacity(n); }";
        let d = whole(src);
        assert_eq!(rules_of(&d), vec![RULE_PREALLOC]);
    }
}
