//! A minimal hand-rolled Rust lexer.
//!
//! Produces a flat token stream with line numbers plus the set of
//! `// lint:allow(<rule>) — <reason>` suppression comments. The lexer
//! understands exactly enough Rust to keep the rule matchers honest:
//! line and (nested) block comments, string / raw-string / byte-string
//! literals, char literals vs. lifetimes, identifiers, numbers, and
//! single-character punctuation. It deliberately does not build a full
//! syntax tree — the rules in [`crate::rules`] work on token windows.

/// The coarse kind of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `as`, ...).
    Ident,
    /// Lifetime (`'a`). The text excludes the leading quote.
    Lifetime,
    /// Numeric literal (floats lex as `Num '.' Num`, which the rules
    /// never need to distinguish).
    Num,
    /// String, raw-string, byte-string, or char literal (text is the
    /// raw source slice including quotes).
    Str,
    /// A single punctuation character (`+`, `[`, `::` lexes as two).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character.
    pub start: usize,
}

impl Token {
    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// All `lint:allow` comments found, in source order.
    pub allows: Vec<Allow>,
}

/// Lexes `src` into tokens and suppression comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                parse_allow(&src[i + 2..end], line, &mut out.allows);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, newlines) = scan_string(b, i);
                push(&mut out.tokens, TokKind::Str, &src[i..end], line, i);
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` followed by an
                // ident char NOT later closed by `'` (i.e. `'a` but not `'a'`).
                let next_ident = b
                    .get(i + 1)
                    .is_some_and(|&n| n.is_ascii_alphabetic() || n == b'_');
                let closes = next_ident && b.get(i + 2) == Some(&b'\'');
                if next_ident && !closes {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    push(&mut out.tokens, TokKind::Lifetime, &src[i + 1..j], line, i);
                    i = j;
                } else {
                    let (end, newlines) = scan_char(b, i);
                    push(&mut out.tokens, TokKind::Str, &src[i..end], line, i);
                    line += newlines;
                    i = end;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = &src[i..j];
                // String prefixes: b"..", r"..", br"..", r#".."#, etc.
                let next = b.get(j).copied();
                let raw = matches!(word, "r" | "br" | "rb") && matches!(next, Some(b'"' | b'#'));
                let plain = word == "b" && next == Some(b'"');
                if raw {
                    let (end, newlines) = scan_raw_string(b, j);
                    push(&mut out.tokens, TokKind::Str, &src[i..end], line, i);
                    line += newlines;
                    i = end;
                } else if plain {
                    let (end, newlines) = scan_string(b, j);
                    push(&mut out.tokens, TokKind::Str, &src[i..end], line, i);
                    line += newlines;
                    i = end;
                } else {
                    push(&mut out.tokens, TokKind::Ident, word, line, i);
                    i = j;
                }
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                push(&mut out.tokens, TokKind::Num, &src[i..j], line, i);
                i = j;
            }
            _ => {
                push(&mut out.tokens, TokKind::Punct, &src[i..i + 1], line, i);
                i += 1;
            }
        }
    }
    out
}

fn push(tokens: &mut Vec<Token>, kind: TokKind, text: &str, line: u32, start: usize) {
    tokens.push(Token {
        kind,
        text: text.to_string(),
        line,
        start,
    });
}

/// Scans a `"`-delimited string starting at `b[at] == b'"'`.
/// Returns (one past the closing quote, newline count inside).
fn scan_string(b: &[u8], at: usize) -> (usize, u32) {
    let mut i = at + 1;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            // An escape skips the next byte — but a line continuation
            // (`\` before a newline) still advances the line counter.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Scans a raw string whose `#* "` part starts at `b[at]`.
fn scan_raw_string(b: &[u8], at: usize) -> (usize, u32) {
    let mut hashes = 0usize;
    let mut i = at;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return (i, 0); // Malformed; bail without consuming further.
    }
    i += 1;
    let mut newlines = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes {
            return (i + 1 + hashes, newlines);
        } else {
            i += 1;
        }
    }
    (b.len(), newlines)
}

/// Scans a char literal starting at `b[at] == b'\''`.
fn scan_char(b: &[u8], at: usize) -> (usize, u32) {
    let mut i = at + 1;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'\'' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Parses a line comment body, recording it if it is a `lint:allow`.
fn parse_allow(body: &str, line: u32, allows: &mut Vec<Allow>) {
    let t = body.trim_start();
    let Some(rest) = t.strip_prefix("lint:allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','));
    allows.push(Allow {
        line,
        rules,
        has_reason: !reason.is_empty(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_keywords_punct() {
        let l = lex("fn main() { x.unwrap(); }");
        let idents: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "main", "x", "unwrap"]);
    }

    #[test]
    fn strings_hide_contents() {
        let l = lex(r#"let s = "a.unwrap() [0]";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r##"let s = r#"x.unwrap()"#; let b = b"idx[0]"; let c = br"[1]";"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
    }

    #[test]
    fn line_continuations_in_strings_count_lines() {
        // `\` before a newline continues a string literal; the lines it
        // spans must still advance the line counter.
        let src = "let s = \"a\\\n b\\\n c\";\nlet x = y;";
        let l = lex(src);
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 4);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a u8) -> char { 'b' }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str && t.text == "'b'"));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a /* x /* y */ z\n */ b\nc");
        let idents: Vec<_> = l.tokens.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(idents, vec![("a", 1), ("b", 2), ("c", 3)]);
    }

    #[test]
    fn allow_comment_with_reason() {
        let l = lex("x(); // lint:allow(no-panic-in-decode) — bounded by construction\n");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rules, vec!["no-panic-in-decode"]);
        assert!(l.allows[0].has_reason);
        assert_eq!(l.allows[0].line, 1);
    }

    #[test]
    fn allow_comment_without_reason() {
        let l = lex("// lint:allow(no-as-truncation)\ny();");
        assert_eq!(l.allows.len(), 1);
        assert!(!l.allows[0].has_reason);
    }

    #[test]
    fn allow_comment_multiple_rules() {
        let l = lex("// lint:allow(a, b) - both fine\n");
        assert_eq!(l.allows[0].rules, vec!["a", "b"]);
        assert!(l.allows[0].has_reason);
    }
}
