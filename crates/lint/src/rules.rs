//! Shared diagnostic types, the rule registry, and the token-window
//! rules (panic-in-decode, crate hygiene).
//!
//! The flow-sensitive untrusted-input rules live in [`crate::dataflow`],
//! the concurrency pack in [`crate::lockorder`], and the hygiene pack in
//! [`crate::hygiene`]; all of them emit the [`Diagnostic`] type defined
//! here and register their rule names in [`ALL_RULES`]. Every rule can
//! be suppressed per line with a `// lint:allow(<rule>) — <reason>`
//! comment on the same line or the line immediately above; suppression
//! is applied centrally in [`crate::lint_workspace`] so the raw
//! (pre-suppression) diagnostics can feed the stale-allow pass.

use crate::lexer::{TokKind, Token};
use crate::parser::{match_open, parse, prev_ends_expr, punct_at};

/// `unwrap`/`expect`/`panic!`/`assert!`/bare indexing in decode paths.
pub const RULE_PANIC: &str = "no-panic-in-decode";
/// `Vec::with_capacity`/`vec![_; n]` sized by wire-derived values.
pub const RULE_PREALLOC: &str = "no-untrusted-prealloc";
/// Unchecked `+`/`*` on wire-derived values.
pub const RULE_ARITH: &str = "checked-length-arithmetic";
/// `as usize`/`as u32` narrowing of wire-read `u64`s.
pub const RULE_TRUNC: &str = "no-as-truncation";
/// Crate roots must forbid `unsafe_code` and deny `missing_docs`.
pub const RULE_HYGIENE: &str = "crate-hygiene";
/// A `lint:allow` comment must state a reason.
pub const RULE_ALLOW_REASON: &str = "allow-needs-reason";
/// A cycle in the global lock-order graph (potential deadlock).
pub const RULE_LOCK_CYCLE: &str = "lock-order-cycle";
/// A blocking call (`send`/`recv`/`rpc`/`join`/...) while a lock is held.
pub const RULE_LOCK_BLOCKING: &str = "no-lock-across-blocking";
/// A blocking call inside a `Pool::map`/`try_map`/`map_chunks` closure.
pub const RULE_POOL_BLOCKING: &str = "no-blocking-in-pool-worker";
/// `let _ =` discarding the `Result` of a fallible decode/cluster call.
pub const RULE_SWALLOWED: &str = "swallowed-result";
/// Unbalanced or immediately-dropped telemetry spans.
pub const RULE_SPAN_BALANCE: &str = "span-balance";
/// A `lint:allow` that no longer suppresses anything.
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// Every rule the analyzer knows, for `--help` listings, SARIF rule
/// metadata, and mapping cached rule names back to `&'static str`.
pub const ALL_RULES: &[&str] = &[
    RULE_PANIC,
    RULE_PREALLOC,
    RULE_ARITH,
    RULE_TRUNC,
    RULE_HYGIENE,
    RULE_ALLOW_REASON,
    RULE_LOCK_CYCLE,
    RULE_LOCK_BLOCKING,
    RULE_POOL_BLOCKING,
    RULE_SWALLOWED,
    RULE_SPAN_BALANCE,
    RULE_STALE_ALLOW,
];

/// Maps a rule name back to its static registry entry (used when
/// deserializing cached diagnostics).
pub fn rule_by_name(name: &str) -> Option<&'static str> {
    ALL_RULES.iter().find(|r| **r == name).copied()
}

/// One finding, pointing at a source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Where the untrusted-input rules apply within a designated file.
#[derive(Debug, Clone, Copy)]
pub enum ScopeSpec {
    /// The whole file is a decode path (minus `#[cfg(test)]` regions).
    WholeFile,
    /// Only the bodies of functions with these names.
    Functions(&'static [&'static str]),
}

/// Methods whose call panics (`.unwrap()` etc.).
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
/// Macros that panic. `debug_assert*` is deliberately absent: it
/// compiles out in release and is allowed for packer-side invariants.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Marks which tokens the untrusted-input rules inspect.
pub fn designated_mask(toks: &[Token], scope: ScopeSpec) -> Vec<bool> {
    let parsed = parse(toks);
    let mut mask = match scope {
        ScopeSpec::WholeFile => vec![true; toks.len()],
        ScopeSpec::Functions(names) => {
            let mut m = vec![false; toks.len()];
            for f in &parsed.functions {
                if names.contains(&f.name.as_str()) {
                    for slot in m.iter_mut().take(f.body_close).skip(f.body_open + 1) {
                        *slot = true;
                    }
                }
            }
            m
        }
    };
    for (slot, in_test) in mask.iter_mut().zip(&parsed.test_mask) {
        if *in_test {
            *slot = false;
        }
    }
    mask
}

/// Runs the panic rule over one file's designated regions. Returns raw
/// (pre-suppression) diagnostics.
pub fn check_panic(file: &str, toks: &[Token], scope: ScopeSpec) -> Vec<Diagnostic> {
    let designated = designated_mask(toks, scope);
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        if !designated.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if PANIC_METHODS.contains(&name)
                    && punct_at(toks, i.wrapping_sub(1), '.')
                    && punct_at(toks, i + 1, '(')
                {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        rule: RULE_PANIC,
                        message: format!(
                            ".{name}() can panic on corrupt input; return Error::Corrupt instead"
                        ),
                    });
                } else if PANIC_MACROS.contains(&name) && punct_at(toks, i + 1, '!') {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        rule: RULE_PANIC,
                        message: format!(
                            "{name}! can panic on corrupt input; return Error::Corrupt instead"
                        ),
                    });
                }
            }
            TokKind::Punct
                if t.is_punct('[')
                    && prev_ends_expr(toks, i)
                    && !content_is_full_range(toks, i) =>
            {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    rule: RULE_PANIC,
                    message: "bare indexing can panic on corrupt input; use .get()/.get_mut() and return Error::Corrupt".to_string(),
                });
            }
            _ => {}
        }
    }
    diags
}

/// Runs the crate-hygiene rule over a crate root file.
pub fn check_crate_root(file: &str, src: &str, is_lib: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !src.contains("#![forbid(unsafe_code)]") {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: RULE_HYGIENE,
            message: "crate root must carry #![forbid(unsafe_code)]".to_string(),
        });
    }
    if is_lib && !src.contains("#![deny(missing_docs)]") {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: RULE_HYGIENE,
            message: "crate root must carry #![deny(missing_docs)]".to_string(),
        });
    }
    diags
}

/// True if the bracket group at `open` contains exactly `..` (a full
/// range, which cannot panic).
fn content_is_full_range(toks: &[Token], open: usize) -> bool {
    let Some(close) = match_open(toks, open) else {
        return false;
    };
    close == open + 3 && punct_at(toks, open + 1, '.') && punct_at(toks, open + 2, '.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn whole(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        check_panic("test.rs", &l.tokens, ScopeSpec::WholeFile)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_fires() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_of(&whole(bad)), vec![RULE_PANIC]);
    }

    #[test]
    fn expect_and_panic_macros_fire() {
        let d = whole("fn f() { y.expect(\"msg\"); panic!(\"boom\"); assert!(c); unreachable!() }");
        assert_eq!(rules_of(&d), vec![RULE_PANIC; 4]);
    }

    #[test]
    fn debug_assert_and_unwrap_or_pass() {
        assert!(whole("fn f() { debug_assert!(x); let y = o.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn indexing_fires_but_full_range_and_attrs_pass() {
        assert_eq!(rules_of(&whole("fn f(v: &[u8]) -> u8 { v[0] }")), vec![RULE_PANIC]);
        assert_eq!(rules_of(&whole("fn f(v: &[u8]) { g(&v[1..]); }")), vec![RULE_PANIC]);
        assert!(whole("#[derive(Debug)]\nstruct S { x: [u8; 4] }\nfn f(v: &[u8]) -> &[u8] { &v[..] }").is_empty());
        assert!(whole("fn f(v: &[u8]) -> Option<&u8> { v.get(0) }").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\nfn real() { }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn fn_scope_limits_rules() {
        let src = "fn decode(v: &[u8]) -> u8 { v[0] }\nfn encode(v: &[u8]) -> u8 { v[0] }";
        let l = lex(src);
        let d = check_panic("t.rs", &l.tokens, ScopeSpec::Functions(&["decode"]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn rule_registry_round_trips() {
        for r in ALL_RULES {
            assert_eq!(rule_by_name(r), Some(*r));
        }
        assert_eq!(rule_by_name("no-such-rule"), None);
    }

    #[test]
    fn hygiene_fires_and_passes() {
        let bare = "pub fn f() {}";
        let d = check_crate_root("lib.rs", bare, true);
        assert_eq!(d.len(), 2);
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}";
        assert!(check_crate_root("lib.rs", good, true).is_empty());
        let bin = "#![forbid(unsafe_code)]\nfn main() {}";
        assert!(check_crate_root("main.rs", bin, false).is_empty());
    }
}
