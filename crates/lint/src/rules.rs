//! Rule matchers over the token stream.
//!
//! Four untrusted-input rules run over designated decode-path regions
//! (see [`crate::config`]) plus a workspace-hygiene rule for crate
//! roots. Every rule can be suppressed per line with a
//! `// lint:allow(<rule>) — <reason>` comment on the same line or the
//! line immediately above; a suppression without a reason is itself a
//! diagnostic.
//!
//! The matchers are deliberately heuristic: they work on token windows
//! (bounded by statement separators), not on a resolved AST. Splitting
//! a cast into a named `let` binding takes the value out of the
//! `checked-length-arithmetic` window — reviewers treat that as an
//! explicit assertion that the arithmetic is domain-bounded.

use std::collections::HashSet;

use crate::lexer::{lex, TokKind, Token};

/// `unwrap`/`expect`/`panic!`/`assert!`/bare indexing in decode paths.
pub const RULE_PANIC: &str = "no-panic-in-decode";
/// `Vec::with_capacity`/`vec![_; n]` sized by wire-derived values.
pub const RULE_PREALLOC: &str = "no-untrusted-prealloc";
/// Unchecked `+`/`*` mixing in `as`-cast values.
pub const RULE_ARITH: &str = "checked-length-arithmetic";
/// `as usize`/`as u32` narrowing of wire-read `u64`s.
pub const RULE_TRUNC: &str = "no-as-truncation";
/// Crate roots must forbid `unsafe_code` and deny `missing_docs`.
pub const RULE_HYGIENE: &str = "crate-hygiene";
/// A `lint:allow` comment must state a reason.
pub const RULE_ALLOW_REASON: &str = "allow-needs-reason";

/// One finding, pointing at a source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Where the untrusted-input rules apply within a designated file.
#[derive(Debug, Clone, Copy)]
pub enum ScopeSpec {
    /// The whole file is a decode path (minus `#[cfg(test)]` regions).
    WholeFile,
    /// Only the bodies of functions with these names.
    Functions(&'static [&'static str]),
}

/// Methods whose call panics (`.unwrap()` etc.).
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
/// Macros that panic. `debug_assert*` is deliberately absent: it
/// compiles out in release and is allowed for packer-side invariants.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];
/// `Reader` methods that introduce wire-derived (tainted) values.
const WIRE_SOURCES: &[&str] = &["get_u64", "get_u32", "get_usize"];
/// Struct fields that carry wire-derived lengths/counts.
const LEN_FIELDS: &[&str] = &["rows", "clen", "total_lines", "count", "dict_len", "raw_size"];
/// Struct fields deserialized as `u64` from the wire.
const U64_FIELDS: &[&str] = &["offset", "clen", "raw_size"];
/// Calls that bound a wire-derived value, clearing taint.
const NEUTRALIZERS: &[&str] = &["get_len", "min", "clamp", "saturating_sub", "try_from", "try_into"];
/// Identifiers that end an expression (so a following `[`/`+`/`*` is a
/// postfix index / binary operator) — everything except keywords.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Runs the untrusted-input rules (1–4) over one source file.
pub fn check_source(file: &str, src: &str, scope: ScopeSpec) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut diags = Vec::new();

    let mut allowed: HashSet<(u32, String)> = HashSet::new();
    for a in &lexed.allows {
        if !a.has_reason {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                rule: RULE_ALLOW_REASON,
                message: "lint:allow must state a reason after the rule list".to_string(),
            });
        }
        for r in &a.rules {
            allowed.insert((a.line, r.clone()));
            allowed.insert((a.line + 1, r.clone()));
        }
    }

    let designated = designated_mask(toks, scope);
    let taints = collect_taints(toks);

    let mut emit = |line: u32, rule: &'static str, message: String| {
        if !allowed.contains(&(line, rule.to_string())) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    for i in 0..toks.len() {
        if !designated.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if PANIC_METHODS.contains(&name) && punct_at(toks, i.wrapping_sub(1), '.') && punct_at(toks, i + 1, '(') {
                    emit(
                        t.line,
                        RULE_PANIC,
                        format!(".{name}() can panic on corrupt input; return Error::Corrupt instead"),
                    );
                } else if PANIC_MACROS.contains(&name) && punct_at(toks, i + 1, '!') {
                    emit(
                        t.line,
                        RULE_PANIC,
                        format!("{name}! can panic on corrupt input; return Error::Corrupt instead"),
                    );
                } else if name == "with_capacity" && punct_at(toks, i + 1, '(') {
                    if let Some(close) = match_open(toks, i + 1) {
                        if span_is_tainted(&toks[i + 2..close], &taints, i) {
                            emit(
                                t.line,
                                RULE_PREALLOC,
                                "with_capacity sized by a wire-derived value; bound it via Reader::get_len(max) or .min(remaining)".to_string(),
                            );
                        }
                    }
                } else if name == "vec" && punct_at(toks, i + 1, '!') && punct_at(toks, i + 2, '[') {
                    if let Some(close) = match_open(toks, i + 2) {
                        if let Some(semi) = top_level_semi(toks, i + 3, close) {
                            if span_is_tainted(&toks[semi + 1..close], &taints, i) {
                                emit(
                                    t.line,
                                    RULE_PREALLOC,
                                    "vec![_; n] sized by a wire-derived value; bound it via Reader::get_len(max) or .min(remaining)".to_string(),
                                );
                            }
                        }
                    }
                } else if name == "as" {
                    check_truncation(toks, i, &taints, &mut emit);
                }
            }
            TokKind::Punct
                if t.is_punct('[')
                    && prev_ends_expr(toks, i)
                    && !content_is_full_range(toks, i) =>
            {
                emit(
                    t.line,
                    RULE_PANIC,
                    "bare indexing can panic on corrupt input; use .get()/.get_mut() and return Error::Corrupt".to_string(),
                );
            }
            TokKind::Punct if t.is_punct('+') || t.is_punct('*') => {
                check_arith(toks, i, &mut emit);
            }
            _ => {}
        }
    }
    diags
}

/// Runs the crate-hygiene rule over a crate root file.
pub fn check_crate_root(file: &str, src: &str, is_lib: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !src.contains("#![forbid(unsafe_code)]") {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: RULE_HYGIENE,
            message: "crate root must carry #![forbid(unsafe_code)]".to_string(),
        });
    }
    if is_lib && !src.contains("#![deny(missing_docs)]") {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: RULE_HYGIENE,
            message: "crate root must carry #![deny(missing_docs)]".to_string(),
        });
    }
    diags
}

// ---------------------------------------------------------------------------
// Region and taint analysis
// ---------------------------------------------------------------------------

/// Marks which tokens the untrusted-input rules inspect.
fn designated_mask(toks: &[Token], scope: ScopeSpec) -> Vec<bool> {
    let mut mask = match scope {
        ScopeSpec::WholeFile => vec![true; toks.len()],
        ScopeSpec::Functions(names) => {
            let mut m = vec![false; toks.len()];
            for (name, lo, hi) in fn_spans(toks) {
                if names.contains(&name.as_str()) {
                    for slot in m.iter_mut().take(hi).skip(lo) {
                        *slot = true;
                    }
                }
            }
            m
        }
    };
    for (lo, hi) in test_regions(toks) {
        for slot in mask.iter_mut().take(hi.min(toks.len())).skip(lo) {
            *slot = false;
        }
    }
    mask
}

/// All `fn name ... { body }` spans as (name, body_start, body_end).
fn fn_spans(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if let Some(open) = find_body_open(toks, i + 2) {
            let close = match_open(toks, open).unwrap_or(toks.len());
            out.push((name.text.clone(), open + 1, close));
        }
    }
    out
}

/// Token index ranges covered by `#[cfg(test)]`/`#[test]` items.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = match_open(toks, i + 1) else {
            break;
        };
        let group = &toks[i + 2..close];
        let is_test = group.iter().any(|t| t.is_ident("test")) && !group.iter().any(|t| t.is_ident("not"));
        if is_test {
            // Skip any further attributes before the item.
            let mut j = close + 1;
            while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
                match match_open(toks, j + 1) {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            if let Some(open) = find_body_open(toks, j) {
                let end = match_open(toks, open).unwrap_or(toks.len());
                out.push((i, end + 1));
                i = end + 1;
                continue;
            }
        }
        i = close + 1;
    }
    out
}

/// Finds the item-body `{` after a signature, skipping parens/brackets;
/// returns `None` if a top-level `;` arrives first (no body).
fn find_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(j),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Given an opening `(`/`[`/`{` at `open`, returns its matching closer.
fn match_open(toks: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match toks.get(open).map(|t| t.text.as_str()) {
        Some("(") => ('(', ')'),
        Some("[") => ('[', ']'),
        Some("{") => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds a `;` between `from` and `to` at zero relative bracket depth.
fn top_level_semi(toks: &[Token], from: usize, to: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(to).skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// A recorded taint: from token `idx` on, identifier `name` carries
/// wire-derived data (`mask` bit 1 = any length source, bit 2 = u64).
struct Taint {
    idx: usize,
    name: String,
    mask: u8,
}

const TAINT_LEN: u8 = 1;
const TAINT_U64: u8 = 2;

/// Collects `let`-binding taints via a linear scan. Deliberately
/// file-global (not fn-scoped): decode files are small and shadowing
/// across functions is rare enough for this heuristic.
fn collect_taints(toks: &[Token]) -> Vec<Taint> {
    let mut taints: Vec<Taint> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let end = top_level_semi(toks, j + 1, toks.len().min(j + 200)).unwrap_or(j + 1);
        let span = &toks[j + 1..end];
        if span.iter().any(|t| t.kind == TokKind::Ident && NEUTRALIZERS.contains(&t.text.as_str())) {
            // A neutralized binding also *clears* earlier taint of the
            // same name: `taint_at` takes the latest binding, so a
            // mask-0 entry shadows any prior tainted one.
            taints.push(Taint {
                idx: end,
                name: name.text.clone(),
                mask: 0,
            });
            continue;
        }
        let mut mask = 0u8;
        if span.iter().any(|t| t.kind == TokKind::Ident && WIRE_SOURCES.contains(&t.text.as_str())) {
            mask |= TAINT_LEN;
        }
        if span.iter().any(|t| t.is_ident("get_u64")) {
            mask |= TAINT_U64;
        }
        // One-hop propagation through already-tainted identifiers.
        for t in span {
            if t.kind == TokKind::Ident {
                mask |= taint_at(&taints, &t.text, i);
            }
        }
        if mask != 0 {
            taints.push(Taint {
                idx: end,
                name: name.text.clone(),
                mask,
            });
        }
    }
    taints
}

/// The taint mask of `name` at token index `idx` (last binding wins).
fn taint_at(taints: &[Taint], name: &str, idx: usize) -> u8 {
    taints
        .iter()
        .rev()
        .find(|t| t.idx <= idx && t.name == name)
        .map_or(0, |t| t.mask)
}

// ---------------------------------------------------------------------------
// Per-site checks
// ---------------------------------------------------------------------------

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// True if the token before `i` ends an expression (making a following
/// `[` an index and a following `+`/`*` a binary operator).
fn prev_ends_expr(toks: &[Token], i: usize) -> bool {
    let Some(p) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
        return false;
    };
    match p.kind {
        TokKind::Num | TokKind::Str => true,
        TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
        TokKind::Punct => matches!(p.text.as_str(), ")" | "]" | "?"),
        TokKind::Lifetime => false,
    }
}

/// True if the bracket group at `open` contains exactly `..` (a full
/// range, which cannot panic).
fn content_is_full_range(toks: &[Token], open: usize) -> bool {
    let Some(close) = match_open(toks, open) else {
        return false;
    };
    close == open + 3 && punct_at(toks, open + 1, '.') && punct_at(toks, open + 2, '.')
}

/// Does a pre-allocation argument span mention wire-derived data?
fn span_is_tainted(span: &[Token], taints: &[Taint], at: usize) -> bool {
    let neutral = span
        .iter()
        .any(|t| t.kind == TokKind::Ident && NEUTRALIZERS.contains(&t.text.as_str()));
    if neutral {
        return false;
    }
    for (k, t) in span.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if WIRE_SOURCES.contains(&name) {
            return true;
        }
        if k > 0 && span[k - 1].is_punct('.') && LEN_FIELDS.contains(&name) {
            return true;
        }
        if taint_at(taints, name, at) & TAINT_LEN != 0 {
            return true;
        }
    }
    false
}

/// Rule 4: `<wire u64> as usize/u32/u16/u8`.
fn check_truncation(
    toks: &[Token],
    i: usize,
    taints: &[Taint],
    emit: &mut impl FnMut(u32, &'static str, String),
) {
    let narrow = toks
        .get(i + 1)
        .is_some_and(|t| matches!(t.text.as_str(), "usize" | "u32" | "u16" | "u8") && t.kind == TokKind::Ident);
    if !narrow {
        return;
    }
    let line = toks[i].line;
    let Some(prev) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
        return;
    };
    if prev.kind == TokKind::Ident {
        let field = i >= 2 && toks[i - 2].is_punct('.') && U64_FIELDS.contains(&prev.text.as_str());
        let tainted = taint_at(taints, &prev.text, i) & TAINT_U64 != 0;
        if field || tainted {
            emit(
                line,
                RULE_TRUNC,
                format!(
                    "`{} as {}` silently truncates a wire-read u64; use try_from/try_into and return Error::Corrupt",
                    prev.text,
                    toks[i + 1].text
                ),
            );
        }
    } else if matches!(prev.text.as_str(), ")" | "?") {
        let lo = i.saturating_sub(12);
        let crossed = toks[lo..i]
            .iter()
            .rev()
            .take_while(|t| !matches!(t.text.as_str(), ";" | "{" | "}"))
            .any(|t| t.is_ident("get_u64"));
        if crossed {
            emit(
                line,
                RULE_TRUNC,
                "narrowing cast of a get_u64() result; use try_from/try_into and return Error::Corrupt".to_string(),
            );
        }
    }
}

/// Rule 3: binary `+`/`*` with an `as` cast in the statement window and
/// no `checked_*`/`saturating_*` call.
fn check_arith(toks: &[Token], i: usize, emit: &mut impl FnMut(u32, &'static str, String)) {
    if !prev_ends_expr(toks, i) || punct_at(toks, i + 1, '=') {
        return;
    }
    let is_boundary = |t: &Token| t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}");
    let mut lo = i;
    while lo > 0 && i - lo < 25 && !is_boundary(&toks[lo - 1]) {
        lo -= 1;
    }
    let mut hi = i + 1;
    while hi < toks.len() && hi - i < 25 && !is_boundary(&toks[hi]) {
        hi += 1;
    }
    let win = &toks[lo..hi];
    let has_as = win.iter().any(|t| t.is_ident("as"));
    let guarded = win.iter().any(|t| {
        t.kind == TokKind::Ident
            && ["checked_", "saturating_", "wrapping_", "overflowing_"]
                .iter()
                .any(|p| t.text.starts_with(p))
    });
    if has_as && !guarded {
        emit(
            toks[i].line,
            RULE_ARITH,
            format!(
                "`{}` on an `as`-cast value can wrap in release builds; use checked_add/checked_mul (or widen via u64::from)",
                toks[i].text
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn whole(src: &str) -> Vec<Diagnostic> {
        check_source("test.rs", src, ScopeSpec::WholeFile)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    // --- rule 1: no-panic-in-decode -------------------------------------

    #[test]
    fn unwrap_fires_and_allow_suppresses() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_of(&whole(bad)), vec![RULE_PANIC]);
        let ok = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic-in-decode) — caller guarantees Some\n    x.unwrap()\n}";
        assert!(whole(ok).is_empty());
    }

    #[test]
    fn expect_and_panic_macros_fire() {
        let d = whole("fn f() { y.expect(\"msg\"); panic!(\"boom\"); assert!(c); unreachable!() }");
        assert_eq!(rules_of(&d), vec![RULE_PANIC; 4]);
    }

    #[test]
    fn debug_assert_and_unwrap_or_pass() {
        assert!(whole("fn f() { debug_assert!(x); let y = o.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn indexing_fires_but_full_range_and_attrs_pass() {
        assert_eq!(rules_of(&whole("fn f(v: &[u8]) -> u8 { v[0] }")), vec![RULE_PANIC]);
        assert_eq!(rules_of(&whole("fn f(v: &[u8]) { g(&v[1..]); }")), vec![RULE_PANIC]);
        assert!(whole("#[derive(Debug)]\nstruct S { x: [u8; 4] }\nfn f(v: &[u8]) -> &[u8] { &v[..] }").is_empty());
        assert!(whole("fn f(v: &[u8]) -> Option<&u8> { v.get(0) }").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\nfn real() { }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn fn_scope_limits_rules() {
        let src = "fn decode(v: &[u8]) -> u8 { v[0] }\nfn encode(v: &[u8]) -> u8 { v[0] }";
        let d = check_source("t.rs", src, ScopeSpec::Functions(&["decode"]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    // --- rule 2: no-untrusted-prealloc ----------------------------------

    #[test]
    fn tainted_with_capacity_fires() {
        let src = "fn f(r: &mut Reader) { let n = r.get_usize()?; let v = Vec::with_capacity(n); }";
        assert_eq!(rules_of(&whole(src)), vec![RULE_PREALLOC]);
    }

    #[test]
    fn get_len_and_min_neutralize() {
        let a = "fn f(r: &mut Reader) { let n = r.get_len(r.remaining())?; let v = Vec::with_capacity(n); }";
        assert!(whole(a).is_empty());
        let b = "fn f(r: &mut Reader) { let n = r.get_usize()?; let v = Vec::with_capacity(n.min(cap)); }";
        assert!(whole(b).is_empty());
    }

    #[test]
    fn neutralized_rebinding_clears_taint() {
        // `n` is tainted in one function but re-bound through get_len in
        // another; the later (shadowing) binding must win.
        let src = "fn a(r: &mut Reader) { let n = r.get_usize()?; use_it(n); }\n\
                   fn b(r: &mut Reader) { let n = r.get_len(r.remaining())?; let v = Vec::with_capacity(n); }";
        assert!(whole(src).is_empty());
    }

    #[test]
    fn vec_macro_with_wire_field_fires() {
        let src = "fn f(&self) { let v = vec![0u8; self.meta.total_lines as usize]; }";
        let d = whole(src);
        assert!(rules_of(&d).contains(&RULE_PREALLOC), "{d:?}");
    }

    // --- rule 3: checked-length-arithmetic ------------------------------

    #[test]
    fn unchecked_add_of_cast_fires() {
        let src = "fn f(start: usize, clen: u64) -> usize { start + clen as usize }";
        assert!(rules_of(&whole(src)).contains(&RULE_ARITH));
    }

    #[test]
    fn checked_add_passes() {
        let src = "fn f(start: u64, clen: u64) -> Option<u64> { start.checked_add(clen) }";
        assert!(whole(src).is_empty());
        let widened = "fn f(w: u32, r: u32) -> u64 { u64::from(w) * u64::from(r) }";
        assert!(whole(widened).is_empty());
    }

    // --- rule 4: no-as-truncation ---------------------------------------

    #[test]
    fn wire_field_narrowing_fires() {
        let src = "fn f(meta: &Meta) -> usize { meta.clen as usize }";
        let d = whole(src);
        assert!(rules_of(&d).contains(&RULE_TRUNC), "{d:?}");
    }

    #[test]
    fn tainted_u64_narrowing_fires_and_try_from_passes() {
        let bad = "fn f(r: &mut Reader) { let n = r.get_u64()?; g(n as usize); }";
        assert!(rules_of(&whole(bad)).contains(&RULE_TRUNC));
        let ok = "fn f(r: &mut Reader) { let n = usize::try_from(r.get_u64()?).map_err(corrupt)?; g(n); }";
        assert!(whole(ok).is_empty());
    }

    #[test]
    fn lossless_widening_passes() {
        assert!(whole("fn f(n: u32) -> u64 { n as u64 }").is_empty());
    }

    // --- allow bookkeeping ----------------------------------------------

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "fn f(x: Option<u8>) {\n    // lint:allow(no-panic-in-decode)\n    x.unwrap();\n}";
        assert_eq!(rules_of(&whole(src)), vec![RULE_ALLOW_REASON]);
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f(x: Option<u8>) {\n    // lint:allow(no-as-truncation) — wrong rule\n    x.unwrap();\n}";
        assert_eq!(rules_of(&whole(src)), vec![RULE_PANIC]);
    }

    // --- rule 5: crate hygiene ------------------------------------------

    #[test]
    fn hygiene_fires_and_passes() {
        let bare = "pub fn f() {}";
        let d = check_crate_root("lib.rs", bare, true);
        assert_eq!(d.len(), 2);
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}";
        assert!(check_crate_root("lib.rs", good, true).is_empty());
        let bin = "#![forbid(unsafe_code)]\nfn main() {}";
        assert!(check_crate_root("main.rs", bin, false).is_empty());
    }
}
