//! A lightweight item/expression parser over the token stream.
//!
//! The analyzer does not need full Rust — it needs just enough structure
//! for flow-sensitive reasoning: where functions begin and end, which
//! `impl` block a method lives in, where `#[cfg(test)]` regions are,
//! statement boundaries inside a body, and the receiver chain of a
//! method call (`self.shared.cache[i].lock()` → `self.shared.cache[]`).
//! Everything here works on the flat token stream produced by
//! [`crate::lexer`] and returns token *indices*, so the rule passes in
//! [`crate::dataflow`], [`crate::lockorder`], and [`crate::hygiene`] can
//! slice the same stream without re-lexing.

use crate::lexer::{TokKind, Token};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's bare name (`decode`, not `Type::decode`).
    pub name: String,
    /// Name qualified by the enclosing `impl` type, when there is one
    /// (`SimNet::rpc`); equals `name` for free functions.
    pub qual_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}` (exclusive bound is
    /// `body_close`, i.e. body tokens are `body_open + 1 .. body_close`).
    pub body_close: usize,
    /// Whether the function sits inside a `#[cfg(test)]` / `#[test]`
    /// region (rule passes skip these).
    pub in_test: bool,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Every `fn` with a body, in source order (nested fns included).
    pub functions: Vec<Function>,
    /// Per-token flag: true when the token is inside a test region.
    pub test_mask: Vec<bool>,
}

/// Parses the token stream into functions and test regions.
pub fn parse(toks: &[Token]) -> Parsed {
    let mut test_mask = vec![false; toks.len()];
    for (lo, hi) in test_regions(toks) {
        for slot in test_mask.iter_mut().take(hi.min(toks.len())).skip(lo) {
            *slot = true;
        }
    }

    let impls = impl_spans(toks);
    let mut functions = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let Some(open) = find_body_open(toks, i + 2) else {
            continue; // trait method signature without a body
        };
        let close = match_open(toks, open).unwrap_or(toks.len().saturating_sub(1));
        let impl_type = impls
            .iter()
            .find(|(_, lo, hi)| i > *lo && i < *hi)
            .map(|(ty, _, _)| ty.clone());
        let qual_name = match &impl_type {
            Some(ty) => format!("{ty}::{}", name_tok.text),
            None => name_tok.text.clone(),
        };
        functions.push(Function {
            name: name_tok.text.clone(),
            qual_name,
            line: toks[i].line,
            body_open: open,
            body_close: close,
            in_test: test_mask.get(i).copied().unwrap_or(false),
        });
    }
    Parsed {
        functions,
        test_mask,
    }
}

/// `impl` blocks as `(type_name, body_open, body_close)`.
///
/// For `impl Trait for Type` the *type* name is used; generics are
/// skipped. Nested impls (rare) resolve to the innermost enclosing one
/// because later spans are pushed after earlier ones and `parse` takes
/// the first match in push order only when spans do not nest — good
/// enough for this workspace, which has no nested impls.
fn impl_spans(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let Some(open) = find_body_open(toks, i + 1) else {
            i += 1;
            continue;
        };
        let close = match_open(toks, open).unwrap_or(toks.len().saturating_sub(1));
        // Name: the ident after a top-level `for` if present, else the
        // first ident after the (skipped) generic parameter list.
        let header = &toks[i + 1..open];
        let mut name = None;
        if let Some(fpos) = header.iter().position(|t| t.is_ident("for")) {
            name = header[fpos + 1..]
                .iter()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
        } else {
            let mut depth = 0i32;
            for t in header {
                match t.kind {
                    TokKind::Punct if t.is_punct('<') => depth += 1,
                    TokKind::Punct if t.is_punct('>') => depth -= 1,
                    TokKind::Ident if depth == 0 => {
                        name = Some(t.text.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
        if let Some(name) = name {
            out.push((name, open, close));
        }
        i = open + 1; // descend so nested items are still scanned
    }
    out
}

/// Token index ranges covered by `#[cfg(test)]` / `#[test]` items.
pub fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = match_open(toks, i + 1) else {
            break;
        };
        let group = &toks[i + 2..close];
        let is_test =
            group.iter().any(|t| t.is_ident("test")) && !group.iter().any(|t| t.is_ident("not"));
        if is_test {
            // Skip any further attributes before the item.
            let mut j = close + 1;
            while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
                match match_open(toks, j + 1) {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            if let Some(open) = find_body_open(toks, j) {
                let end = match_open(toks, open).unwrap_or(toks.len());
                out.push((i, end + 1));
                i = end + 1;
                continue;
            }
        }
        i = close + 1;
    }
    out
}

/// Finds the item-body `{` after a signature, skipping parens/brackets;
/// returns `None` if a top-level `;` arrives first (no body).
pub fn find_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(j),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Given an opening `(`/`[`/`{` at `open`, returns its matching closer.
pub fn match_open(toks: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match toks.get(open).map(|t| t.text.as_str()) {
        Some("(") => ('(', ')'),
        Some("[") => ('[', ']'),
        Some("{") => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Given a closing `)`/`]`/`}` at `close`, returns its matching opener.
pub fn match_close(toks: &[Token], close: usize) -> Option<usize> {
    let (o, c) = match toks.get(close).map(|t| t.text.as_str()) {
        Some(")") => ('(', ')'),
        Some("]") => ('[', ']'),
        Some("}") => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        let t = &toks[j];
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds a `;` between `from` and `to` at zero relative bracket depth.
pub fn top_level_semi(toks: &[Token], from: usize, to: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(to).skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// True if `toks[i]` is the single punctuation character `c`.
pub fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// True if the token before `i` ends an expression (making a following
/// `[` an index and a following `+`/`*` a binary operator).
pub fn prev_ends_expr(toks: &[Token], i: usize) -> bool {
    let Some(p) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
        return false;
    };
    match p.kind {
        TokKind::Num | TokKind::Str => true,
        TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
        TokKind::Punct => matches!(p.text.as_str(), ")" | "]" | "?"),
        TokKind::Lifetime => false,
    }
}

/// Rust keywords (identifiers that never end an expression).
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// The start index of the postfix expression ending at `end` (inclusive),
/// i.e. the receiver of an operator or method at `end + 1`. Walks back
/// over ident/field chains, `::` paths, index/call groups, and `?`.
pub fn postfix_expr_start(toks: &[Token], end: usize) -> usize {
    let mut i = end;
    loop {
        let Some(t) = toks.get(i) else {
            return i + 1;
        };
        match t.kind {
            TokKind::Punct if matches!(t.text.as_str(), ")" | "]") => {
                match match_close(toks, i) {
                    Some(open) if open > 0 => i = open - 1,
                    Some(_) => return 0,
                    None => return i + 1,
                }
            }
            TokKind::Punct if t.is_punct('?') => {
                if i == 0 {
                    return 0;
                }
                i -= 1;
            }
            TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) => {
                // Continue through `.` or `::` chains.
                if i >= 1 && punct_at(toks, i - 1, '.') {
                    if i == 1 {
                        return 0;
                    }
                    i -= 2;
                } else if i >= 2 && punct_at(toks, i - 1, ':') && punct_at(toks, i - 2, ':') {
                    if i == 2 {
                        return 0;
                    }
                    i -= 3;
                } else {
                    return i;
                }
            }
            TokKind::Num | TokKind::Str => return i,
            _ => return i + 1,
        }
    }
}

/// The canonical receiver chain of a method call whose method-name ident
/// sits at `method_idx` (i.e. `toks[method_idx - 1]` is `.`). Index and
/// call groups collapse to `[]`/`()`: `self.shared.cache[i].lock` →
/// `self.shared.cache[]`. Returns `None` when `method_idx` is not a
/// `.`-method position.
pub fn receiver_chain(toks: &[Token], method_idx: usize) -> Option<String> {
    if method_idx < 2 || !punct_at(toks, method_idx - 1, '.') {
        return None;
    }
    let end = method_idx - 2;
    let start = postfix_expr_start(toks, end);
    if start > end {
        return None;
    }
    let mut parts: Vec<String> = Vec::new();
    let mut i = start;
    while i <= end {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident | TokKind::Num => parts.push(t.text.clone()),
            TokKind::Punct if t.is_punct('(') => {
                let close = match_open(toks, i).unwrap_or(end);
                parts.push("()".to_string());
                i = close;
            }
            TokKind::Punct if t.is_punct('[') => {
                let close = match_open(toks, i).unwrap_or(end);
                parts.push("[]".to_string());
                i = close;
            }
            TokKind::Punct if t.is_punct('.') => parts.push(".".to_string()),
            // Both colons of `::` fold into one separator.
            TokKind::Punct if t.is_punct(':') && parts.last().map(String::as_str) != Some("::") => {
                parts.push("::".to_string());
            }
            _ => {}
        }
        i += 1;
    }
    let mut chain = String::new();
    for p in parts {
        match p.as_str() {
            "()" | "[]" => chain.push_str(&p),
            "." | "::" => chain.push_str(&p),
            _ => chain.push_str(&p),
        }
    }
    if chain.is_empty() {
        None
    } else {
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_with_impl_qualification() {
        let src = "impl SimNet { fn rpc(&self) { } }\nfn free() { }\nimpl Display for Node { fn fmt(&self) { } }";
        let l = lex(src);
        let p = parse(&l.tokens);
        let names: Vec<&str> = p.functions.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, vec!["SimNet::rpc", "free", "Node::fmt"]);
    }

    #[test]
    fn test_regions_flag_functions() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}";
        let l = lex(src);
        let p = parse(&l.tokens);
        assert!(p.functions.iter().find(|f| f.name == "helper").unwrap().in_test);
        assert!(!p.functions.iter().find(|f| f.name == "real").unwrap().in_test);
    }

    #[test]
    fn receiver_chains_collapse_groups() {
        let src = "fn f(&self) { self.shared.cache[i + 1].lock(); results.lock(); x().y.lock(); }";
        let l = lex(src);
        let locks: Vec<String> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("lock"))
            .filter_map(|(i, _)| receiver_chain(&l.tokens, i))
            .collect();
        assert_eq!(locks, vec!["self.shared.cache[]", "results", "x().y"]);
    }

    #[test]
    fn postfix_walks_back_through_calls_and_try() {
        let src = "let n = r.get_u64()? as usize;";
        let l = lex(src);
        let as_idx = l.tokens.iter().position(|t| t.is_ident("as")).unwrap();
        let start = postfix_expr_start(&l.tokens, as_idx - 1);
        assert!(l.tokens[start].is_ident("r"), "{:?}", l.tokens[start]);
    }

    #[test]
    fn generic_impl_name_skips_generics() {
        let src = "impl<T: Clone> Wrapper<T> { fn go(&self) {} }";
        let l = lex(src);
        let p = parse(&l.tokens);
        assert_eq!(p.functions[0].qual_name, "Wrapper::go");
    }
}
