//! Hygiene rule pack: swallowed `Result`s, telemetry span balance, and
//! stale `lint:allow` suppressions.
//!
//! These rules police the *operational* health of the tree rather than
//! memory safety: a silently dropped RPC error hides replica divergence,
//! an unbalanced telemetry span corrupts the trace journal, and a
//! `lint:allow` that no longer suppresses anything is a hole waiting for
//! a future regression to crawl through.

use crate::lexer::{Allow, TokKind, Token};
use crate::parser::{match_open, parse, punct_at};
use crate::rules::{Diagnostic, RULE_SPAN_BALANCE, RULE_STALE_ALLOW, RULE_SWALLOWED};

/// Fallible calls whose `Result` must not be discarded via `let _ =`.
/// Decode and cluster entry points: a swallowed error here silently
/// drops data or hides replica divergence.
const FALLIBLE: &[&str] = &[
    "rpc",
    "decompress",
    "flush",
    "write_all",
    "persist",
    "replicate",
    "apply_wal",
];
/// Prefixes treated like [`FALLIBLE`] members (`decode_header`, ...).
const FALLIBLE_PREFIXES: &[&str] = &["decode", "read_block", "load_"];

/// Runs the per-file hygiene rules (swallowed-result, span-balance).
pub fn check(file: &str, toks: &[Token]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let parsed = parse(toks);
    for func in &parsed.functions {
        if func.in_test {
            continue;
        }
        check_swallowed(file, toks, func.body_open, func.body_close, &mut diags);
        check_span_balance(file, toks, func, &mut diags);
    }
    diags
}

fn is_fallible(name: &str) -> bool {
    FALLIBLE.contains(&name) || FALLIBLE_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// `let _ = <expr containing a fallible call>;` — the error is gone.
fn check_swallowed(file: &str, toks: &[Token], lo: usize, hi: usize, diags: &mut Vec<Diagnostic>) {
    let mut i = lo;
    while i + 2 < hi {
        if !(toks[i].is_ident("let") && toks[i + 1].text == "_" && punct_at(toks, i + 2, '=')) {
            i += 1;
            continue;
        }
        // Exactly `let _ =`: `let _x =` keeps the value alive (a
        // deliberate binding), and `==` is not an assignment.
        if punct_at(toks, i + 3, '=') {
            i += 1;
            continue;
        }
        let end = statement_end(toks, i + 3, hi);
        for j in i + 3..end {
            let t = &toks[j];
            if t.kind == TokKind::Ident && is_fallible(&t.text) && punct_at(toks, j + 1, '(') {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: toks[i].line,
                    rule: RULE_SWALLOWED,
                    message: format!(
                        "`let _ =` discards the Result of `{}()`; handle the error or add a reasoned lint:allow",
                        t.text
                    ),
                });
                break;
            }
        }
        i = end + 1;
    }
}

/// First `;` at zero relative depth in `[from, hi)`.
fn statement_end(toks: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(hi).skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return j,
            _ => {}
        }
    }
    hi
}

/// Telemetry span discipline inside one function:
/// manual `record_span_begin`/`record_span_end` counts must match, and a
/// `span(...)` RAII guard must be bound to a named variable (a discarded
/// guard closes the span immediately, recording a zero-length trace).
fn check_span_balance(
    file: &str,
    toks: &[Token],
    func: &crate::parser::Function,
    diags: &mut Vec<Diagnostic>,
) {
    let (mut begins, mut ends) = (0u32, 0u32);
    for i in func.body_open + 1..func.body_close {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !punct_at(toks, i + 1, '(') {
            continue;
        }
        match t.text.as_str() {
            "record_span_begin" => begins += 1,
            "record_span_end" => ends += 1,
            "span" => check_discarded_guard(file, toks, func.body_open, i, diags),
            _ => {}
        }
    }
    // Only mixed usage is diagnosable: a function with only begins (or
    // only ends) is usually one half of an RAII pair, like
    // `telemetry::span` itself and `Span::drop`.
    if begins > 0 && ends > 0 && begins != ends {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: func.line,
            rule: RULE_SPAN_BALANCE,
            message: format!(
                "`{}` records {begins} span begin(s) but {ends} end(s); unbalanced spans corrupt the trace journal",
                func.qual_name
            ),
        });
    }
}

/// Is the `span(...)` call at `i` a discarded RAII guard?
fn check_discarded_guard(
    file: &str,
    toks: &[Token],
    body_open: usize,
    i: usize,
    diags: &mut Vec<Diagnostic>,
) {
    // Find the statement start and make sure the call is not nested
    // inside another expression (then its value is used).
    let mut b = i;
    let mut depth = 0i32;
    while b > body_open + 1 {
        let t = &toks[b - 1];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        return; // nested: `f(ctx.span("x"))` uses the value
                    }
                    depth -= 1;
                }
                ";" | "{" | "}" if depth == 0 => break,
                _ => {}
            }
        }
        b -= 1;
    }
    let discarded = if toks.get(b).is_some_and(|t| t.is_ident("let")) {
        // `let _ = span(..)` discards; `let _g = span(..)` holds.
        let mut k = b + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        toks.get(k).is_some_and(|t| t.text == "_")
    } else {
        // Bare `telemetry::span("x");` — guard dropped at the `;`.
        match_open(toks, i + 1).is_some_and(|close| punct_at(toks, close + 1, ';'))
    };
    if discarded {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: toks[i].line,
            rule: RULE_SPAN_BALANCE,
            message: "span guard discarded immediately (`let _ =` or bare statement); bind it (`let _span = ...`) so the span covers the work".to_string(),
        });
    }
}

/// Global stale-suppression pass: a `lint:allow(rule)` that suppresses
/// no raw diagnostic on its line or the next is dead and must go.
/// `raw` must be the *pre-suppression* diagnostics for `file`.
pub fn stale_allows(file: &str, allows: &[Allow], raw: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for a in allows {
        for rule in &a.rules {
            let used = raw
                .iter()
                .any(|d| d.rule == rule.as_str() && (d.line == a.line || d.line == a.line + 1));
            if !used {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: a.line,
                    rule: RULE_STALE_ALLOW,
                    message: format!(
                        "lint:allow({rule}) suppresses nothing here; delete the stale hatch"
                    ),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        check("t.rs", &l.tokens)
    }

    #[test]
    fn swallowed_rpc_fires() {
        let d = run("fn f(&self) { let _ = self.net.rpc(peer, msg); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_SWALLOWED);
    }

    #[test]
    fn swallowed_decode_prefix_fires() {
        let d = run("fn f(b: &[u8]) { let _ = decode_header(b); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn named_binding_and_infallible_pass() {
        assert!(run("fn f(&self) { let _ack = self.net.rpc(peer, msg); }").is_empty());
        assert!(run("fn f(v: &Vec<u8>) { let _ = v.len(); }").is_empty());
    }

    #[test]
    fn handled_result_passes() {
        assert!(run("fn f(&self) -> Result<Ack> { self.net.rpc(peer, msg) }").is_empty());
        assert!(run("fn f(&self) { if let Err(e) = self.net.rpc(p, m) { log(e); } }").is_empty());
    }

    #[test]
    fn unbalanced_manual_spans_fire() {
        // Two begins, one end: one span leaks open.
        let d = run("fn f(j: &J) { j.record_span_begin(a, t); j.record_span_begin(b, t); work(); j.record_span_end(a, t2); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_SPAN_BALANCE);
        assert!(d[0].message.contains("2 span begin"), "{}", d[0].message);
    }

    #[test]
    fn balanced_manual_spans_pass() {
        let src = "fn f(j: &J) { j.record_span_begin(id, t); work(); j.record_span_end(id, t2); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn raii_halves_are_exempt() {
        // `span()` only begins; `Drop` only ends — neither is an error.
        assert!(run("fn span(&self, id: u64) { self.j.record_span_begin(id, now()); }").is_empty());
        assert!(run("fn drop(&mut self) { self.j.record_span_end(self.id, now()); }").is_empty());
    }

    #[test]
    fn discarded_span_guard_fires() {
        let a = run("fn f() { let _ = telemetry::span(\"q\"); work(); }");
        assert_eq!(a.len(), 1, "{a:?}");
        let b = run("fn f() { telemetry::span(\"q\"); work(); }");
        assert_eq!(b.len(), 1, "{b:?}");
    }

    #[test]
    fn bound_span_guard_passes() {
        assert!(run("fn f() { let _span = telemetry::span(\"q\"); work(); }").is_empty());
        // Nested use (value consumed by another call) is fine.
        assert!(run("fn f() { keep(telemetry::span(\"q\")); }").is_empty());
        // Tail expression returns the guard to the caller.
        assert!(run("fn f(ctx: &Ctx) -> Span { ctx.span(\"q\") }").is_empty());
    }

    #[test]
    fn test_functions_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(&self) { let _ = self.net.rpc(p, m); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn stale_allow_detection() {
        use crate::rules::RULE_PANIC;
        let l = lex("fn f(x: Option<u8>) {\n    // lint:allow(no-panic-in-decode) — reason\n    x.unwrap_or(0);\n}");
        // No panic diag on lines 2-3 → the allow is stale.
        let d = stale_allows("t.rs", &l.allows, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_STALE_ALLOW);

        // With a matching raw diag it is live.
        let raw = vec![Diagnostic {
            file: "t.rs".to_string(),
            line: 3,
            rule: RULE_PANIC,
            message: String::new(),
        }];
        assert!(stale_allows("t.rs", &l.allows, &raw).is_empty());
    }
}
