//! SARIF 2.1.0 export.
//!
//! SARIF (Static Analysis Results Interchange Format) is what code
//! hosts and IDE problem panes ingest; emitting it lets CI attach the
//! lint run as a first-class artifact next to the `--json` dump. The
//! writer covers the minimal profile most ingesters require: one run,
//! one tool driver with a rule table, and one result per diagnostic
//! with a physical location.

use crate::rules::{Diagnostic, ALL_RULES};

/// Renders diagnostics as a SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(concat!(
        "{\n",
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
        "  \"version\": \"2.1.0\",\n",
        "  \"runs\": [{\n",
        "    \"tool\": {\"driver\": {\n",
        "      \"name\": \"loggrep-lint\",\n",
    ));
    out.push_str(&format!(
        "      \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("      \"rules\": [");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"id\": \"{rule}\"}}"));
    }
    out.push_str("]\n    }},\n    \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "\n      {{\"ruleId\": \"{rule}\", \"level\": \"error\",",
                " \"message\": {{\"text\": \"{msg}\"}},",
                " \"locations\": [{{\"physicalLocation\": {{",
                "\"artifactLocation\": {{\"uri\": \"{uri}\"}},",
                " \"region\": {{\"startLine\": {line}}}}}}}]}}"
            ),
            rule = d.rule,
            msg = crate::escape(&d.message),
            uri = crate::escape(&d.file),
            line = d.line.max(1),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_PANIC;
    use telemetry::json;

    #[test]
    fn sarif_parses_and_carries_results() {
        let diags = vec![Diagnostic {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: RULE_PANIC,
            message: "a \"quoted\" message".to_string(),
        }];
        let v = json::parse(&to_sarif(&diags)).expect("valid json");
        assert_eq!(v.str("version"), Some("2.1.0"));
        let run = &v.get("runs").unwrap().as_arr().unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.str("name"), Some("loggrep-lint"));
        assert_eq!(
            driver.get("rules").unwrap().as_arr().unwrap().len(),
            ALL_RULES.len()
        );
        let results = run.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].str("ruleId"), Some(RULE_PANIC));
        let loc = &results[0].get("locations").unwrap().as_arr().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation").unwrap().str("uri"),
            Some("crates/x/src/lib.rs")
        );
        assert_eq!(phys.get("region").unwrap().num("startLine"), Some(7.0));
    }

    #[test]
    fn empty_run_is_valid() {
        let v = json::parse(&to_sarif(&[])).expect("valid json");
        let run = &v.get("runs").unwrap().as_arr().unwrap()[0];
        assert!(run.get("results").unwrap().as_arr().unwrap().is_empty());
    }
}
