//! Which files and functions the untrusted-input rules cover.
//!
//! The designation answers one question: *can these tokens be reached
//! with bytes this process did not produce?* Whole files whose job is
//! deserializing or querying archive bytes are covered entirely;
//! codec files are covered only in their decode-side functions (the
//! compress side consumes trusted, locally-produced input).

use crate::rules::ScopeSpec;

/// Decode-path designations, matched by workspace-relative path suffix.
pub const DESIGNATED: &[(&str, ScopeSpec)] = &[
    ("crates/loggrep/src/wire.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/boxfile.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/capsule.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/vector.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/pattern.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/query/exec.rs", ScopeSpec::WholeFile),
    ("crates/loggrep/src/query/session.rs", ScopeSpec::WholeFile),
    ("crates/cli/src/lib.rs", ScopeSpec::WholeFile),
    ("crates/strsearch/src/fixed.rs", ScopeSpec::WholeFile),
    (
        "crates/codec/src/lib.rs",
        ScopeSpec::Functions(&["decompress", "decompress_into", "decompress_tracked"]),
    ),
    (
        "crates/codec/src/deflate.rs",
        ScopeSpec::Functions(&["decompress", "decompress_into", "read_len_table"]),
    ),
    (
        "crates/codec/src/fastlz.rs",
        ScopeSpec::Functions(&["decompress", "decompress_into", "get_ext_len"]),
    ),
    (
        "crates/codec/src/lzma_lite.rs",
        ScopeSpec::Functions(&["decompress", "decompress_into"]),
    ),
    (
        "crates/codec/src/cm1.rs",
        ScopeSpec::Functions(&["decompress", "decompress_into"]),
    ),
    ("crates/codec/src/huffman.rs", ScopeSpec::Functions(&["from_lengths", "decode"])),
    ("crates/codec/src/bitio.rs", ScopeSpec::Functions(&["read_bit", "read_bits", "refill", "align_byte"])),
    (
        "crates/codec/src/rangecoder.rs",
        ScopeSpec::Functions(&["new", "next_byte", "decode_bit", "decode_direct", "decode"]),
    ),
    ("crates/codec/src/varint.rs", ScopeSpec::Functions(&["get_uvarint"])),
    ("crates/codec/src/lz77.rs", ScopeSpec::Functions(&["expand_into"])),
];

/// The scope designated for `rel` (forward-slash relative path), if any.
pub fn scope_for(rel: &str) -> Option<ScopeSpec> {
    DESIGNATED
        .iter()
        .find(|(suffix, _)| rel == *suffix || rel.ends_with(&format!("/{suffix}")))
        .map(|(_, scope)| *scope)
}
