//! Incremental analysis cache (`target/lint-cache.json`).
//!
//! A warm run re-analyzes only files whose content hash changed; for
//! unchanged files the cached *raw* (pre-suppression) diagnostics,
//! `lint:allow` list, and per-function lock summaries are reloaded.
//! The global passes — lock-order cycle detection, suppression, and
//! stale-allow — are recomputed from that data on every run, so a warm
//! run can still see a cross-file deadlock introduced by the one file
//! that did change.
//!
//! Hashes are FNV-1a over the file contents, stored as hex *strings*:
//! the in-tree JSON reader ([`telemetry::json`]) parses numbers as
//! `f64`, which cannot hold a 64-bit hash exactly. Bumping
//! [`ANALYZER_VERSION`] (on any rule-semantics change) invalidates the
//! whole cache.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use telemetry::json::{self, Value};

use crate::lexer::Allow;
use crate::lockorder::{FnLockSummary, HeldCall, LockEdge};
use crate::rules::{rule_by_name, Diagnostic};
use crate::FileAnalysis;

/// Bump on any change to rule semantics or the cache schema; a mismatch
/// discards the whole cache.
pub const ANALYZER_VERSION: u32 = 2;

/// Where the cache lives under the workspace root.
pub fn path(root: &Path) -> PathBuf {
    root.join("target").join("lint-cache.json")
}

/// 64-bit FNV-1a of `src`, as a 16-digit hex string.
pub fn fnv1a_hex(src: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Loads the cache; any parse problem or version mismatch yields an
/// empty map (the run is then simply cold).
pub fn load(root: &Path) -> HashMap<String, FileAnalysis> {
    let mut out = HashMap::new();
    let Ok(text) = fs::read_to_string(path(root)) else {
        return out;
    };
    let Ok(v) = json::parse(&text) else {
        return out;
    };
    if v.str("version") != Some(ANALYZER_VERSION.to_string().as_str()) {
        return out;
    }
    let Some(Value::Obj(files)) = v.get("files") else {
        return out;
    };
    for (rel, fv) in files {
        if let Some(a) = file_from(rel, fv) {
            out.insert(rel.clone(), a);
        }
    }
    out
}

fn file_from(rel: &str, v: &Value) -> Option<FileAnalysis> {
    let hash = v.str("hash")?.to_string();
    let mut raw = Vec::new();
    for d in v.get("raw")?.as_arr()? {
        raw.push(diag_from(d)?);
    }
    let mut allows = Vec::new();
    for a in v.get("allows")?.as_arr()? {
        allows.push(allow_from(a)?);
    }
    let mut locks = Vec::new();
    for l in v.get("locks")?.as_arr()? {
        locks.push(lock_from(l)?);
    }
    Some(FileAnalysis {
        file: rel.to_string(),
        hash,
        raw,
        allows,
        locks,
        from_cache: true,
    })
}

fn diag_from(v: &Value) -> Option<Diagnostic> {
    Some(Diagnostic {
        file: v.str("file")?.to_string(),
        line: v.num("line")? as u32,
        rule: rule_by_name(v.str("rule")?)?,
        message: v.str("message")?.to_string(),
    })
}

fn allow_from(v: &Value) -> Option<Allow> {
    let mut rules = Vec::new();
    for r in v.get("rules")?.as_arr()? {
        rules.push(r.as_str()?.to_string());
    }
    Some(Allow {
        line: v.num("line")? as u32,
        rules,
        has_reason: v.get("has_reason") == Some(&Value::Bool(true)),
    })
}

fn lock_from(v: &Value) -> Option<FnLockSummary> {
    let mut s = FnLockSummary {
        qual_name: v.str("qual_name")?.to_string(),
        ..FnLockSummary::default()
    };
    for l in v.get("locks")?.as_arr()? {
        let pair = l.as_arr()?;
        s.locks.push((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_num()? as u32));
    }
    for e in v.get("edges")?.as_arr()? {
        s.edges.push(LockEdge {
            from: e.str("from")?.to_string(),
            to: e.str("to")?.to_string(),
            line: e.num("line")? as u32,
        });
    }
    for c in v.get("held_calls")?.as_arr()? {
        s.held_calls.push(HeldCall {
            lock: c.str("lock")?.to_string(),
            callee: c.str("callee")?.to_string(),
            line: c.num("line")? as u32,
        });
    }
    Some(s)
}

/// Persists the cache; failures are the caller's to ignore (a missing
/// cache only costs a cold run).
pub fn store(root: &Path, analyses: &[FileAnalysis]) -> std::io::Result<()> {
    let target = root.join("target");
    fs::create_dir_all(&target)?;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str(&format!("{{\"version\": \"{ANALYZER_VERSION}\",\n\"files\": {{"));
    for (i, a) in analyses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n\"{}\": {}", crate::escape(&a.file), file_json(a)));
    }
    out.push_str("\n}}\n");
    fs::write(path(root), out)
}

fn file_json(a: &FileAnalysis) -> String {
    let mut s = format!("{{\"hash\": \"{}\", \"raw\": [", a.hash);
    for (i, d) in a.raw.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            crate::escape(&d.file),
            d.line,
            d.rule,
            crate::escape(&d.message)
        ));
    }
    s.push_str("], \"allows\": [");
    for (i, al) in a.allows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rules: Vec<String> = al.rules.iter().map(|r| format!("\"{}\"", crate::escape(r))).collect();
        s.push_str(&format!(
            "{{\"line\": {}, \"rules\": [{}], \"has_reason\": {}}}",
            al.line,
            rules.join(","),
            al.has_reason
        ));
    }
    s.push_str("], \"locks\": [");
    for (i, f) in a.locks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let locks: Vec<String> = f
            .locks
            .iter()
            .map(|(id, line)| format!("[\"{}\", {line}]", crate::escape(id)))
            .collect();
        let edges: Vec<String> = f
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"from\": \"{}\", \"to\": \"{}\", \"line\": {}}}",
                    crate::escape(&e.from),
                    crate::escape(&e.to),
                    e.line
                )
            })
            .collect();
        let calls: Vec<String> = f
            .held_calls
            .iter()
            .map(|c| {
                format!(
                    "{{\"lock\": \"{}\", \"callee\": \"{}\", \"line\": {}}}",
                    crate::escape(&c.lock),
                    crate::escape(&c.callee),
                    c.line
                )
            })
            .collect();
        s.push_str(&format!(
            "{{\"qual_name\": \"{}\", \"locks\": [{}], \"edges\": [{}], \"held_calls\": [{}]}}",
            crate::escape(&f.qual_name),
            locks.join(","),
            edges.join(","),
            calls.join(",")
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a_hex(""), format!("{:016x}", 0xcbf2_9ce4_8422_2325u64));
        assert_ne!(fnv1a_hex("a"), fnv1a_hex("b"));
        assert_eq!(fnv1a_hex("fn main() {}"), fnv1a_hex("fn main() {}"));
    }

    #[test]
    fn cache_round_trips() {
        let dir = crate::test_dir("cache_round_trip");
        let analysis = crate::analyze_file(
            "crates/x/src/lib.rs",
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }\nfn g(&self) { let _ = rpc(p); }\n// lint:allow(swallowed-result) — test\n",
            fnv1a_hex("content"),
        );
        store(&dir, std::slice::from_ref(&analysis)).unwrap();
        let loaded = load(&dir);
        let got = loaded.get("crates/x/src/lib.rs").expect("entry");
        assert!(got.from_cache);
        assert_eq!(got.hash, analysis.hash);
        assert_eq!(got.raw.len(), analysis.raw.len());
        assert_eq!(got.allows.len(), analysis.allows.len());
        assert_eq!(got.locks.len(), analysis.locks.len());
        assert_eq!(got.locks[0].edges.len(), analysis.locks[0].edges.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_discards() {
        let dir = crate::test_dir("cache_version");
        std::fs::create_dir_all(dir.join("target")).unwrap();
        std::fs::write(
            path(&dir),
            "{\"version\": \"0\",\n\"files\": {\n\"a.rs\": {\"hash\": \"00\", \"raw\": [], \"allows\": [], \"locks\": []}\n}}\n",
        )
        .unwrap();
        assert!(load(&dir).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_is_a_cold_run() {
        let dir = crate::test_dir("cache_corrupt");
        std::fs::create_dir_all(dir.join("target")).unwrap();
        std::fs::write(path(&dir), "{not json").unwrap();
        assert!(load(&dir).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
