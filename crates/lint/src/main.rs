//! CLI driver: `cargo run -p lint [--json] [root]`.
//!
//! Exits 0 when the workspace is clean, 1 when any diagnostic fires,
//! and 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: lint [--json] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("lint: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!("lint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }
    let diags = match lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("lint: clean");
        } else {
            println!("lint: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
