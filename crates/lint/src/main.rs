//! CLI driver:
//! `cargo run -p lint [--json|--sarif] [--no-cache] [--bench-out FILE] [--max-ms N] [root]`.
//!
//! Exits 0 when the workspace is clean, 1 when any diagnostic fires,
//! and 2 on usage or I/O errors (including a blown `--max-ms` budget).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root = PathBuf::from(".");
    let mut use_cache = true;
    let mut bench_out: Option<PathBuf> = None;
    let mut max_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--sarif" => format = Format::Sarif,
            "--no-cache" => use_cache = false,
            "--bench-out" => {
                let Some(path) = args.next() else {
                    eprintln!("lint: --bench-out needs a file path");
                    return ExitCode::from(2);
                };
                bench_out = Some(PathBuf::from(path));
            }
            "--max-ms" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("lint: --max-ms needs a number");
                    return ExitCode::from(2);
                };
                max_ms = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: lint [--json|--sarif] [--no-cache] [--bench-out FILE] [--max-ms N] [workspace-root]"
                );
                println!("rules: {}", lint::rules::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("lint: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!("lint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }
    let opts = lint::Options { root, use_cache };
    let (diags, stats) = match lint::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => println!("{}", lint::to_json(&diags)),
        Format::Sarif => println!("{}", lint::sarif::to_sarif(&diags)),
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!(
                    "lint: clean ({} files, {} cached, {} ms)",
                    stats.files, stats.cache_hits, stats.wall_ms
                );
            } else {
                println!("lint: {} diagnostic(s)", diags.len());
            }
        }
    }

    if let Some(path) = bench_out {
        let bench = format!(
            "{{\n  \"bench\": \"lint\",\n  \"wall_ms\": {},\n  \"files\": {},\n  \"cache_hits\": {},\n  \"cache_hit_rate\": {:.4},\n  \"diagnostics\": {}\n}}\n",
            stats.wall_ms,
            stats.files,
            stats.cache_hits,
            stats.hit_rate(),
            diags.len()
        );
        if let Err(e) = std::fs::write(&path, bench) {
            eprintln!("lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(budget) = max_ms {
        if stats.wall_ms > budget {
            eprintln!(
                "lint: run took {} ms, over the {} ms budget",
                stats.wall_ms, budget
            );
            return ExitCode::from(2);
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
