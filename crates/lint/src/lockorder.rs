//! Concurrency rule pack: lock-order graph, lock-held-across-blocking,
//! and blocking-call-in-pool-worker.
//!
//! The cluster (PR 8) and the worker pool (PR 2) made lock discipline a
//! correctness surface: a deadlock in the decode path is as much a
//! denial-of-service as an unbounded allocation. This pass:
//!
//! 1. walks every non-test function tracking **which locks are held at
//!    each point** — `let g = x.lock()` holds until its block ends or
//!    `drop(g)`, a bare `x.lock().f()` holds for the statement;
//! 2. records an **edge A → B** whenever B is acquired while A is held
//!    (including one level of calls into other in-workspace functions
//!    that themselves lock), and reports any **cycle** in the global
//!    graph as a potential deadlock (`lock-order-cycle`) — reacquiring
//!    a held lock is the one-node cycle;
//! 3. flags **blocking calls while a lock is held** (`send` / `recv` /
//!    `rpc` / `join` / `sleep` / ..., rule `no-lock-across-blocking`);
//! 4. flags blocking calls inside closures handed to
//!    `Pool::map` / `try_map` / `map_chunks` (rule
//!    `no-blocking-in-pool-worker`) — a sleeping worker starves the
//!    bounded pool.
//!
//! Lock identity: `self.field` chains qualify by the `impl` type
//! (`SimNet.state`), `UPPER_CASE` statics are global by name, and other
//! locals are file + function qualified so unrelated locals never
//! unify.

use std::collections::{HashMap, HashSet};

use crate::lexer::{TokKind, Token};
use crate::parser::{match_open, parse, punct_at, receiver_chain, Function};
use crate::rules::{Diagnostic, RULE_LOCK_BLOCKING, RULE_LOCK_CYCLE, RULE_POOL_BLOCKING};

/// Method names that acquire a lock when called with no arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
/// Calls that can block indefinitely (never safe while holding a lock).
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "rpc",
    "join",
    "wait",
    "wait_timeout",
    "sleep",
    "accept",
    "connect",
];
/// Common method names never resolved as in-workspace callees (they are
/// std vocabulary; resolving them by bare name would mis-link).
const CALLEE_STOPLIST: &[&str] = &[
    "new", "default", "len", "is_empty", "push", "pop", "get", "get_mut", "insert", "remove",
    "clone", "next", "clear", "drain", "iter", "iter_mut", "fmt", "drop", "eq", "hash", "from",
    "into", "as_ref", "as_str", "to_string", "unwrap_or_else", "map", "and_then", "ok", "err",
    "expect", "unwrap", "min", "max", "take", "replace", "retain", "extend", "append", "contains",
    "sort", "last", "first", "with_capacity", "capacity", "resize", "truncate", "split_off",
    "record", "add", "set",
];

/// One `A held while B acquired` observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// A call made while a lock is held (candidate interprocedural edge).
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// The held lock.
    pub lock: String,
    /// Bare callee name (`publish_health`).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Per-function lock summary (serialized into the incremental cache).
#[derive(Debug, Clone, Default)]
pub struct FnLockSummary {
    /// `Type::name`-qualified function name.
    pub qual_name: String,
    /// Direct acquisitions `(lock id, line)`, in order.
    pub locks: Vec<(String, u32)>,
    /// Nested-acquisition edges observed inside this function.
    pub edges: Vec<LockEdge>,
    /// Calls made while holding a lock.
    pub held_calls: Vec<HeldCall>,
}

/// Lock analysis of one file: summaries for the global pass plus the
/// file-local diagnostics.
#[derive(Debug, Default)]
pub struct FileLockInfo {
    /// Workspace-relative path.
    pub file: String,
    /// Per-function summaries (functions that touch locks only).
    pub fns: Vec<FnLockSummary>,
    /// File-local diagnostics (blocking-while-held, pool-worker).
    pub diags: Vec<Diagnostic>,
}

/// A lock currently held during the body walk.
struct Guard {
    /// Binding name; `None` for statement temporaries.
    var: Option<String>,
    lock: String,
    /// Brace depth at the binding (released when the block closes).
    depth: i32,
    /// `true` for statement temporaries released at the next `;`.
    stmt_temp: bool,
}

/// Analyzes one file's functions.
pub fn analyze(file: &str, toks: &[Token]) -> FileLockInfo {
    let parsed = parse(toks);
    let mut info = FileLockInfo {
        file: file.to_string(),
        ..FileLockInfo::default()
    };
    for func in &parsed.functions {
        if func.in_test {
            continue;
        }
        let summary = walk_function(file, toks, func, &mut info.diags);
        if !summary.locks.is_empty() || !summary.edges.is_empty() {
            info.fns.push(summary);
        }
        check_pool_workers(file, toks, func, &mut info.diags);
    }
    info
}

/// The impl-type prefix of a qualified name (`SimNet::rpc` → `SimNet`).
fn impl_type(qual_name: &str) -> Option<&str> {
    qual_name.split_once("::").map(|(ty, _)| ty)
}

/// Canonical lock identity for a receiver chain seen inside `func`.
fn lock_id(file: &str, func: &Function, chain: &str) -> String {
    if let Some(rest) = chain.strip_prefix("self.") {
        match impl_type(&func.qual_name) {
            Some(ty) => return format!("{ty}.{rest}"),
            None => return format!("{file}:{rest}"),
        }
    }
    let is_static = !chain.is_empty()
        && chain
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    if is_static {
        // Statics unify by name across the file; prefix with the file so
        // two crates' `LOCK` statics stay distinct.
        return format!("{file}:{chain}");
    }
    format!("{file}:{}:{chain}", func.qual_name)
}

/// Walks one function body tracking held locks.
fn walk_function(
    file: &str,
    toks: &[Token],
    func: &Function,
    diags: &mut Vec<Diagnostic>,
) -> FnLockSummary {
    let mut summary = FnLockSummary {
        qual_name: func.qual_name.clone(),
        ..FnLockSummary::default()
    };
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = func.body_open + 1;
    while i < func.body_close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.is_punct('{') => depth += 1,
            TokKind::Punct if t.is_punct('}') => {
                depth -= 1;
                // A statement temporary surviving to a `}` at its own
                // depth is a `for`/`match` header temporary; it dies with
                // the construct's block.
                held.retain(|g| g.depth <= depth && !(g.stmt_temp && g.depth == depth));
            }
            TokKind::Punct if t.is_punct(';') => {
                held.retain(|g| !(g.stmt_temp && g.depth == depth));
            }
            TokKind::Ident
                if LOCK_METHODS.contains(&t.text.as_str())
                    && punct_at(toks, i.wrapping_sub(1), '.')
                    && punct_at(toks, i + 1, '(')
                    && punct_at(toks, i + 2, ')') =>
            {
                if let Some(chain) = receiver_chain(toks, i) {
                    let lock = lock_id(file, func, &chain);
                    for g in &held {
                        if g.lock == lock {
                            diags.push(Diagnostic {
                                file: file.to_string(),
                                line: t.line,
                                rule: RULE_LOCK_CYCLE,
                                message: format!(
                                    "`{chain}` reacquired while already held in {} — self-deadlock on a non-reentrant lock",
                                    func.qual_name
                                ),
                            });
                        } else {
                            summary.edges.push(LockEdge {
                                from: g.lock.clone(),
                                to: lock.clone(),
                                line: t.line,
                            });
                        }
                    }
                    summary.locks.push((lock.clone(), t.line));
                    let (var, stmt_temp) = if guard_is_consumed(toks, i + 1) {
                        // `m.lock().iter().collect()` — the guard is a
                        // chain temporary; the binding (if any) holds the
                        // collected value, not the lock.
                        (None, true)
                    } else {
                        binding_of(toks, func, i)
                    };
                    held.push(Guard {
                        var,
                        lock,
                        depth,
                        stmt_temp,
                    });
                }
            }
            // `drop(g)` / `mem::drop(g)` releases the named guard.
            TokKind::Ident if t.text == "drop" && punct_at(toks, i + 1, '(') => {
                if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                    if punct_at(toks, i + 3, ')') {
                        held.retain(|g| g.var.as_deref() != Some(name.text.as_str()));
                    }
                }
            }
            // Any other call while a lock is held: candidate
            // interprocedural edge + blocking check.
            TokKind::Ident
                if !held.is_empty()
                    && punct_at(toks, i + 1, '(')
                    && !LOCK_METHODS.contains(&t.text.as_str())
                    && !crate::parser::KEYWORDS.contains(&t.text.as_str()) =>
            {
                let name = t.text.as_str();
                if BLOCKING.contains(&name) {
                    let locks: Vec<&str> = held.iter().map(|g| g.lock.as_str()).collect();
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        rule: RULE_LOCK_BLOCKING,
                        message: format!(
                            "`{name}()` called while holding {} — a blocked holder stalls every other thread; drop the guard first",
                            locks.join(", ")
                        ),
                    });
                } else if !CALLEE_STOPLIST.contains(&name) && resolvable_call(toks, i) {
                    for g in &held {
                        summary.held_calls.push(HeldCall {
                            lock: g.lock.clone(),
                            callee: name.to_string(),
                            line: t.line,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    summary
}

/// Methods through which the lock guard itself flows (poison handling).
const GUARD_PRESERVING: &[&str] = &["unwrap", "unwrap_or_else", "expect"];

/// True when the chain continues past `m.lock()` (and any poison
/// handling) with a consuming method: the guard is then a statement
/// temporary, whatever the surrounding `let` binds.
fn guard_is_consumed(toks: &[Token], open_paren: usize) -> bool {
    let Some(mut c) = match_open(toks, open_paren) else {
        return false;
    };
    loop {
        if punct_at(toks, c + 1, '?') {
            c += 1;
            continue;
        }
        if punct_at(toks, c + 1, '.')
            && toks
                .get(c + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && GUARD_PRESERVING.contains(&t.text.as_str()))
            && punct_at(toks, c + 3, '(')
        {
            match match_open(toks, c + 3) {
                Some(n) => c = n,
                None => return false,
            }
            continue;
        }
        return punct_at(toks, c + 1, '.');
    }
}

/// Only calls we can plausibly resolve to an in-workspace function are
/// recorded as interprocedural candidates: free/path calls, and
/// `self.helper()` methods. `guard.reset()`-style method calls on other
/// receivers share bare names with unrelated types far too often.
fn resolvable_call(toks: &[Token], call_idx: usize) -> bool {
    if !punct_at(toks, call_idx.wrapping_sub(1), '.') {
        return true; // free or path call
    }
    receiver_chain(toks, call_idx).is_some_and(|c| c == "self" || c.starts_with("self."))
}

/// Is the acquisition at `method_idx` bound by `let <name> =`?
/// Returns `(Some(name), false)` for real bindings, `(None, true)` for
/// statement temporaries (including the `let _ =` footgun, whose guard
/// drops immediately).
fn binding_of(toks: &[Token], func: &Function, method_idx: usize) -> (Option<String>, bool) {
    // Scan back to the statement boundary.
    let mut j = method_idx;
    while j > func.body_open + 1 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        j -= 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return (None, true);
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    match toks.get(k) {
        Some(t) if t.kind == TokKind::Ident && t.text != "_" => (Some(t.text.clone()), false),
        Some(t) if t.is_punct('_') || t.text == "_" => (None, true),
        _ => (None, true),
    }
}

/// Flags blocking calls inside closures handed to a pool's
/// `map` / `try_map` / `map_chunks`.
fn check_pool_workers(file: &str, toks: &[Token], func: &Function, diags: &mut Vec<Diagnostic>) {
    for i in func.body_open + 1..func.body_close {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "map" | "try_map" | "map_chunks")
            || !punct_at(toks, i.wrapping_sub(1), '.')
            || !punct_at(toks, i + 1, '(')
        {
            continue;
        }
        let Some(chain) = receiver_chain(toks, i) else {
            continue;
        };
        let is_pool = chain == "pool"
            || chain.ends_with(".pool")
            || chain.starts_with("Pool::")
            || chain == "self.pool";
        if !is_pool {
            continue;
        }
        let Some(close) = match_open(toks, i + 1) else {
            continue;
        };
        for j in i + 2..close {
            let c = &toks[j];
            if c.kind == TokKind::Ident
                && BLOCKING.contains(&c.text.as_str())
                && punct_at(toks, j + 1, '(')
            {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: c.line,
                    rule: RULE_POOL_BLOCKING,
                    message: format!(
                        "`{}()` inside a pool worker closure — a blocked worker starves the bounded pool; move the blocking call outside `{}`",
                        c.text, t.text
                    ),
                });
            }
        }
    }
}

/// The global pass: resolves one level of held-calls into interprocedural
/// edges and reports every distinct cycle in the lock-order graph.
pub fn global(infos: &[&FileLockInfo]) -> Vec<Diagnostic> {
    // Bare name → indices of summaries with that name.
    let mut by_name: HashMap<&str, Vec<(&str, &FnLockSummary)>> = HashMap::new();
    for info in infos {
        for f in &info.fns {
            let bare = f.qual_name.rsplit("::").next().unwrap_or(&f.qual_name);
            by_name.entry(bare).or_default().push((&info.file, f));
        }
    }

    // Edge map: (from, to) → representative (file, line).
    let mut edges: HashMap<(String, String), (String, u32)> = HashMap::new();
    for info in infos {
        for f in &info.fns {
            for e in &f.edges {
                edges
                    .entry((e.from.clone(), e.to.clone()))
                    .or_insert_with(|| (info.file.clone(), e.line));
            }
            for call in &f.held_calls {
                // Resolve only unique, lock-acquiring workspace functions.
                let Some(cands) = by_name.get(call.callee.as_str()) else {
                    continue;
                };
                let locking: Vec<_> = cands
                    .iter()
                    .filter(|(_, s)| !s.locks.is_empty())
                    .collect();
                if locking.len() != 1 {
                    continue;
                }
                let (_, callee) = locking[0];
                for (lock, _) in &callee.locks {
                    if *lock != call.lock {
                        edges
                            .entry((call.lock.clone(), lock.clone()))
                            .or_insert_with(|| (info.file.clone(), call.line));
                    }
                }
            }
        }
    }

    // Cycle detection: DFS with tri-color marking.
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.sort_unstable();
    let mut color: HashMap<&str, u8> = HashMap::new(); // 0 white, 1 gray, 2 black
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    let mut diags = Vec::new();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let neighbors = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < neighbors.len() {
                let n = neighbors[*next];
                *next += 1;
                match color.get(n).copied().unwrap_or(0) {
                    0 => {
                        color.insert(n, 1);
                        stack.push((n, 0));
                        path.push(n);
                    }
                    1 => {
                        // Back edge: the cycle is path[pos..] + n.
                        let pos = path.iter().position(|&p| p == n).unwrap_or(0);
                        let cycle: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        let mut key = cycle.clone();
                        key.sort();
                        if reported.insert(key) {
                            diags.push(cycle_diag(&cycle, &edges));
                        }
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Builds the deadlock diagnostic for one cycle.
fn cycle_diag(cycle: &[String], edges: &HashMap<(String, String), (String, u32)>) -> Diagnostic {
    let mut sites = Vec::new();
    for k in 0..cycle.len() {
        let from = &cycle[k];
        let to = &cycle[(k + 1) % cycle.len()];
        if let Some((file, line)) = edges.get(&(from.clone(), to.clone())) {
            sites.push(format!("{to} under {from} at {file}:{line}"));
        }
    }
    let (file, line) = cycle
        .first()
        .zip(cycle.get(1).or(cycle.first()))
        .and_then(|(a, b)| edges.get(&(a.clone(), b.clone())))
        .cloned()
        .unwrap_or_else(|| ("<graph>".to_string(), 0));
    let ring = {
        let mut r = cycle.join(" -> ");
        r.push_str(" -> ");
        r.push_str(&cycle[0]);
        r
    };
    Diagnostic {
        file,
        line,
        rule: RULE_LOCK_CYCLE,
        message: format!(
            "lock-order cycle (potential deadlock): {ring} [{}]",
            sites.join("; ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze_src(src: &str) -> FileLockInfo {
        let l = lex(src);
        analyze("t.rs", &l.tokens)
    }

    #[test]
    fn nested_guards_record_an_edge() {
        let src = "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); use_both(a, b); } }";
        let info = analyze_src(src);
        let f = &info.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.edges.len(), 1);
        assert_eq!(f.edges[0].from, "S.alpha");
        assert_eq!(f.edges[0].to, "S.beta");
    }

    #[test]
    fn opposite_orders_make_a_cycle() {
        let a = analyze_src(
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        let b = analyze_src(
            "impl S { fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        );
        let diags = global(&[&a, &b]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOCK_CYCLE);
        assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = analyze_src(
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        let b = analyze_src(
            "impl S { fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        assert!(global(&[&a, &b]).is_empty());
    }

    #[test]
    fn block_scope_releases_guard() {
        // beta is taken after alpha's block closed: no edge.
        let src = "impl S { fn f(&self) { { let a = self.alpha.lock(); touch(a); } let b = self.beta.lock(); } }";
        let info = analyze_src(src);
        assert!(info.fns[0].edges.is_empty(), "{:?}", info.fns[0].edges);
    }

    #[test]
    fn drop_releases_guard() {
        let src = "impl S { fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); } }";
        let info = analyze_src(src);
        assert!(info.fns[0].edges.is_empty());
    }

    #[test]
    fn statement_temporary_releases_at_semi() {
        let src = "impl S { fn f(&self) { self.alpha.lock().clear(); let b = self.beta.lock(); } }";
        let info = analyze_src(src);
        assert!(info.fns[0].edges.is_empty(), "{:?}", info.fns[0].edges);
    }

    #[test]
    fn reacquire_while_held_is_a_self_deadlock() {
        let src = "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); } }";
        let info = analyze_src(src);
        assert_eq!(info.diags.len(), 1);
        assert_eq!(info.diags[0].rule, RULE_LOCK_CYCLE);
    }

    #[test]
    fn interprocedural_edge_through_unique_callee() {
        let a = analyze_src(
            "impl S { fn f(&self) { let a = self.alpha.lock(); self.publish_beta(); } }",
        );
        let b = analyze_src("impl S { fn publish_beta(&self) { let b = self.beta.lock(); } }");
        // f holds alpha and calls publish_beta (locks beta) → alpha→beta;
        // with the reverse order in another fn this would cycle.
        let c = analyze_src(
            "impl S { fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        );
        let diags = global(&[&a, &b, &c]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOCK_CYCLE);
    }

    #[test]
    fn drop_before_call_avoids_interprocedural_edge() {
        let a = analyze_src(
            "impl S { fn f(&self) { let a = self.alpha.lock(); drop(a); self.publish_beta(); } }",
        );
        let b = analyze_src("impl S { fn publish_beta(&self) { let b = self.beta.lock(); } }");
        let c = analyze_src(
            "impl S { fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        );
        assert!(global(&[&a, &b, &c]).is_empty());
    }

    #[test]
    fn blocking_while_held_fires() {
        let src = "impl S { fn f(&self) { let a = self.state.lock(); self.tx.send(x); } }";
        let info = analyze_src(src);
        assert_eq!(info.diags.len(), 1);
        assert_eq!(info.diags[0].rule, RULE_LOCK_BLOCKING);
    }

    #[test]
    fn blocking_after_drop_is_clean() {
        let src = "impl S { fn f(&self) { let a = self.state.lock(); drop(a); self.tx.send(x); } }";
        let info = analyze_src(src);
        assert!(info.diags.is_empty(), "{:?}", info.diags);
    }

    #[test]
    fn pool_worker_blocking_fires_and_iterator_map_does_not() {
        let bad = "fn f(pool: &Pool) { pool.map(&items, |_, x| { sleep(d); x }); }";
        let info = analyze_src(bad);
        assert_eq!(info.diags.len(), 1);
        assert_eq!(info.diags[0].rule, RULE_POOL_BLOCKING);
        let ok = "fn f() { let v: Vec<_> = items.iter().map(|x| { sleep(d); x }).collect(); }";
        assert!(analyze_src(ok).diags.is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f(pool: &Pool) { pool.map(&i, |_, x| { sleep(d); x }); } }";
        assert!(analyze_src(src).diags.is_empty());
    }

    #[test]
    fn locals_do_not_unify_across_functions() {
        let a = analyze_src("fn f() { let a = alpha.lock(); let b = beta.lock(); }");
        let b = analyze_src("fn g() { let b = beta.lock(); let a = alpha.lock(); }");
        // Locals are fn-qualified: f's alpha ≠ g's alpha, so no cycle.
        assert!(global(&[&a, &b]).is_empty());
    }
}
