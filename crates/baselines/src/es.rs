//! MiniEs: an ElasticSearch-like inverted-index engine (the paper's
//! low-latency comparator, §6).
//!
//! The design mirrors what makes ES behave the way the paper measures:
//!
//! * **Full inverted index** — every token of every line gets postings, so
//!   the index is large and the effective "compression ratio" hovers near
//!   (or below) 1, as in Figure 7(b).
//! * **Lucene-style segments with tiered merging** — documents are flushed
//!   into immutable segments which are repeatedly merged (postings and
//!   stored fields rewritten), which is why ingestion is the slowest of all
//!   systems in Figure 7(c).
//! * **Stored fields** — raw lines kept in small compressed blocks for
//!   retrieval and verification, like Lucene's `_source`.
//!
//! Queries intersect postings per search-string token (prefix/suffix/infix
//! constraints handled by term-dictionary scans, as real wildcard queries
//! are) and verify candidates against stored lines, giving exactly the
//! shared query semantics at index-lookup speed.

use crate::system::{LogArchive, LogSystem};
use codec::{Codec, FastLz};
use loggrep::query::lang::{Element, Expr, Query, SearchString};
use loggrep::rowset::RowSet;
use loggrep::wire::{Reader, Writer};
use logparse::{Tokenizer, DEFAULT_DELIMS};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use strsearch::TokenPattern;

const MAGIC: &[u8; 4] = b"MESB";
/// Lines per stored-field block.
const STORE_BLOCK: usize = 32;

/// The MiniEs system.
#[derive(Debug)]
pub struct MiniEs {
    /// Documents per initial flush segment.
    pub flush_docs: usize,
    /// Segments of equal tier that trigger a merge.
    pub merge_factor: usize,
}

impl Default for MiniEs {
    fn default() -> Self {
        Self {
            flush_docs: 128,
            merge_factor: 2,
        }
    }
}

/// One immutable index segment.
struct Segment {
    doc_base: u32,
    doc_count: u32,
    /// Sorted term dictionary with ascending local-doc postings.
    terms: Vec<(Vec<u8>, Vec<u32>)>,
    /// Stored-field blocks (compressed), each covering [`STORE_BLOCK`] docs.
    stored: Vec<Vec<u8>>,
}

impl Segment {
    /// Builds a segment from raw lines.
    fn build(doc_base: u32, lines: &[&[u8]], tokenizer: &Tokenizer) -> Segment {
        let mut term_map: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        for (doc, line) in lines.iter().enumerate() {
            let toks = tokenizer.tokenize(line);
            for tok in toks.tokens {
                if tok.is_empty() {
                    continue;
                }
                let postings = term_map.entry(tok.to_vec()).or_default();
                if postings.last() != Some(&(doc as u32)) {
                    postings.push(doc as u32);
                }
            }
        }
        let mut terms: Vec<(Vec<u8>, Vec<u32>)> = term_map.into_iter().collect();
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        Segment {
            doc_base,
            doc_count: lines.len() as u32,
            terms,
            stored: compress_stored(lines),
        }
    }

    /// Merges consecutive segments into one (the expensive rewrite).
    fn merge(parts: &[Segment]) -> Segment {
        let doc_base = parts[0].doc_base;
        let mut doc_count = 0u32;
        // K-way merge of sorted term dictionaries with doc-id rebasing.
        let mut term_map: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        let mut lines: Vec<Vec<u8>> = Vec::new();
        for part in parts {
            let rebase = part.doc_base - doc_base;
            for (term, postings) in &part.terms {
                let entry = term_map.entry(term.clone()).or_default();
                entry.extend(postings.iter().map(|d| d + rebase));
            }
            // Stored fields are decompressed and re-chunked (Lucene rewrites
            // them during merges too).
            for block in &part.stored {
                let decompressed = FastLz::default()
                    .decompress(block)
                    .expect("self-produced block");
                lines.extend(split_stored(&decompressed));
            }
            doc_count += part.doc_count;
        }
        let mut terms: Vec<(Vec<u8>, Vec<u32>)> = term_map.into_iter().collect();
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, p) in terms.iter_mut() {
            p.sort_unstable();
            p.dedup();
        }
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_slice()).collect();
        Segment {
            doc_base,
            doc_count,
            terms,
            stored: compress_stored(&refs),
        }
    }
}

fn compress_stored(lines: &[&[u8]]) -> Vec<Vec<u8>> {
    lines
        .chunks(STORE_BLOCK)
        .map(|chunk| {
            let mut buf = Vec::new();
            for l in chunk {
                buf.extend_from_slice(l);
                buf.push(b'\n');
            }
            FastLz::default().compress(&buf)
        })
        .collect()
}

fn split_stored(buf: &[u8]) -> Vec<Vec<u8>> {
    if buf.is_empty() {
        return Vec::new();
    }
    buf[..buf.len() - 1]
        .split(|&b| b == b'\n')
        .map(|l| l.to_vec())
        .collect()
}

impl LogSystem for MiniEs {
    fn name(&self) -> String {
        "ES".to_string()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        let tokenizer = Tokenizer::new(DEFAULT_DELIMS);
        let lines = loggrep::engine::split_lines(raw);
        let mut segments: Vec<Segment> = Vec::new();
        let mut doc_base = 0u32;
        for chunk in lines.chunks(self.flush_docs.max(1)) {
            segments.push(Segment::build(doc_base, chunk, &tokenizer));
            doc_base += chunk.len() as u32;
            // Tiered merge: merge the trailing run of equal-size segments.
            loop {
                let n = segments.len();
                if n < self.merge_factor {
                    break;
                }
                let tail = &segments[n - self.merge_factor..];
                let size = tail[0].doc_count;
                if !tail.iter().all(|s| s.doc_count == size) {
                    break;
                }
                let merged = Segment::merge(tail);
                segments.truncate(n - self.merge_factor);
                segments.push(merged);
            }
        }

        // Serialize: index stays uncompressed (models ES's large footprint).
        let mut w = Writer::new();
        w.put_raw(MAGIC);
        w.put_u32(lines.len() as u32);
        w.put_usize(segments.len());
        for s in &segments {
            w.put_u32(s.doc_base);
            w.put_u32(s.doc_count);
            w.put_usize(s.terms.len());
            for (term, postings) in &s.terms {
                w.put_bytes(term);
                w.put_ascending_u32s(postings);
            }
            w.put_usize(s.stored.len());
            for block in &s.stored {
                w.put_bytes(block);
            }
        }
        Ok(w.into_bytes())
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        EsArchive::parse(bytes).map(|a| Box::new(a) as Box<dyn LogArchive>)
    }
}

/// Per-token constraint derived from a search string's position in it.
enum TermConstraint {
    /// Term equals the bytes (middle tokens).
    Exact(Vec<u8>),
    /// Term ends with the bytes (first token of a multi-token string).
    Suffix(Vec<u8>),
    /// Term starts with the bytes (last token).
    Prefix(Vec<u8>),
    /// Wildcard fragment: term must match the compiled pattern.
    Pattern(TokenPattern),
}

impl TermConstraint {
    fn matches(&self, term: &[u8]) -> bool {
        match self {
            TermConstraint::Exact(t) => term == t,
            TermConstraint::Suffix(t) => term.ends_with(t),
            TermConstraint::Prefix(t) => term.starts_with(t),
            TermConstraint::Pattern(p) => p.matches(term),
        }
    }
}

/// Decoded lines of one stored block, shared between lookups.
type BlockLines = Rc<Vec<Vec<u8>>>;

/// An opened MiniEs index.
pub struct EsArchive {
    segments: Vec<Segment>,
    total_docs: u32,
    /// Per-query stored-block cache: (segment, block) → lines.
    stored_cache: RefCell<HashMap<(u32, u32), BlockLines>>,
}

impl EsArchive {
    fn parse(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        if r.get_raw(4).map_err(|e| e.to_string())? != MAGIC {
            return Err("es: bad magic".to_string());
        }
        let total_docs = r.get_u32().map_err(|e| e.to_string())?;
        let nseg = r.get_usize().map_err(|e| e.to_string())?;
        let mut segments = Vec::with_capacity(nseg.min(1 << 20));
        for _ in 0..nseg {
            let doc_base = r.get_u32().map_err(|e| e.to_string())?;
            let doc_count = r.get_u32().map_err(|e| e.to_string())?;
            let nterms = r.get_usize().map_err(|e| e.to_string())?;
            let mut terms = Vec::with_capacity(nterms.min(1 << 22));
            for _ in 0..nterms {
                let term = r.get_bytes().map_err(|e| e.to_string())?.to_vec();
                let postings = r.get_ascending_u32s().map_err(|e| e.to_string())?;
                terms.push((term, postings));
            }
            let nblocks = r.get_usize().map_err(|e| e.to_string())?;
            let mut stored = Vec::with_capacity(nblocks.min(1 << 22));
            for _ in 0..nblocks {
                stored.push(r.get_bytes().map_err(|e| e.to_string())?.to_vec());
            }
            segments.push(Segment {
                doc_base,
                doc_count,
                terms,
                stored,
            });
        }
        Ok(Self {
            segments,
            total_docs,
            stored_cache: RefCell::new(HashMap::new()),
        })
    }

    /// Fetches one stored line by global doc id.
    fn fetch(&self, doc: u32) -> Result<Vec<u8>, String> {
        let seg_idx = self
            .segments
            .partition_point(|s| s.doc_base + s.doc_count <= doc);
        let seg = self
            .segments
            .get(seg_idx)
            .ok_or_else(|| "es: doc out of range".to_string())?;
        let local = (doc - seg.doc_base) as usize;
        let block_id = (local / STORE_BLOCK) as u32;
        let key = (seg_idx as u32, block_id);
        let lines = {
            let cache = self.stored_cache.borrow();
            cache.get(&key).cloned()
        };
        let lines = match lines {
            Some(l) => l,
            None => {
                let block = seg
                    .stored
                    .get(block_id as usize)
                    .ok_or_else(|| "es: block out of range".to_string())?;
                let decompressed = FastLz::default()
                    .decompress(block)
                    .map_err(|e| e.to_string())?;
                let rc = Rc::new(split_stored(&decompressed));
                self.stored_cache.borrow_mut().insert(key, rc.clone());
                rc
            }
        };
        lines
            .get(local % STORE_BLOCK)
            .cloned()
            .ok_or_else(|| "es: line out of range".to_string())
    }

    /// Derives the per-token constraints of a search string.
    fn constraints(s: &SearchString) -> Vec<TermConstraint> {
        // Rebuild the text with '*' kept, then split into tokens.
        let mut text = Vec::new();
        for e in &s.elements {
            match e {
                Element::Lit(l) => text.extend_from_slice(l),
                Element::Star => text.push(b'*'),
            }
        }
        let fragments: Vec<&[u8]> = text
            .split(|b| DEFAULT_DELIMS.contains(b))
            .filter(|f| !f.is_empty())
            .collect();
        let k = fragments.len();
        let mut out = Vec::new();
        for (i, frag) in fragments.iter().enumerate() {
            let first = i == 0;
            let last = i == k - 1;
            let has_star = frag.contains(&b'*');
            // A fragment at the string edge may continue into the term, so
            // relax the corresponding anchor.
            if has_star || (first && last) {
                let mut pat = Vec::new();
                if first {
                    pat.push(b'*');
                }
                pat.extend_from_slice(frag);
                if last {
                    pat.push(b'*');
                }
                out.push(TermConstraint::Pattern(TokenPattern::compile(&pat)));
            } else if first {
                out.push(TermConstraint::Suffix(frag.to_vec()));
            } else if last {
                out.push(TermConstraint::Prefix(frag.to_vec()));
            } else {
                out.push(TermConstraint::Exact(frag.to_vec()));
            }
        }
        out
    }

    /// Docs satisfying one constraint. Exact terms use binary search and
    /// anchored prefixes a sorted range — Lucene's fast paths; suffix/infix
    /// constraints scan the term dictionary, which is exactly why
    /// leading-wildcard queries are slow on real ES too.
    fn docs_for(&self, constraint: &TermConstraint) -> RowSet {
        let mut docs: Vec<u32> = Vec::new();
        for seg in &self.segments {
            match constraint {
                TermConstraint::Exact(t) => {
                    if let Ok(at) = seg.terms.binary_search_by(|(term, _)| term.as_slice().cmp(t))
                    {
                        docs.extend(seg.terms[at].1.iter().map(|d| d + seg.doc_base));
                    }
                }
                TermConstraint::Prefix(t) => {
                    let start = seg.terms.partition_point(|(term, _)| term.as_slice() < t.as_slice());
                    for (term, postings) in &seg.terms[start..] {
                        if !term.starts_with(t) {
                            break;
                        }
                        docs.extend(postings.iter().map(|d| d + seg.doc_base));
                    }
                }
                _ => {
                    for (term, postings) in &seg.terms {
                        if constraint.matches(term) {
                            docs.extend(postings.iter().map(|d| d + seg.doc_base));
                        }
                    }
                }
            }
        }
        RowSet::from_unsorted(docs)
    }

    /// Relative evaluation cost of a constraint (cheapest first).
    fn constraint_cost(c: &TermConstraint) -> u8 {
        match c {
            TermConstraint::Exact(_) => 0,
            TermConstraint::Prefix(_) => 1,
            TermConstraint::Suffix(_) => 2,
            TermConstraint::Pattern(_) => 3,
        }
    }

    fn eval_search(&self, s: &SearchString) -> Result<RowSet, String> {
        let mut constraints = Self::constraints(s);
        // Evaluate cheap (indexed) constraints first; the early-exit on an
        // empty intersection then skips the expensive dictionary scans.
        constraints.sort_by_key(Self::constraint_cost);
        let candidates = if constraints.is_empty() {
            RowSet::all(self.total_docs)
        } else {
            let mut acc: Option<RowSet> = None;
            for c in &constraints {
                let docs = self.docs_for(c);
                acc = Some(match acc {
                    None => docs,
                    Some(prev) => prev.intersect(&docs),
                });
                if acc.as_ref().is_some_and(|a| a.is_empty()) {
                    break;
                }
            }
            acc.unwrap_or_else(RowSet::empty)
        };
        // Verify candidates against stored lines (positions/adjacency).
        let mut hits = Vec::new();
        for doc in candidates.iter() {
            let line = self.fetch(doc)?;
            if s.matches_line(&line, DEFAULT_DELIMS) {
                hits.push(doc);
            }
        }
        Ok(RowSet::from_sorted(hits))
    }

    fn eval_expr(&self, expr: &Expr) -> Result<RowSet, String> {
        match expr {
            Expr::Str(s) => self.eval_search(s),
            Expr::And(a, b) => Ok(self.eval_expr(a)?.intersect(&self.eval_expr(b)?)),
            Expr::Or(a, b) => Ok(self.eval_expr(a)?.union(&self.eval_expr(b)?)),
            Expr::Not(a, b) => Ok(self.eval_expr(a)?.subtract(&self.eval_expr(b)?)),
        }
    }

    /// Number of segments (exposed for merge-policy tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl LogArchive for EsArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        self.stored_cache.borrow_mut().clear();
        let query = Query::parse(command).map_err(|e| e.to_string())?;
        let docs = self.eval_expr(&query.expr)?;
        docs.iter().map(|d| self.fetch(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..900 {
            raw.extend_from_slice(
                format!(
                    "{} worker-{} handled /api/v{}/items status={}\n",
                    if i % 11 == 0 { "ERROR" } else { "INFO" },
                    i % 5,
                    i % 3,
                    200 + (i % 4) * 100
                )
                .as_bytes(),
            );
        }
        raw
    }

    fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
        let q = Query::parse(command).unwrap();
        loggrep::engine::split_lines(raw)
            .into_iter()
            .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
            .map(|l| l.to_vec())
            .collect()
    }

    #[test]
    fn queries_match_oracle() {
        let raw = sample();
        let sys = MiniEs {
            flush_docs: 100,
            merge_factor: 3,
        };
        let stored = sys.compress(&raw).unwrap();
        let archive = sys.open(&stored).unwrap();
        for q in [
            "ERROR",
            "worker-3",
            "status=500",
            "ERROR and worker-0",
            "INFO not status=200",
            "handled /api/v1/items",
            "worker-* and ERROR",
            "api/v2",
            "rror work", // spans token boundary mid-token: suffix+prefix
            "absent-term",
        ] {
            assert_eq!(archive.query(q).unwrap(), oracle(&raw, q), "query `{q}`");
        }
    }

    #[test]
    fn merging_caps_segment_count() {
        let raw = sample();
        let sys = MiniEs {
            flush_docs: 50,
            merge_factor: 2,
        };
        let stored = sys.compress(&raw).unwrap();
        let archive = EsArchive::parse(&stored).unwrap();
        // 900 docs at 50/flush = 18 flushes; factor-2 tiered merging leaves
        // about log2(18) segments.
        assert!(
            archive.segment_count() <= 6,
            "segments: {}",
            archive.segment_count()
        );
    }

    #[test]
    fn index_is_large() {
        // The defining ES trait in Figure 7(b): storage near raw size.
        let raw = sample();
        let stored = MiniEs::default().compress(&raw).unwrap();
        assert!(
            stored.len() * 4 > raw.len(),
            "es stored {} vs raw {}",
            stored.len(),
            raw.len()
        );
    }

    #[test]
    fn empty_block() {
        let sys = MiniEs::default();
        let stored = sys.compress(b"").unwrap();
        let archive = sys.open(&stored).unwrap();
        assert!(archive.query("x").unwrap().is_empty());
    }
}
