//! The common interface every evaluated system implements, plus the
//! LogGrep/LogGrep-SP adapters.

use loggrep::{LogGrep, LogGrepConfig};

/// A log compression + query system under evaluation.
pub trait LogSystem {
    /// Display name used in experiment tables.
    fn name(&self) -> String;

    /// Compresses one raw log block into this system's storage bytes
    /// (everything needed to answer queries: data + indexes).
    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String>;

    /// Opens stored bytes for querying.
    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String>;
}

/// An opened, queryable compressed block.
pub trait LogArchive {
    /// Executes a query command (the shared `and`/`or`/`not` language) and
    /// returns matching lines in original order.
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String>;
}

/// LogGrep (or an ablation of it) behind the common interface.
pub struct LogGrepSystem {
    engine: LogGrep,
    label: String,
}

impl LogGrepSystem {
    /// The full system.
    pub fn full() -> Self {
        Self::with_config("LogGrep", LogGrepConfig::default())
    }

    /// LogGrep-SP (static patterns only, §2.2).
    pub fn sp() -> Self {
        Self::with_config("LogGrep-SP", LogGrepConfig::sp())
    }

    /// Any configuration under a custom label (ablations).
    pub fn with_config(label: &str, config: LogGrepConfig) -> Self {
        Self {
            engine: LogGrep::new(config),
            label: label.to_string(),
        }
    }

    /// The inner engine (for stats-aware callers).
    pub fn engine(&self) -> &LogGrep {
        &self.engine
    }
}

impl LogSystem for LogGrepSystem {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        self.engine
            .compress(raw)
            .map(|b| b.to_bytes())
            .map_err(|e| e.to_string())
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        let boxed = loggrep::CapsuleBox::from_bytes(bytes).map_err(|e| e.to_string())?;
        Ok(Box::new(LogGrepArchive {
            archive: self.engine.open(boxed),
        }))
    }
}

struct LogGrepArchive {
    archive: loggrep::Archive,
}

impl LogArchive for LogGrepArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        self.archive
            .query(command)
            .map(|r| r.lines)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loggrep_adapter_roundtrip() {
        let sys = LogGrepSystem::full();
        let raw = b"alpha 1 ok\nbeta 2 err\nalpha 3 ok\n";
        let bytes = sys.compress(raw).unwrap();
        let archive = sys.open(&bytes).unwrap();
        assert_eq!(archive.query("alpha").unwrap().len(), 2);
        assert_eq!(archive.query("err").unwrap().len(), 1);
        assert_eq!(sys.name(), "LogGrep");
        assert_eq!(LogGrepSystem::sp().name(), "LogGrep-SP");
    }
}
