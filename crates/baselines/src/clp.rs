//! A reimplementation of CLP (Rodrigues et al., OSDI '21), the paper's main
//! comparator (§2.1).
//!
//! CLP parses each log entry into a *log type* (the static text with
//! variable placeholders) and variables. All-digit tokens are *encoded
//! variables* stored inline; digit-bearing mixed tokens are *dictionary
//! variables* stored once in a dictionary and referenced by id. Encoded
//! entries are appended, in order, into segments that are compressed with a
//! zstd-class codec ([`codec::FastLz`]). A segment-level inverted index maps
//! log types and dictionary values to the segments containing them; queries
//! use it to filter segments, then decompress and scan the survivors.
//!
//! The filtering granularity is the whole segment — the coarse granularity
//! whose cost §6.1 measures against LogGrep's Capsules.

use crate::system::{LogArchive, LogSystem};
use codec::{Codec, FastLz};
use loggrep::query::lang::{Expr, Query};
use loggrep::rowset::RowSet;
use loggrep::wire::{Reader, Writer};
use logparse::{Tokenizer, DEFAULT_DELIMS};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Placeholder byte for an encoded (all-digit) variable in a log type.
const ENC_MARK: u8 = 0x11;
/// Placeholder byte for a dictionary variable in a log type.
const DICT_MARK: u8 = 0x12;
/// Container magic.
const MAGIC: &[u8; 4] = b"CLPB";

/// The CLP system. `segment_lines` controls the filtering granularity.
#[derive(Debug)]
pub struct Clp {
    /// Entries per segment (CLP compresses segments independently).
    pub segment_lines: usize,
}

impl Default for Clp {
    fn default() -> Self {
        Self {
            segment_lines: 4096,
        }
    }
}

impl LogSystem for Clp {
    fn name(&self) -> String {
        "CLP".to_string()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        let tokenizer = Tokenizer::new(DEFAULT_DELIMS);
        let lines = loggrep::engine::split_lines(raw);

        let mut logtypes: Vec<Vec<u8>> = Vec::new();
        let mut logtype_ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut dict: Vec<Vec<u8>> = Vec::new();
        let mut dict_ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut logtype_segs: Vec<Vec<u32>> = Vec::new();
        let mut dict_segs: Vec<Vec<u32>> = Vec::new();

        let codec = FastLz::default();
        let mut segments: Vec<(u64, u64, u32, u32)> = Vec::new(); // offset, clen, line_start, count
        let mut blob: Vec<u8> = Vec::new();
        let mut seg_buf = Writer::new();
        let mut seg_start = 0u32;
        let mut seg_count = 0u32;

        let flush = |seg_buf: &mut Writer,
                         seg_start: &mut u32,
                         seg_count: &mut u32,
                         blob: &mut Vec<u8>,
                         segments: &mut Vec<(u64, u64, u32, u32)>| {
            if *seg_count == 0 {
                return;
            }
            let buf = std::mem::take(seg_buf).into_bytes();
            let compressed = codec.compress(&buf);
            segments.push((
                blob.len() as u64,
                compressed.len() as u64,
                *seg_start,
                *seg_count,
            ));
            blob.extend_from_slice(&compressed);
            *seg_start += *seg_count;
            *seg_count = 0;
        };

        for line in &lines {
            let seg_id = segments.len() as u32;
            let toks = tokenizer.tokenize(line);
            // Build the log type and collect variables. Lines containing the
            // reserved marker bytes (control characters, absent from text
            // logs) are stored whole as a single dictionary variable.
            let mut logtype = Vec::with_capacity(line.len());
            let mut vars: Vec<(bool, &[u8])> = Vec::new(); // (is_dict, bytes)
            if line.contains(&ENC_MARK) || line.contains(&DICT_MARK) {
                logtype.push(DICT_MARK);
                vars.push((true, line));
            } else {
            for (i, run) in toks.delim_runs.iter().enumerate() {
                logtype.extend_from_slice(run);
                if i < toks.tokens.len() {
                    let tok = toks.tokens[i];
                    if !tok.is_empty() && tok.iter().all(|b| b.is_ascii_digit()) {
                        logtype.push(ENC_MARK);
                        vars.push((false, tok));
                    } else if tok.iter().any(|b| b.is_ascii_digit()) {
                        logtype.push(DICT_MARK);
                        vars.push((true, tok));
                    } else {
                        logtype.extend_from_slice(tok);
                    }
                }
            }
            }
            let lt_id = *logtype_ids.entry(logtype.clone()).or_insert_with(|| {
                logtypes.push(logtype.clone());
                logtype_segs.push(Vec::new());
                (logtypes.len() - 1) as u32
            });
            if logtype_segs[lt_id as usize].last() != Some(&seg_id) {
                logtype_segs[lt_id as usize].push(seg_id);
            }
            seg_buf.put_u32(lt_id);
            for (is_dict, bytes) in vars {
                if is_dict {
                    let d_id = *dict_ids.entry(bytes.to_vec()).or_insert_with(|| {
                        dict.push(bytes.to_vec());
                        dict_segs.push(Vec::new());
                        (dict.len() - 1) as u32
                    });
                    if dict_segs[d_id as usize].last() != Some(&seg_id) {
                        dict_segs[d_id as usize].push(seg_id);
                    }
                    seg_buf.put_u32(d_id);
                } else {
                    seg_buf.put_bytes(bytes);
                }
            }
            seg_count += 1;
            if seg_count as usize >= self.segment_lines {
                flush(
                    &mut seg_buf,
                    &mut seg_start,
                    &mut seg_count,
                    &mut blob,
                    &mut segments,
                );
            }
        }
        flush(
            &mut seg_buf,
            &mut seg_start,
            &mut seg_count,
            &mut blob,
            &mut segments,
        );

        // Serialize: metadata (compressed) + segment table + blob.
        let mut meta = Writer::new();
        meta.put_usize(logtypes.len());
        for (lt, segs) in logtypes.iter().zip(&logtype_segs) {
            meta.put_bytes(lt);
            meta.put_ascending_u32s(segs);
        }
        meta.put_usize(dict.len());
        for (v, segs) in dict.iter().zip(&dict_segs) {
            meta.put_bytes(v);
            meta.put_ascending_u32s(segs);
        }
        let meta_compressed = codec.compress(&meta.into_bytes());

        let mut out = Writer::new();
        out.put_raw(MAGIC);
        out.put_u32(lines.len() as u32);
        out.put_bytes(&meta_compressed);
        out.put_usize(segments.len());
        for (offset, clen, line_start, count) in &segments {
            out.put_u64(*offset);
            out.put_u64(*clen);
            out.put_u32(*line_start);
            out.put_u32(*count);
        }
        out.put_bytes(&blob);
        Ok(out.into_bytes())
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        ClpArchive::parse(bytes).map(|a| Box::new(a) as Box<dyn LogArchive>)
    }
}

/// Segment descriptor.
#[derive(Debug, Clone, Copy)]
struct Segment {
    offset: u64,
    clen: u64,
    line_start: u32,
    count: u32,
}

/// An opened CLP archive.
pub struct ClpArchive {
    logtypes: Vec<Vec<u8>>,
    logtype_segs: Vec<Vec<u32>>,
    dict: Vec<Vec<u8>>,
    dict_segs: Vec<Vec<u32>>,
    segments: Vec<Segment>,
    blob: Vec<u8>,
    total_lines: u32,
    /// Per-query decode cache (segment id → decoded lines).
    decoded: RefCell<HashMap<u32, Rc<Vec<Vec<u8>>>>>,
}

impl ClpArchive {
    fn parse(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let magic = r.get_raw(4).map_err(|e| e.to_string())?;
        if magic != MAGIC {
            return Err("clp: bad magic".to_string());
        }
        let total_lines = r.get_u32().map_err(|e| e.to_string())?;
        let meta_compressed = r.get_bytes().map_err(|e| e.to_string())?;
        let meta_bytes = FastLz::default()
            .decompress(meta_compressed)
            .map_err(|e| e.to_string())?;
        let mut m = Reader::new(&meta_bytes);
        let nlt = m.get_usize().map_err(|e| e.to_string())?;
        let mut logtypes = Vec::with_capacity(nlt.min(1 << 20));
        let mut logtype_segs = Vec::with_capacity(nlt.min(1 << 20));
        for _ in 0..nlt {
            logtypes.push(m.get_bytes().map_err(|e| e.to_string())?.to_vec());
            logtype_segs.push(m.get_ascending_u32s().map_err(|e| e.to_string())?);
        }
        let nd = m.get_usize().map_err(|e| e.to_string())?;
        let mut dict = Vec::with_capacity(nd.min(1 << 20));
        let mut dict_segs = Vec::with_capacity(nd.min(1 << 20));
        for _ in 0..nd {
            dict.push(m.get_bytes().map_err(|e| e.to_string())?.to_vec());
            dict_segs.push(m.get_ascending_u32s().map_err(|e| e.to_string())?);
        }
        let nseg = r.get_usize().map_err(|e| e.to_string())?;
        let mut segments = Vec::with_capacity(nseg.min(1 << 20));
        for _ in 0..nseg {
            segments.push(Segment {
                offset: r.get_u64().map_err(|e| e.to_string())?,
                clen: r.get_u64().map_err(|e| e.to_string())?,
                line_start: r.get_u32().map_err(|e| e.to_string())?,
                count: r.get_u32().map_err(|e| e.to_string())?,
            });
        }
        let blob = r.get_bytes().map_err(|e| e.to_string())?.to_vec();
        Ok(Self {
            logtypes,
            logtype_segs,
            dict,
            dict_segs,
            segments,
            blob,
            total_lines,
            decoded: RefCell::new(HashMap::new()),
        })
    }

    /// Decodes one segment into its original lines.
    fn decode_segment(&self, seg_id: u32) -> Result<Rc<Vec<Vec<u8>>>, String> {
        if let Some(lines) = self.decoded.borrow().get(&seg_id) {
            return Ok(lines.clone());
        }
        let seg = &self.segments[seg_id as usize];
        let start = seg.offset as usize;
        let end = start + seg.clen as usize;
        let buf = FastLz::default()
            .decompress(&self.blob[start..end])
            .map_err(|e| e.to_string())?;
        let mut r = Reader::new(&buf);
        let mut lines = Vec::with_capacity(seg.count as usize);
        for _ in 0..seg.count {
            let lt_id = r.get_u32().map_err(|e| e.to_string())? as usize;
            let logtype = self
                .logtypes
                .get(lt_id)
                .ok_or_else(|| "clp: bad logtype id".to_string())?;
            let mut line = Vec::with_capacity(logtype.len() + 16);
            for &b in logtype {
                match b {
                    ENC_MARK => {
                        let v = r.get_bytes().map_err(|e| e.to_string())?;
                        line.extend_from_slice(v);
                    }
                    DICT_MARK => {
                        let d = r.get_u32().map_err(|e| e.to_string())? as usize;
                        let v = self
                            .dict
                            .get(d)
                            .ok_or_else(|| "clp: bad dict id".to_string())?;
                        line.extend_from_slice(v);
                    }
                    _ => line.push(b),
                }
            }
            lines.push(line);
        }
        let rc = Rc::new(lines);
        self.decoded.borrow_mut().insert(seg_id, rc.clone());
        Ok(rc)
    }

    /// A *sound* segment pre-filter for one search string: a fragment of the
    /// string that contains no delimiter, no digit and no wildcard must lie
    /// within a single non-variable-encoded token, so it can only occur in a
    /// log type's static text or in a dictionary value. Returns `None` when
    /// no such fragment is long enough — then every segment is a candidate
    /// (which is exactly CLP's weakness on variable-heavy queries).
    fn filter_segments(&self, text: &[u8]) -> Option<Vec<u32>> {
        let fragment = text
            .split(|b| {
                DEFAULT_DELIMS.contains(b) || b.is_ascii_digit() || *b == b'*'
            })
            .max_by_key(|f| f.len())
            .unwrap_or(b"");
        if fragment.len() < 3 {
            return None;
        }
        let mut segs = RowSet::empty();
        for (lt, lt_segs) in self.logtypes.iter().zip(&self.logtype_segs) {
            if strsearch::contains(lt, fragment) {
                segs = segs.union(&RowSet::from_sorted(lt_segs.clone()));
            }
        }
        for (v, d_segs) in self.dict.iter().zip(&self.dict_segs) {
            if strsearch::contains(v, fragment) {
                segs = segs.union(&RowSet::from_sorted(d_segs.clone()));
            }
        }
        Some(segs.into_vec())
    }

    /// Evaluates one search string to a set of global line numbers.
    fn eval_search(&self, s: &loggrep::query::lang::SearchString) -> Result<RowSet, String> {
        let candidates: Vec<u32> = match self.filter_segments(s.raw.as_bytes()) {
            Some(segs) => segs,
            None => (0..self.segments.len() as u32).collect(),
        };
        let mut hits = Vec::new();
        for seg_id in candidates {
            let lines = self.decode_segment(seg_id)?;
            let base = self.segments[seg_id as usize].line_start;
            for (i, line) in lines.iter().enumerate() {
                if s.matches_line(line, DEFAULT_DELIMS) {
                    hits.push(base + i as u32);
                }
            }
        }
        Ok(RowSet::from_unsorted(hits))
    }

    fn eval_expr(&self, expr: &Expr) -> Result<RowSet, String> {
        match expr {
            Expr::Str(s) => self.eval_search(s),
            Expr::And(a, b) => Ok(self.eval_expr(a)?.intersect(&self.eval_expr(b)?)),
            Expr::Or(a, b) => Ok(self.eval_expr(a)?.union(&self.eval_expr(b)?)),
            Expr::Not(a, b) => Ok(self.eval_expr(a)?.subtract(&self.eval_expr(b)?)),
        }
    }

    /// Total stored lines.
    pub fn total_lines(&self) -> u32 {
        self.total_lines
    }
}

impl LogArchive for ClpArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        self.decoded.borrow_mut().clear();
        let query = Query::parse(command).map_err(|e| e.to_string())?;
        let lines = self.eval_expr(&query.expr)?;
        // Reconstruct in order.
        let mut out = Vec::with_capacity(lines.len());
        for lineno in lines.iter() {
            let seg_id = self
                .segments
                .partition_point(|s| s.line_start + s.count <= lineno) as u32;
            let seg = &self.segments[seg_id as usize];
            let decoded = self.decode_segment(seg_id)?;
            out.push(decoded[(lineno - seg.line_start) as usize].clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..500 {
            raw.extend_from_slice(
                format!(
                    "req {} from 10.0.{}.{} status {}\n",
                    i,
                    i % 8,
                    i % 250,
                    if i % 9 == 0 { "ERROR" } else { "OK" }
                )
                .as_bytes(),
            );
        }
        raw
    }

    fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
        let q = Query::parse(command).unwrap();
        loggrep::engine::split_lines(raw)
            .into_iter()
            .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
            .map(|l| l.to_vec())
            .collect()
    }

    #[test]
    fn queries_match_oracle() {
        let raw = sample();
        let sys = Clp {
            segment_lines: 128,
        };
        let stored = sys.compress(&raw).unwrap();
        let archive = sys.open(&stored).unwrap();
        for q in [
            "ERROR",
            "status OK",
            "10.0.3",
            "req 42",
            "ERROR and 10.0.0",
            "OK not 10.0.1",
            "from 10.0.*.13",
        ] {
            assert_eq!(archive.query(q).unwrap(), oracle(&raw, q), "query `{q}`");
        }
    }

    #[test]
    fn compresses_better_than_raw() {
        let raw = sample();
        let stored = Clp::default().compress(&raw).unwrap();
        assert!(
            stored.len() * 3 < raw.len(),
            "clp {} vs raw {}",
            stored.len(),
            raw.len()
        );
    }

    #[test]
    fn static_keyword_filters_segments() {
        let raw = sample();
        let sys = Clp {
            segment_lines: 64,
        };
        let stored = sys.compress(&raw).unwrap();
        let archive = ClpArchive::parse(&stored).unwrap();
        // "ERROR" appears in a dictionary-free log type... it is a static
        // token, so filtering must return a subset of segments.
        let filtered = archive.filter_segments(b"zzzz-absent").unwrap();
        assert!(filtered.is_empty());
        let all = archive.filter_segments(b"ERROR").unwrap();
        assert!(!all.is_empty());
    }

    #[test]
    fn empty_block() {
        let sys = Clp::default();
        let stored = sys.compress(b"").unwrap();
        let archive = sys.open(&stored).unwrap();
        assert!(archive.query("anything").unwrap().is_empty());
    }
}
