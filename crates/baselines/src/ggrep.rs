//! The gzip+grep baseline (§6): Alibaba Cloud's default for near-line logs.
//!
//! Compression is a straight DEFLATE-class pass over the block. A query
//! decompresses the whole block and scans it line by line with the shared
//! query-language oracle — the `gzip -d | grep -E ... | grep -v ...` pipe of
//! the paper's experiments.

use crate::system::{LogArchive, LogSystem};
use codec::{Codec, Deflate};
use loggrep::query::lang::Query;
use logparse::DEFAULT_DELIMS;

/// The gzip+grep system.
#[derive(Debug, Default)]
pub struct GzipGrep;

impl LogSystem for GzipGrep {
    fn name(&self) -> String {
        "gzip+grep".to_string()
    }

    fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, String> {
        Ok(Deflate::default().compress(raw))
    }

    fn open(&self, bytes: &[u8]) -> Result<Box<dyn LogArchive>, String> {
        Ok(Box::new(GzipGrepArchive {
            compressed: bytes.to_vec(),
        }))
    }
}

/// An opened gzip+grep block; holds only the compressed bytes — every query
/// pays the full decompression, exactly like the real pipeline.
pub struct GzipGrepArchive {
    compressed: Vec<u8>,
}

impl LogArchive for GzipGrepArchive {
    fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        let query = Query::parse(command).map_err(|e| e.to_string())?;
        // gunzip ...
        let raw = Deflate::default()
            .decompress(&self.compressed)
            .map_err(|e| e.to_string())?;
        // ... | grep.
        Ok(loggrep::engine::split_lines(&raw)
            .into_iter()
            .filter(|line| query.expr.matches_line(line, DEFAULT_DELIMS))
            .map(|line| line.to_vec())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grep_semantics() {
        let sys = GzipGrep;
        let raw = b"ERROR one\nINFO two\nERROR three err\n";
        let stored = sys.compress(raw).unwrap();
        // Tiny inputs pay the code-table header; just check sanity.
        assert!(stored.len() < raw.len() + 256);
        let archive = sys.open(&stored).unwrap();
        assert_eq!(
            archive.query("ERROR").unwrap(),
            vec![b"ERROR one".to_vec(), b"ERROR three err".to_vec()]
        );
        assert_eq!(
            archive.query("ERROR not err").unwrap(),
            vec![b"ERROR one".to_vec()]
        );
        assert_eq!(archive.query("INFO or err").unwrap().len(), 2);
    }
}
