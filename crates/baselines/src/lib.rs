//! Comparator systems for the LogGrep evaluation (§6).
//!
//! The paper compares LogGrep against three systems, each reimplemented
//! here from first principles:
//!
//! * [`ggrep`] — **gzip+grep**, Alibaba Cloud's default for near-line logs:
//!   compress the block with a DEFLATE-class codec; to query, decompress
//!   everything and scan line by line.
//! * [`clp`] — **CLP** (Rodrigues et al., OSDI '21): log types + variable
//!   dictionaries + order-preserving encoded segments with a segment-level
//!   inverted index; queries filter segments, then decompress and scan them.
//! * [`es`] — **MiniEs**, an ElasticSearch-like engine: a full inverted
//!   index over tokens with Lucene-style segment merging, plus compressed
//!   stored fields; queries intersect postings and verify against stored
//!   lines.
//!
//! All systems implement [`LogSystem`]/[`LogArchive`] and share exact query
//! semantics (the [`loggrep::query::lang`] oracle), so the benchmark harness
//! can compare latencies on identical result sets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clp;
pub mod es;
pub mod ggrep;
pub mod system;

pub use clp::Clp;
pub use es::MiniEs;
pub use ggrep::GzipGrep;
pub use system::{LogArchive, LogGrepSystem, LogSystem};
