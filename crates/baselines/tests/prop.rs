//! Property tests: every baseline must agree with the oracle on random
//! structured logs and random queries.
//!
//! Log/query generation and the oracle come from [`difftest::strategies`]:
//! the verdict is computed by the harness's independent evaluator, not by
//! the query language's own matcher, so a shared matcher bug cannot hide.

use baselines::{Clp, GzipGrep, LogSystem, MiniEs};
use difftest::strategies::{log_strategy, oracle_lines, query_strategy};
use proptest::prelude::*;

const WORDS: &[&str] = &["GET", "PUT", "ok", "fail", "[a-z]{1,4}", "[0-9]{1,4}"];
const TERMS: &[&str] = &["GET", "fail", "[a-z]{1,3}", "[0-9]{1,2}", "o*"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn baselines_agree_with_oracle(
        log in log_strategy(WORDS, 6, 1..100),
        query_text in query_strategy(TERMS, 2),
    ) {
        let raw = log.as_bytes();
        let Some(want) = oracle_lines(raw, &query_text) else {
            return Ok(()); // Rare unparseable sample (e.g. stars-only term).
        };

        let systems: Vec<Box<dyn LogSystem>> = vec![
            Box::new(GzipGrep),
            Box::new(Clp { segment_lines: 16 }),
            Box::new(MiniEs { flush_docs: 8, merge_factor: 2 }),
        ];
        for sys in systems {
            let stored = sys.compress(raw).expect("compress");
            let archive = sys.open(&stored).expect("open");
            let got = archive.query(&query_text).expect("query");
            prop_assert_eq!(&got, &want, "{} on `{}`", sys.name(), query_text);
        }
    }
}
