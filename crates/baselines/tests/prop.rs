//! Property tests: every baseline must agree with the oracle on random
//! structured logs and random queries.

use baselines::{Clp, GzipGrep, LogSystem, MiniEs};
use loggrep::query::lang::Query;
use logparse::DEFAULT_DELIMS;
use proptest::prelude::*;

fn line_strategy() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("GET".to_string()),
        Just("PUT".to_string()),
        Just("ok".to_string()),
        Just("fail".to_string()),
        "[a-z]{1,4}",
        "[0-9]{1,4}",
    ];
    proptest::collection::vec(word, 1..6).prop_map(|w| w.join(" "))
}

fn query_strategy() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        Just("GET".to_string()),
        Just("fail".to_string()),
        "[a-z]{1,3}",
        "[0-9]{1,2}",
        Just("o*".to_string()),
    ];
    let op = prop_oneof![
        Just(" and ".to_string()),
        Just(" or ".to_string()),
        Just(" not ".to_string())
    ];
    (term.clone(), proptest::collection::vec((op, term), 0..2)).prop_map(|(first, rest)| {
        let mut q = first;
        for (o, t) in rest {
            q.push_str(&o);
            q.push_str(&t);
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn baselines_agree_with_oracle(
        lines in proptest::collection::vec(line_strategy(), 1..100),
        query_text in query_strategy(),
    ) {
        let mut raw = lines.join("\n").into_bytes();
        raw.push(b'\n');
        let query = match Query::parse(&query_text) {
            Ok(q) => q,
            Err(_) => return Ok(()),
        };
        let want: Vec<Vec<u8>> = loggrep::engine::split_lines(&raw)
            .into_iter()
            .filter(|l| query.expr.matches_line(l, DEFAULT_DELIMS))
            .map(|l| l.to_vec())
            .collect();

        let systems: Vec<Box<dyn LogSystem>> = vec![
            Box::new(GzipGrep),
            Box::new(Clp { segment_lines: 16 }),
            Box::new(MiniEs { flush_docs: 8, merge_factor: 2 }),
        ];
        for sys in systems {
            let stored = sys.compress(&raw).expect("compress");
            let archive = sys.open(&stored).expect("open");
            let got = archive.query(&query_text).expect("query");
            prop_assert_eq!(&got, &want, "{} on `{}`", sys.name(), query_text);
        }
    }
}
