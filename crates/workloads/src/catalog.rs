//! The workload catalog: 21 production-style logs (Log A .. Log U) and 16
//! public-style logs, with primary queries adapted from Table 1 of the
//! paper to the generated content.
//!
//! Each log mixes high-frequency "normal" templates with rare "error"
//! templates so the Table-1-style queries are selective, and each variable
//! exhibits one of the runtime-pattern families of §2.3 (fixed prefixes,
//! ranged timestamps, subnet-confined IPs, rooted paths, small nominal
//! dictionaries).

use crate::gen::dsl::*;
use crate::gen::{LogSpec, TemplateSpec, ValueGen};

fn spec(name: &str, templates: Vec<TemplateSpec>, queries: &[&str]) -> LogSpec {
    LogSpec {
        name: name.to_string(),
        templates,
        queries: queries.iter().map(|q| q.to_string()).collect(),
    }
}

const LEVELS: &[(&str, u32)] = &[("INFO", 30), ("WARN", 4), ("ERROR", 1)];
const STATES: &[(&str, u32)] = &[
    ("REQ_ST_OPEN", 10),
    ("REQ_ST_WAIT", 6),
    ("REQ_ST_CLOSED", 3),
    ("REQ_ST_ABORT", 1),
];
// Digit-bearing names stay template *slots* (the digit-mask heuristic), so
// they form nominal variable vectors rather than separate static templates.
const USERS: &[(&str, u32)] = &[
    ("admin01", 8),
    ("alice42", 5),
    ("bob7", 4),
    ("carol33", 2),
    ("mallory9", 1),
];
const OPS: &[(&str, u32)] = &[
    ("ReadChunk", 10),
    ("WriteChunk", 6),
    ("SealChunk", 2),
    ("DeleteChunk", 1),
];
const CODES: &[(&str, u32)] = &[("200", 20), ("204", 6), ("404", 2), ("500", 1), ("503", 1)];

fn lvl() -> crate::gen::Part {
    choice(LEVELS)
}

/// The 21 production-style logs.
#[allow(clippy::vec_init_then_push)] // one push per log keeps the catalog diffable
pub fn production() -> Vec<LogSpec> {
    let mut v = Vec::new();

    // Log A: request-state machine with trace ids.
    v.push(spec(
        "Log A",
        vec![
            tpl(240,
                vec![
                    ts("2021-04-02", 28_800),
                    t(" INFO request state:"),
                    choice(STATES),
                    t(" code="),
                    dec(20000, 20100),
                    t(" reqId:"),
                    hex("5E9D21AD", 8, true),
                ],
            ),
            tpl(2,
                vec![
                    ts("2021-04-02", 28_800),
                    t(" ERROR request state:REQ_ST_CLOSED code=20012 reqId:"),
                    hex("5E9D21AD", 8, true),
                ],
            ),
            tpl(80,
                vec![
                    ts("2021-04-02", 28_800),
                    t(" INFO heartbeat from "),
                    ip("11.187"),
                    t(" rtt="),
                    dec(1, 120),
                    t("us"),
                ],
            ),
        ],
        &["ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D21AD"],
    ));

    // Log B: project/request audit trail.
    v.push(spec(
        "Log B",
        vec![
            tpl(300,
                vec![
                    ts("2021-04-03", 0),
                    t(" "),
                    lvl(),
                    t(" Project:"),
                    dec(2900, 3000),
                    t(" RequestId:"),
                    hex("5EA6F82F", 8, true),
                    t(" latency="),
                    dec(1, 900),
                    t("ms"),
                ],
            ),
            tpl(3,
                vec![
                    ts("2021-04-03", 0),
                    t(" ERROR Project:2963 RequestId:"),
                    hex("5EA6F82F", 8, true),
                    t(" quota exceeded"),
                ],
            ),
        ],
        &[
            // Leads with a sub-variable fragment: exercises runtime-pattern
            // Capsule filtering inside the big group's RequestId vector.
            "RequestId:5EA6F82F4",
            "ERROR and Project:2963 and RequestId:5EA6F82F",
        ],
    ));

    // Log C: plain service log; query is a bare level.
    v.push(spec(
        "Log C",
        vec![
            tpl(400,
                vec![
                    ts("2021-04-04", 3600),
                    t(" INFO worker-"),
                    dec(0, 16),
                    t(" finished batch "),
                    counter(10_000, 3),
                ],
            ),
            tpl(1,
                vec![
                    ts("2021-04-04", 3600),
                    t(" ERROR worker-"),
                    dec(0, 16),
                    t(" batch "),
                    counter(10_000, 3),
                    t(" failed: timeout"),
                ],
            ),
        ],
        &["ERROR"],
    ));

    // Log D: project metering.
    v.push(spec(
        "Log D",
        vec![
            tpl(
                3,
                vec![
                    t("metering project_id:30935 logstore:res_p inflow:"),
                    dec(0, 10),
                    t(" outflow:"),
                    dec(0, 40),
                ],
            ),
            tpl(200,
                vec![
                    t("metering project_id:"),
                    dec(30_900, 31_000),
                    t(" logstore:"),
                    choice(&[("res_p", 5), ("req_q", 3), ("acc_r", 1)]),
                    t(" inflow:"),
                    dec(0, 40),
                    t(" outflow:"),
                    dec(0, 40),
                ],
            ),
            tpl(60,
                vec![
                    t("metering project_id:"),
                    dec(30_900, 31_000),
                    t(" heartbeat seq="),
                    counter(1, 0),
                ],
            ),
        ],
        &["project_id:30935 and logstore:res_p and inflow:5"],
    ));

    // Log E: sharded store with word counts.
    v.push(spec(
        "Log E",
        vec![
            tpl(40,
                vec![
                    t("project:"),
                    dec(158, 164),
                    t(" logstore:test_ay87a shard:"),
                    dec(95, 101),
                    t(" wcount:"),
                    dec(8, 13),
                    t(" ts:"),
                    counter(1_622_000_000, 5),
                ],
            ),
            tpl(200,
                vec![
                    t("project:"),
                    dec(100, 200),
                    t(" logstore:"),
                    choice(&[("prod_x31", 4), ("ops_k02", 2), ("dev_m77", 1)]),
                    t(" shard:"),
                    dec(0, 128),
                    t(" wcount:"),
                    dec(0, 64),
                    t(" ts:"),
                    counter(1_622_000_000, 5),
                ],
            ),
        ],
        &["project:161 and logstore:test_ay87a and shard:99 and wcount:10"],
    ));

    // Log F: user billing with a sentinel UserId.
    v.push(spec(
        "Log F",
        vec![
            tpl(180,
                vec![
                    ts("2021-04-07", 7200),
                    t(" INFO charge UserId:"),
                    dec(1000, 9000),
                    t(" amount="),
                    dec(1, 500),
                ],
            ),
            tpl(2,
                vec![
                    ts("2021-04-07", 7200),
                    t(" ERROR charge failed UserId:-2 reason=deleted"),
                ],
            ),
            tpl(1,
                vec![
                    ts("2021-04-07", 7200),
                    t(" ERROR charge failed UserId:"),
                    dec(1000, 9000),
                    t(" reason=insufficient"),
                ],
            ),
        ],
        &["ERROR not UserId:-2"],
    ));

    // Log G: chunk-server trace (the paper's IP-subnet example).
    v.push(spec(
        "Log G",
        vec![
            tpl(160,
                vec![
                    t("Operation:"),
                    choice(OPS),
                    t(" SATADiskId:"),
                    dec(0, 12),
                    t(" From:tcp://"),
                    ip("10.143"),
                    t(":"),
                    dec(20_000, 60_000),
                    t(" TraceId:"),
                    hex("3615b60b", 24, false),
                ],
            ),
            tpl(2,
                vec![
                    t("Operation:ReadChunk SATADiskId:7 From:tcp://"),
                    ip("10.143"),
                    t(":"),
                    dec(20_000, 60_000),
                    t(" TraceId:"),
                    hex("3615b60b", 24, false),
                    t(" slow_io"),
                ],
            ),
        ],
        &["Operation:ReadChunk and SATADiskId:7 and From:tcp://10.143"],
    ));

    // Log H: GC / runtime events.
    v.push(spec(
        "Log H",
        vec![
            tpl(250,
                vec![
                    ts("2021-04-09", 0),
                    t(" INFO gc pause "),
                    dec(1, 300),
                    t("ms heap="),
                    dec(100, 4000),
                    t("MB"),
                ],
            ),
            tpl(1,
                vec![
                    ts("2021-04-09", 0),
                    t(" ERROR gc overrun pause "),
                    dec(300, 2000),
                    t("ms heap="),
                    dec(3000, 8000),
                    t("MB"),
                ],
            ),
        ],
        &["ERROR"],
    ));

    // Log I: scheduler warnings with a time-of-day query.
    v.push(spec(
        "Log I",
        vec![
            tpl(200,
                vec![
                    ts("2019-11-06", 25_200),
                    t(" INFO scheduled job "),
                    hex("job-", 6, false),
                    t(" on node"),
                    dec(1, 400),
                ],
            ),
            tpl(3,
                vec![
                    ts("2019-11-06", 25_200),
                    t(" WARNING job "),
                    hex("job-0", 5, false),
                    t(" preempted on node"),
                    dec(1, 400),
                ],
            ),
        ],
        &[
            // Leads with a job-id prefix probing a real vector.
            "job-0 and WARNING",
            "WARNING and 2019-11-06 07",
        ],
    ));

    // Log J: pangu-style RPC trace summaries.
    v.push(spec(
        "Log J",
        vec![
            tpl(120,
                vec![
                    t("TraceType:PanguTraceSummary SectionType:RPC_SealAndNew CountOk:"),
                    dec(1, 40),
                    t(" CountFail:0 Elapsed:"),
                    dec(1, 5000),
                    t("us"),
                ],
            ),
            tpl(1,
                vec![
                    t("TraceType:PanguTraceSummary SectionType:RPC_SealAndNew CountOk:"),
                    dec(0, 40),
                    t(" CountFail:"),
                    dec(1, 5),
                    t(" Elapsed:"),
                    dec(5000, 90_000),
                    t("us"),
                ],
            ),
            tpl(80,
                vec![
                    t("TraceType:PanguTraceSummary SectionType:RPC_Append CountOk:"),
                    dec(1, 40),
                    t(" CountFail:0 Elapsed:"),
                    dec(1, 5000),
                    t("us"),
                ],
            ),
        ],
        &["TraceType:PanguTraceSummary and SectionType:RPC_SealAndNew not CountFail:0"],
    ));

    // Log K: REST access log with DELETE events.
    v.push(spec(
        "Log K",
        vec![
            tpl(200,
                vec![
                    ts("2019-11-04", 8700),
                    t(" "),
                    choice(&[("GET", 12), ("PUT", 5), ("POST", 3)]),
                    t(" /results/"),
                    dec(0, 40),
                    t(" "),
                    choice(CODES),
                    t(" "),
                    dec(1, 2000),
                    t("us"),
                ],
            ),
            tpl(1,
                vec![
                    ts("2019-11-04", 8700),
                    t(" DELETE /results/0 "),
                    choice(CODES),
                    t(" "),
                    dec(1, 2000),
                    t("us"),
                ],
            ),
        ],
        &["DELETE and /results/0 and 2019-11-04 02"],
    ));

    // Log L: packet pipeline with error codes.
    v.push(spec(
        "Log L",
        vec![
            tpl(180,
                vec![
                    t("pipeline stage="),
                    dec(0, 6),
                    t(" Packet id:"),
                    counter(172_000_000, 9),
                    t(" ok"),
                ],
            ),
            tpl(2,
                vec![
                    t("WARNING retrying Errorcode:0 Packet id:"),
                    counter(172_000_000, 9),
                ],
            ),
        ],
        &["WARNING and Errorcode:0 and Packet id:172"],
    ));

    // Log M: exchange-client threads touching result paths.
    v.push(spec(
        "Log M",
        vec![
            tpl(160,
                vec![
                    ts("2021-04-13", 0),
                    t(" INFO exchange-client-"),
                    dec(0, 64),
                    t(" fetched /results/"),
                    dec(0, 40),
                    t(" bytes="),
                    dec(100, 100_000),
                ],
            ),
            tpl(1,
                vec![
                    ts("2021-04-13", 0),
                    t(" ERROR exchange-client-24 failed /results/10 connection reset"),
                ],
            ),
        ],
        &["ERROR and exchange-client-24 and /results/10"],
    ));

    // Log N: project errors keyed by project id.
    v.push(spec(
        "Log N",
        vec![
            tpl(220,
                vec![
                    t("audit project_id:"),
                    dec(51_000, 51_500),
                    t(" action="),
                    choice(&[("read", 9), ("write", 4), ("grant", 1)]),
                    t(" by "),
                    choice(USERS),
                ],
            ),
            tpl(1,
                vec![
                    t("ERROR audit project_id:51274 denied for "),
                    choice(USERS),
                ],
            ),
        ],
        &[
            // Leads with a nominal dictionary value (user names are a small
            // skewed dictionary): exercises dictionary + index filtering.
            "mallory9 and audit",
            "ERROR and project_id:51274",
        ],
    ));

    // Log O: dated project errors.
    v.push(spec(
        "Log O",
        vec![
            tpl(200,
                vec![
                    ts("2020-04-14", 14_400),
                    t(" info ProjectId:"),
                    dec(2300, 2500),
                    t(" flushed "),
                    dec(1, 200),
                    t(" rows"),
                ],
            ),
            tpl(2,
                vec![
                    ts("2020-04-14", 14_400),
                    t(" error ProjectId:2396 flush failed after "),
                    dec(1, 30),
                    t(" retries"),
                ],
            ),
        ],
        &["error and ProjectId:2396 and 2020-04-14 04"],
    ));

    // Log P: UI telemetry with a named error event.
    v.push(spec(
        "Log P",
        vec![
            tpl(250,
                vec![
                    t("event="),
                    choice(&[
                        ("CLICK_OPEN", 10),
                        ("CLICK_CLOSE", 8),
                        ("CLICK_SAVE", 5),
                        ("SCROLL", 20),
                    ]),
                    t(" session="),
                    hex("s-", 10, false),
                    t(" dur="),
                    dec(1, 60_000),
                    t("ms"),
                ],
            ),
            tpl(1,
                vec![
                    t("ERROR event=CLICK_SAVE_ERROR session="),
                    hex("s-", 10, false),
                    t(" code="),
                    choice(CODES),
                ],
            ),
        ],
        &[
            // Leads with a session-id prefix probing a real vector.
            "session=s-0 and SCROLL",
            "ERROR and CLICK_SAVE_ERROR",
        ],
    ));

    // Log Q: ingestion handler with epoch timestamps.
    v.push(spec(
        "Log Q",
        vec![
            tpl(180,
                vec![
                    t("PostLogStoreLogsHandler.cpp:"),
                    dec(100, 900),
                    t(" INFO shard="),
                    dec(0, 64),
                    t(" Time:"),
                    counter(1_622_009_000, 2),
                    t(" lines="),
                    dec(1, 5000),
                ],
            ),
            tpl(1,
                vec![
                    t("PostLogStoreLogsHandler.cpp:"),
                    dec(100, 900),
                    t(" ERROR shard="),
                    dec(0, 64),
                    t(" Time:"),
                    counter(1_622_009_000, 2),
                    t(" write rejected"),
                ],
            ),
        ],
        &["ERROR and PostLogStoreLogsHandler.cpp and Time:1622009"],
    ));

    // Log R: partitioned requests with request-id IPs.
    v.push(spec(
        "Log R",
        vec![
            tpl(140,
                vec![
                    t("serve part_id:"),
                    dec(500, 520),
                    t(" request id REQ_"),
                    ip("11.192"),
                    t("_"),
                    counter(1, 0),
                    t(" ok"),
                ],
            ),
            tpl(1,
                vec![
                    t("ERROR serve part_id:510 request id REQ_"),
                    ip("11.192"),
                    t("_"),
                    counter(1, 0),
                    t(" aborted"),
                ],
            ),
        ],
        &["ERROR and part_id:510 and request id REQ_11.192"],
    ));

    // Log S: sudo-style audit lines (the paper's Log S hits the template).
    v.push(spec(
        "Log S",
        vec![
            tpl(60,
                vec![
                    t("Aug 30 10:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" host sudo: "),
                    choice(USERS),
                    t(" : TTY=pts/"),
                    dec(0, 8),
                    t(" ; PWD=/home ; COMMAND=/bin/ls"),
                ],
            ),
            tpl(1,
                vec![
                    t("Aug 30 10:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" host crond: root : TTY=unknown ; PWD=/ ; COMMAND=/etc/init.d/ilogtaild status"),
                ],
            ),
        ],
        &["TTY=unknown and /etc/init.d/ilogtaild and Aug 30 10"],
    ));

    // Log T: the huge log — queried by id + time prefix.
    v.push(spec(
        "Log T",
        vec![
            tpl(300,
                vec![
                    ts("2020-04-08", 18_000),
                    t(" INFO tenant "),
                    dec(39_000, 39_500),
                    t(" op="),
                    choice(OPS),
                    t(" bytes="),
                    dec(1, 1_000_000),
                ],
            ),
            tpl(1,
                vec![
                    ts("2020-04-08", 18_000),
                    t(" ERROR tenant 39244 op=SealChunk stalled"),
                ],
            ),
        ],
        &["ERROR and 39244 and 2020-04-08 05"],
    ));

    // Log U: trie-backed store; queries hit raw numeric ids (few runtime
    // patterns help here — the paper's outlier case).
    v.push(spec(
        "Log U",
        vec![
            tpl(100,
                vec![
                    t("trie lookup key="),
                    counter(1_618_152_650_000_000_000, 997),
                    t("_"),
                    dec(0, 9),
                    t("_"),
                    counter(149_000_000, 13),
                    t(" ok"),
                ],
            ),
            tpl(1,
                vec![
                    t("failed to read trie data and fallback key="),
                    counter(1_618_152_650_000_000_000, 997),
                    t("_"),
                    dec(0, 9),
                    t("_"),
                    counter(149_000_000, 13),
                ],
            ),
        ],
        &["failed to read trie data and key=1618152650"],
    ));

    v
}

/// The 16 public-style logs.
#[allow(clippy::vec_init_then_push)] // one push per log keeps the catalog diffable
pub fn public() -> Vec<LogSpec> {
    let mut v = Vec::new();

    v.push(spec(
        "Android",
        vec![
            tpl(200,
                vec![
                    ts("2017-12-17", 36_000),
                    t(" "),
                    dec(100, 30_000),
                    t(" "),
                    dec(100, 30_000),
                    t(" I ActivityManager: Displayed com.app/.Activity"),
                ],
            ),
            tpl(1,
                vec![
                    ts("2017-12-17", 36_000),
                    t(" "),
                    dec(100, 30_000),
                    t(" "),
                    dec(100, 30_000),
                    t(" E SocketClient: ERROR socket read length failure -104"),
                ],
            ),
        ],
        &["ERROR and socket read length failure -104"],
    ));

    v.push(spec(
        "Apache",
        vec![
            tpl(160,
                vec![
                    t("[Sun Dec 04 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" 2005] [notice] workerEnv.init() ok /etc/httpd/conf/workers2.properties"),
                ],
            ),
            tpl(1,
                vec![
                    t("[Sun Dec 04 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" 2005] [error] mod_jk child workerEnv error Invalid URI in request GET /"),
                    hex("", 6, false),
                    t(" HTTP/1.1"),
                ],
            ),
        ],
        &["error and Invalid URI in request"],
    ));

    v.push(spec(
        "Bgl",
        vec![
            tpl(140,
                vec![
                    t("- "),
                    counter(1_117_838_570, 3),
                    t(" 2005.06.03 R0"),
                    dec(0, 4),
                    t("-M1-N"),
                    dec(0, 8),
                    t(" RAS KERNEL INFO generating core."),
                    dec(1, 3000),
                ],
            ),
            tpl(1,
                vec![
                    t("- "),
                    counter(1_117_838_570, 3),
                    t(" 2005.06.03 R00-M1-ND RAS KERNEL ERROR data TLB error interrupt"),
                ],
            ),
        ],
        &["ERROR and R00-M1-ND"],
    ));

    v.push(spec(
        "Hadoop",
        vec![
            tpl(140,
                vec![
                    t("2015-09-23 "),
                    dec(10, 24),
                    t(":"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(",")
                    ,
                    dec(100, 999),
                    t(" INFO [main] org.apache.hadoop.mapreduce: Progress of TaskAttempt attempt_"),
                    counter(1_445_062_781_478, 7),
                    t("_0"),
                    dec(1, 9),
                    t(" is : 0."),
                    dec(1, 99),
                ],
            ),
            tpl(1,
                vec![
                    t("2015-09-23 "),
                    dec(10, 24),
                    t(":"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(","),
                    dec(100, 999),
                    t(" ERROR [main] org.apache.hadoop.mapred.TaskAttemptListenerImpl: RECEIVED SIGNAL 15: SIGTERM"),
                ],
            ),
        ],
        &["ERROR and RECEIVED SIGNAL 15: SIGTERM and 2015-09-23"],
    ));

    v.push(spec(
        "Hdfs",
        vec![
            tpl(180,
                vec![
                    t("081109 "),
                    dec(100_000, 250_000),
                    t(" "),
                    dec(1, 40),
                    t(" INFO dfs.DataNode$PacketResponder: Received block blk_"),
                    counter(884_600_000, 23),
                    t(" of size "),
                    dec(1024, 67_108_864),
                    t(" from "),
                    ip("10.251"),
                ],
            ),
            tpl(1,
                vec![
                    t("081109 "),
                    dec(100_000, 250_000),
                    t(" "),
                    dec(1, 40),
                    t(" error dfs.DataNode$DataXceiver: writeBlock blk_8846"),
                    dec(10_000, 99_999),
                    t(" received exception java.io.IOException"),
                ],
            ),
        ],
        &["error and blk_8846"],
    ));

    v.push(spec(
        "Healthapp",
        vec![
            tpl(120,
                vec![
                    counter(20_171_223_000_000, 37),
                    t("|Step_LSC|30002312|onStandStepChanged "),
                    dec(1000, 9000),
                ],
            ),
            tpl(2,
                vec![
                    counter(20_171_223_000_000, 37),
                    t("|Step_ExtSDM|30002312|calculateAltitudeWithCache totalAltitude=0"),
                ],
            ),
        ],
        &["Step_ExtSDM and totalAltitude=0"],
    ));

    v.push(spec(
        "Hpc",
        vec![
            tpl(140,
                vec![
                    counter(2_567_000, 11),
                    t(" node-"),
                    dec(0, 256),
                    t(" unix.hw state_change.unavailable configuration HWID="),
                    dec(1000, 5000),
                ],
            ),
            tpl(1,
                vec![
                    counter(2_567_000, 11),
                    t(" node-"),
                    dec(0, 256),
                    t(" unix.hw unavailable state HWID=3378"),
                ],
            ),
        ],
        &["unavailable state and HWID=3378"],
    ));

    v.push(spec(
        "Linux",
        vec![
            tpl(100,
                vec![
                    t("Jun 15 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" combo sshd(pam_unix)["),
                    dec(1000, 30_000),
                    t("]: session opened for user "),
                    choice(USERS),
                ],
            ),
            tpl(2,
                vec![
                    t("Jun 15 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" combo sshd(pam_unix)["),
                    dec(1000, 30_000),
                    t("]: authentication failure; logname= uid=0 euid=0 tty=NODEVssh ruser= rhost=221.230.128.214"),
                ],
            ),
        ],
        &["authentication failure and rhost=221.230.128.214"],
    ));

    v.push(spec(
        "Mac",
        vec![
            tpl(120,
                vec![
                    t("Jul  1 09:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" calvisitor-10-105 kernel[0]: ARPT: "),
                    counter(620_000, 19),
                    t(".0"),
                    dec(10, 99),
                    t(": wl0: wl_update_power_state"),
                ],
            ),
            tpl(1,
                vec![
                    t("Jul  1 09:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" calvisitor-10-105 com.apple.cts[258]: highly unusual: sendMessage failed and Err:-1 Errno:1 Operation not permitted"),
                ],
            ),
        ],
        &["failed and Err:-1 Errno:1"],
    ));

    v.push(spec(
        "Openstack",
        vec![
            tpl(140,
                vec![
                    t("nova-compute.log.1.2017-05-16_13:55:31 2017-05-16 00:00:"),
                    dec(10, 60),
                    t(".")
                    ,
                    dec(100, 999),
                    t(" 2931 INFO nova.compute.manager [instance: "),
                    hex("", 8, false),
                    t("-a1b2] VM Started"),
                ],
            ),
            tpl(1,
                vec![
                    t("nova-compute.log.1.2017-05-16_13:55:31 2017-05-16 00:00:"),
                    dec(10, 60),
                    t("."),
                    dec(100, 999),
                    t(" 2931 ERROR nova.compute.manager Unexpected error while running command"),
                ],
            ),
            tpl(2,
                vec![
                    t("nova-compute.log.1.2017-05-16_13:55:31 2017-05-16 00:00:"),
                    dec(10, 60),
                    t("."),
                    dec(100, 999),
                    t(" 2931 WARNING nova.compute.manager disk usage high"),
                ],
            ),
        ],
        &["ERROR or WARNING and Unexpected error while running command"],
    ));

    v.push(spec(
        "Proxifier",
        vec![
            tpl(100,
                vec![
                    t("[10.30 16:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t("] chrome.exe - proxy.cse.cuhk.edu.hk:5070 open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS"),
                ],
            ),
            tpl(2,
                vec![
                    t("[10.30 16:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t("] chrome.exe - play.google.com:443 open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS"),
                ],
            ),
        ],
        &["HTTPS and play.google.com:443"],
    ));

    v.push(spec(
        "Spark",
        vec![
            tpl(160,
                vec![
                    t("17/06/09 20:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" INFO storage.BlockManager: Found block rdd_"),
                    dec(1, 50),
                    t("_"),
                    dec(1, 400),
                    t(" locally"),
                ],
            ),
            tpl(1,
                vec![
                    t("17/06/09 20:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" ERROR executor.Executor: Error sending result to driver"),
                ],
            ),
        ],
        &["ERROR and Error sending result"],
    ));

    v.push(spec(
        "Ssh",
        vec![
            tpl(120,
                vec![
                    t("Dec 10 06:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" LabSZ sshd["),
                    dec(20_000, 30_000),
                    t("]: Failed password for root from "),
                    ip("183.62"),
                    t(" port "),
                    dec(30_000, 60_000),
                    t(" ssh2"),
                ],
            ),
            tpl(2,
                vec![
                    t("Dec 10 06:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" LabSZ sshd["),
                    dec(20_000, 30_000),
                    t("]: Received disconnect from 202.100.179.208: 11: Bye Bye [preauth]"),
                ],
            ),
        ],
        &["Received disconnect from and 202.100.179.208"],
    ));

    v.push(spec(
        "Thunderbird",
        vec![
            tpl(140,
                vec![
                    t("- "),
                    counter(1_131_566_461, 2),
                    t(" 2005.11.09 dn228 Nov 9 12:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" dn228/dn228 crond[")
                    ,
                    dec(1000, 9000),
                    t("]: (root) CMD (run-parts /etc/cron.hourly)"),
                ],
            ),
            tpl(1,
                vec![
                    t("- "),
                    counter(1_131_566_461, 2),
                    t(" 2005.11.09 bn398 Nov 9 12:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(" bn398/bn398 kernel: Losing some ticks... Doorbell ACK timeout"),
                ],
            ),
        ],
        &["Doorbell ACK timeout"],
    ));

    v.push(spec(
        "Windows",
        vec![
            tpl(160,
                vec![
                    t("2016-09-28 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(", Info                  CBS    Loaded Servicing Stack v6.1.7601."),
                    dec(17_000, 24_000),
                ],
            ),
            tpl(1,
                vec![
                    t("2016-09-28 04:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(", Error                 CBS    Failed to process single phase execution [HRESULT = 0x"),
                    hex("", 8, false),
                    t("]"),
                ],
            ),
        ],
        &["Error and Failed to process single phase execution"],
    ));

    v.push(spec(
        "Zookeeper",
        vec![
            tpl(140,
                vec![
                    t("2015-07-29 17:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(",")
                    ,
                    dec(100, 999),
                    t(" - INFO  [QuorumPeer:/0.0.0.0:3888:QuorumCnxManager] - Connection broken for id "),
                    dec(1, 4),
                ],
            ),
            tpl(1,
                vec![
                    t("2015-07-29 17:"),
                    dec(10, 60),
                    t(":"),
                    dec(10, 60),
                    t(","),
                    dec(100, 999),
                    t(" - ERROR [CommitProcessor:2:NIOServerCnxn@180] - Unexpected Exception: java.nio.channels.CancelledKeyException"),
                ],
            ),
        ],
        &["ERROR and CommitProcessor"],
    ));

    v
}

/// Silences the unused-import lint for `ValueGen` while keeping the type in
/// the module's public docs (used by `pair` in the DSL).
#[allow(dead_code)]
fn _keep(v: ValueGen) -> ValueGen {
    v
}
