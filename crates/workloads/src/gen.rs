//! The generator machinery: value generators, template specs, log specs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator for one variable position in a template.
///
/// Each variant embodies one of the runtime-pattern families of §2.3.
#[derive(Debug, Clone)]
pub enum ValueGen {
    /// `prefix` + `digits` hex digits, e.g. `blk_1FF8A3` — fixed-prefix ids.
    HexId {
        /// Constant prefix (may be empty).
        prefix: String,
        /// Number of hex digits.
        digits: usize,
        /// Uppercase hex when true.
        upper: bool,
    },
    /// A mostly-increasing decimal counter starting near `start`.
    Counter {
        /// Base value; the line index is added.
        start: u64,
        /// Extra random stride in `0..jitter` (0 = none).
        jitter: u64,
    },
    /// A uniform decimal in `lo..hi`.
    DecRange {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    },
    /// `2021-03-14 HH:MM:SS.mmm`-style timestamps advancing with the line
    /// index — the "all values fall in a range" pattern.
    Timestamp {
        /// Date part, e.g. `2021-03-14`.
        date: &'static str,
        /// Starting second-of-day.
        start_sec: u32,
    },
    /// An IPv4 address inside a fixed /16, e.g. `11.187.<*>.<*>`.
    Ip {
        /// The fixed two leading octets, e.g. `"11.187"`.
        subnet: &'static str,
    },
    /// A path under a fixed root with a generated hex stem and extension.
    Path {
        /// Common root, e.g. `/root/usr/admin`.
        root: &'static str,
        /// File extension (with dot).
        ext: &'static str,
        /// Hex digits in the stem.
        digits: usize,
    },
    /// A value drawn from a small weighted dictionary — nominal vectors.
    Choice {
        /// `(value, weight)` pairs.
        options: &'static [(&'static str, u32)],
    },
    /// Two sub-values joined by a separator (e.g. `SUC#1604`).
    Pair {
        /// Left generator.
        left: Box<ValueGen>,
        /// Separator string.
        sep: &'static str,
        /// Right generator.
        right: Box<ValueGen>,
    },
}

impl ValueGen {
    /// Renders one value for line `i`.
    pub fn render(&self, rng: &mut StdRng, i: u64, out: &mut Vec<u8>) {
        match self {
            ValueGen::HexId {
                prefix,
                digits,
                upper,
            } => {
                out.extend_from_slice(prefix.as_bytes());
                for _ in 0..*digits {
                    let d = rng.gen_range(0..16u32);
                    let c = char::from_digit(d, 16).expect("hex digit");
                    let c = if *upper { c.to_ascii_uppercase() } else { c };
                    out.push(c as u8);
                }
            }
            ValueGen::Counter { start, jitter } => {
                let j = if *jitter == 0 { 0 } else { rng.gen_range(0..*jitter) };
                out.extend_from_slice((start + i + j).to_string().as_bytes());
            }
            ValueGen::DecRange { lo, hi } => {
                out.extend_from_slice(rng.gen_range(*lo..*hi).to_string().as_bytes());
            }
            ValueGen::Timestamp { date, start_sec } => {
                let sec = (*start_sec as u64 + i / 50) % 86_400;
                let ms = (i * 37 + 13) % 1000;
                out.extend_from_slice(
                    format!(
                        "{date} {:02}:{:02}:{:02}.{:03}",
                        sec / 3600,
                        (sec / 60) % 60,
                        sec % 60,
                        ms
                    )
                    .as_bytes(),
                );
            }
            ValueGen::Ip { subnet } => {
                out.extend_from_slice(
                    format!(
                        "{subnet}.{}.{}",
                        rng.gen_range(0..32u32),
                        rng.gen_range(1..255u32)
                    )
                    .as_bytes(),
                );
            }
            ValueGen::Path { root, ext, digits } => {
                out.extend_from_slice(root.as_bytes());
                out.push(b'/');
                out.extend_from_slice(b"1FF8");
                for _ in 0..*digits {
                    let d = rng.gen_range(0..16u32);
                    out.push(
                        char::from_digit(d, 16)
                            .expect("hex digit")
                            .to_ascii_uppercase() as u8,
                    );
                }
                out.extend_from_slice(ext.as_bytes());
            }
            ValueGen::Choice { options } => {
                let total: u32 = options.iter().map(|(_, w)| w).sum();
                let mut pick = rng.gen_range(0..total);
                for (value, weight) in options.iter() {
                    if pick < *weight {
                        out.extend_from_slice(value.as_bytes());
                        return;
                    }
                    pick -= weight;
                }
                unreachable!("weights cover the range");
            }
            ValueGen::Pair { left, sep, right } => {
                left.render(rng, i, out);
                out.extend_from_slice(sep.as_bytes());
                right.render(rng, i, out);
            }
        }
    }
}

/// One part of a template: literal text or a generated variable.
#[derive(Debug, Clone)]
pub enum Part {
    /// Literal bytes.
    Text(&'static str),
    /// A generated variable.
    Var(ValueGen),
}

/// One log template with a sampling weight.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Relative frequency among the log's templates.
    pub weight: u32,
    /// The template body.
    pub parts: Vec<Part>,
}

impl TemplateSpec {
    /// Renders one line (no trailing newline).
    pub fn render(&self, rng: &mut StdRng, i: u64, out: &mut Vec<u8>) {
        for part in &self.parts {
            match part {
                Part::Text(t) => out.extend_from_slice(t.as_bytes()),
                Part::Var(v) => v.render(rng, i, out),
            }
        }
    }
}

/// A complete synthetic log type.
#[derive(Debug, Clone)]
pub struct LogSpec {
    /// Display name ("Log A", "Hdfs", ...).
    pub name: String,
    /// Templates with weights.
    pub templates: Vec<TemplateSpec>,
    /// Query commands in the style of Table 1; `queries[0]` is the primary
    /// query used by the figure harnesses.
    pub queries: Vec<String>,
}

impl LogSpec {
    /// Generates at least `target_bytes` of log text (ends with a newline).
    pub fn generate(&self, seed: u64, target_bytes: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&self.name));
        let total_weight: u32 = self.templates.iter().map(|t| t.weight).sum();
        let mut out = Vec::with_capacity(target_bytes + 256);
        let mut i = 0u64;
        while out.len() < target_bytes {
            let mut pick = rng.gen_range(0..total_weight);
            let template = self
                .templates
                .iter()
                .find(|t| {
                    if pick < t.weight {
                        true
                    } else {
                        pick -= t.weight;
                        false
                    }
                })
                .expect("weights cover the range");
            template.render(&mut rng, i, &mut out);
            out.push(b'\n');
            i += 1;
        }
        out
    }
}

/// Stable tiny hash so each log name gets its own stream for a given seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Convenience constructors used by the catalog.
pub mod dsl {
    use super::*;

    /// Literal text part.
    pub fn t(text: &'static str) -> Part {
        Part::Text(text)
    }

    /// Hex-id variable.
    pub fn hex(prefix: &'static str, digits: usize, upper: bool) -> Part {
        Part::Var(ValueGen::HexId {
            prefix: prefix.to_string(),
            digits,
            upper,
        })
    }

    /// Counter variable.
    pub fn counter(start: u64, jitter: u64) -> Part {
        Part::Var(ValueGen::Counter { start, jitter })
    }

    /// Ranged decimal variable.
    pub fn dec(lo: u64, hi: u64) -> Part {
        Part::Var(ValueGen::DecRange { lo, hi })
    }

    /// Timestamp variable.
    pub fn ts(date: &'static str, start_sec: u32) -> Part {
        Part::Var(ValueGen::Timestamp { date, start_sec })
    }

    /// Subnet-confined IP variable.
    pub fn ip(subnet: &'static str) -> Part {
        Part::Var(ValueGen::Ip { subnet })
    }

    /// Rooted-path variable.
    pub fn path(root: &'static str, ext: &'static str, digits: usize) -> Part {
        Part::Var(ValueGen::Path { root, ext, digits })
    }

    /// Weighted-dictionary variable.
    pub fn choice(options: &'static [(&'static str, u32)]) -> Part {
        Part::Var(ValueGen::Choice { options })
    }

    /// Paired variable, e.g. `SUC#1604`.
    pub fn pair(left: ValueGen, sep: &'static str, right: ValueGen) -> Part {
        Part::Var(ValueGen::Pair {
            left: Box::new(left),
            sep,
            right: Box::new(right),
        })
    }

    /// A weighted template.
    pub fn tpl(weight: u32, parts: Vec<Part>) -> TemplateSpec {
        TemplateSpec { weight, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn render_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        ValueGen::HexId {
            prefix: "blk_".into(),
            digits: 4,
            upper: true,
        }
        .render(&mut rng, 0, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("blk_"));
        assert_eq!(s.len(), 8);
        assert!(s[4..].chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn timestamp_advances() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = ValueGen::Timestamp {
            date: "2021-03-14",
            start_sec: 3600,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        g.render(&mut rng, 0, &mut a);
        g.render(&mut rng, 5000, &mut b);
        assert!(a.starts_with(b"2021-03-14 01:00:00"));
        assert_ne!(a, b);
    }

    #[test]
    fn choice_respects_options() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = ValueGen::Choice {
            options: &[("OK", 9), ("ERR", 1)],
        };
        let mut oks = 0;
        for _ in 0..1000 {
            let mut out = Vec::new();
            g.render(&mut rng, 0, &mut out);
            assert!(out == b"OK" || out == b"ERR");
            if out == b"OK" {
                oks += 1;
            }
        }
        assert!(oks > 800 && oks < 1000, "oks {oks}");
    }

    #[test]
    fn spec_generation() {
        let spec = LogSpec {
            name: "test".into(),
            templates: vec![
                tpl(3, vec![t("ok "), counter(0, 0)]),
                tpl(1, vec![t("err "), hex("id_", 4, false)]),
            ],
            queries: vec!["err".into()],
        };
        let raw = spec.generate(1, 4096);
        assert!(raw.len() >= 4096);
        let text = String::from_utf8(raw).unwrap();
        assert!(text.lines().any(|l| l.starts_with("ok ")));
        assert!(text.lines().any(|l| l.starts_with("err id_")));
    }
}
