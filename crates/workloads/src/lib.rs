//! Synthetic log workloads standing in for the paper's datasets.
//!
//! The paper evaluates on 21 types of Alibaba Cloud production logs (1.73 TB,
//! private) and 16 public Loghub logs (77 GB). This crate substitutes seeded
//! generators that reproduce the *structural* properties LogGrep exploits:
//!
//! * printf-style static templates per log type,
//! * per-variable **runtime patterns** — fixed prefixes (`blk_<*>`),
//!   timestamps confined to a range, IPs in one subnet, paths under a common
//!   root, hex ids with shared stems,
//! * **nominal** variables — small dictionaries of levels / error codes /
//!   user names with skewed frequencies, and
//! * rare "error" lines that the Table-1-style queries target.
//!
//! Everything is deterministic in `(log name, seed, size)`, so experiments
//! are reproducible.
//!
//! # Examples
//!
//! ```
//! let spec = workloads::by_name("Log A").unwrap();
//! let raw = spec.generate(42, 64 * 1024);
//! assert!(raw.len() >= 64 * 1024);
//! assert!(!spec.queries.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod gen;

pub use gen::{LogSpec, Part, TemplateSpec, ValueGen};

/// The 21 production-style logs (Log A .. Log U).
pub fn production_logs() -> Vec<LogSpec> {
    catalog::production()
}

/// The 16 public-style logs (Android .. Zookeeper).
pub fn public_logs() -> Vec<LogSpec> {
    catalog::public()
}

/// All 37 logs.
pub fn all_logs() -> Vec<LogSpec> {
    let mut v = production_logs();
    v.extend(public_logs());
    v
}

/// Looks a log up by name.
pub fn by_name(name: &str) -> Option<LogSpec> {
    all_logs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        assert_eq!(production_logs().len(), 21);
        assert_eq!(public_logs().len(), 16);
        assert_eq!(all_logs().len(), 37);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_logs().into_iter().map(|s| s.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn generation_is_deterministic() {
        for spec in all_logs().into_iter().take(5) {
            let a = spec.generate(7, 8 * 1024);
            let b = spec.generate(7, 8 * 1024);
            assert_eq!(a, b, "{}", spec.name);
            let c = spec.generate(8, 8 * 1024);
            assert_ne!(a, c, "{} should vary by seed", spec.name);
        }
    }

    #[test]
    fn every_log_generates_clean_text() {
        for spec in all_logs() {
            let raw = spec.generate(1, 16 * 1024);
            assert!(raw.len() >= 16 * 1024, "{} too small", spec.name);
            assert!(!raw.contains(&0u8), "{} contains NUL", spec.name);
            assert!(raw.ends_with(b"\n"), "{}", spec.name);
            // No blank lines (every template renders nonempty).
            for line in raw.split(|&b| b == b'\n') {
                if line.is_empty() {
                    continue; // Final split artifact.
                }
                assert!(line.len() > 4, "{}: short line {:?}", spec.name, line);
            }
        }
    }

    #[test]
    fn primary_queries_hit_something() {
        use loggrep::query::lang::Query;
        for spec in all_logs() {
            let raw = spec.generate(3, 256 * 1024);
            let lines: Vec<&[u8]> = raw[..raw.len() - 1].split(|&b| b == b'\n').collect();
            let q = Query::parse(&spec.queries[0])
                .unwrap_or_else(|e| panic!("{}: bad query: {e}", spec.name));
            let hits = lines
                .iter()
                .filter(|l| q.expr.matches_line(l, logparse::DEFAULT_DELIMS))
                .count();
            assert!(
                hits > 0,
                "{}: query `{}` found nothing in {} lines",
                spec.name,
                spec.queries[0],
                lines.len()
            );
            // Queries should be selective, not match-everything.
            assert!(
                hits * 2 < lines.len(),
                "{}: query `{}` matches {}/{} lines",
                spec.name,
                spec.queries[0],
                hits,
                lines.len()
            );
        }
    }
}
