//! Node storage: replicated blocks with a crash-safe stage/commit cycle.
//!
//! A replica of a block exists in one of two states on a node:
//!
//! * **staged** — the serialized CapsuleBox bytes arrived (the prepare
//!   half of ingest) but the coordinator has not acknowledged the block
//!   yet. Staged replicas are volatile: a node restart discards them.
//! * **committed** — the coordinator saw every replica stage successfully
//!   and promoted the block. Committed replicas are durable: they survive
//!   crash/restart cycles and serve queries.
//!
//! Blocks are stored as wire bytes, with the opened [`Archive`] cached
//! lazily behind a mutex, so fault-injection helpers can corrupt the
//! stored bytes and the next read re-opens (and fails checksum
//! validation) exactly like a real on-disk replica would.

use crate::transport::NodeId;
use loggrep::Archive;
use parking_lot::Mutex;
use std::sync::Arc;

/// One replica of a block on one node.
struct StoredBlock {
    block_no: usize,
    shard: usize,
    bytes: Vec<u8>,
    /// Lazily opened archive; invalidated when the bytes are mutated.
    archive: Mutex<Option<Arc<Archive>>>,
}

impl StoredBlock {
    fn open(&self) -> Result<Arc<Archive>, String> {
        let mut cached = self.archive.lock();
        if let Some(a) = cached.as_ref() {
            return Ok(Arc::clone(a));
        }
        let archive = Archive::from_bytes(&self.bytes)
            .map_err(|e| format!("block {}: {e}", self.block_no))?;
        let archive = Arc::new(archive);
        *cached = Some(Arc::clone(&archive));
        Ok(archive)
    }
}

/// One storage node: owns staged and committed block replicas.
pub struct Node {
    /// Node id (0-based).
    pub id: NodeId,
    committed: Vec<StoredBlock>,
    staged: Vec<StoredBlock>,
}

impl Node {
    pub(crate) fn new(id: NodeId) -> Self {
        Self {
            id,
            committed: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// Number of committed blocks on this node.
    pub fn block_count(&self) -> usize {
        self.committed.len()
    }

    /// Sum of committed replica bytes on this node.
    pub fn stored_bytes(&self) -> usize {
        self.committed.iter().map(|b| b.bytes.len()).sum()
    }

    /// Stages a block replica (the prepare half of ingest).
    pub(crate) fn stage(&mut self, block_no: usize, shard: usize, bytes: Vec<u8>) {
        self.staged.push(StoredBlock {
            block_no,
            shard,
            bytes,
            archive: Mutex::new(None),
        });
    }

    /// Promotes a staged replica to committed (the acknowledge half).
    pub(crate) fn commit(&mut self, block_no: usize) {
        if let Some(pos) = self.staged.iter().position(|b| b.block_no == block_no) {
            let block = self.staged.swap_remove(pos);
            let at = self
                .committed
                .partition_point(|b| b.block_no < block.block_no);
            self.committed.insert(at, block);
        }
    }

    /// Drops a staged replica (prepare failed on a peer).
    pub(crate) fn abort(&mut self, block_no: usize) {
        self.staged.retain(|b| b.block_no != block_no);
    }

    /// Drops a committed replica (batch rollback).
    pub(crate) fn drop_block(&mut self, block_no: usize) {
        self.committed.retain(|b| b.block_no != block_no);
    }

    /// Crash recovery: staged replicas were never acknowledged, so a
    /// restart discards them; committed replicas survive.
    pub(crate) fn restart(&mut self) {
        self.staged.clear();
    }

    /// Runs `command` against every committed block of `shard`, in block
    /// order. Any open or query error aborts with that error, so the
    /// gather layer can fall back to another replica.
    pub(crate) fn query_shard(
        &self,
        shard: usize,
        command: &str,
    ) -> Result<Vec<(usize, u32, Vec<u8>)>, String> {
        let mut out = Vec::new();
        for block in self.committed.iter().filter(|b| b.shard == shard) {
            let archive = block.open()?;
            let result = archive
                .query(command)
                .map_err(|e| format!("block {}: {e}", block.block_no))?;
            for (lineno, line) in result.line_numbers.iter().zip(result.lines) {
                out.push((block.block_no, *lineno, line));
            }
        }
        Ok(out)
    }

    /// Fault injection: mutates the stored bytes of a committed replica
    /// and invalidates its archive cache, so the next read re-opens the
    /// corrupted bytes. Returns false if the replica is not here.
    pub(crate) fn corrupt_block(
        &mut self,
        block_no: usize,
        f: impl FnOnce(&mut Vec<u8>),
    ) -> bool {
        let Some(block) = self.committed.iter_mut().find(|b| b.block_no == block_no) else {
            return false;
        };
        f(&mut block.bytes);
        *block.archive.lock() = None;
        true
    }
}
