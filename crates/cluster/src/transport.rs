//! Deterministic simulated network between the coordinator and the nodes.
//!
//! Every interaction with a [`crate::replication::Node`] goes through a
//! [`SimNet`], which decides per message whether it is delivered and at
//! what simulated latency. Fault decisions are a **pure function of the
//! plan seed and the message's context** (destination, topic, attempt,
//! kind) — not of wall-clock time or thread interleaving — so a fault run
//! replays byte-identically from its seed, exactly like a difftest case.
//!
//! Two kinds of state exist on top of that stateless hash:
//!
//! * **node liveness** — crashed / partitioned / slow flags, togglable at
//!   runtime ([`SimNet::crash`], [`SimNet::restart`], [`SimNet::partition`],
//!   [`SimNet::heal`], [`SimNet::set_slow`]) and seedable from the
//!   [`FaultPlan`];
//! * **crash triggers** — `crash_after_messages` counts messages per node
//!   and downs the node permanently once the budget is exceeded, which is
//!   how tests crash a replica *mid-ingest* deterministically.
//!
//! Latency is simulated, not slept: a reply carries its virtual
//! round-trip in microseconds and the scatter-gather layer advances a
//! per-shard virtual clock, so deadlines, backoff, and hedging are all
//! exact and instant in CI.

use parking_lot::Mutex;

/// Index of a storage node.
pub type NodeId = usize;

/// What a message is for. Part of the per-message fault hash so that the
/// same (node, topic, attempt) pair gets independent fault draws for its
/// primary, hedge, and fallback sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Primary query send for one shard attempt.
    Query,
    /// Hedged (backup) query send.
    Hedge,
    /// Replica fallback send after a data error.
    Fallback,
    /// Ingest: store a block replica.
    Store,
    /// Ingest: roll a staged or committed replica back.
    Rollback,
}

impl MsgKind {
    fn salt(self) -> u64 {
        match self {
            MsgKind::Query => 0x51,
            MsgKind::Hedge => 0x48,
            MsgKind::Fallback => 0x46,
            MsgKind::Store => 0x53,
            MsgKind::Rollback => 0x52,
        }
    }
}

/// Per-message context fed into the fault hash.
#[derive(Debug, Clone, Copy)]
pub struct MsgCtx {
    /// What the message is about (shard id for queries, block number for
    /// ingest) — distinct topics get independent fault draws.
    pub topic: u64,
    /// Zero-based retry attempt, so a retried message is a *new* draw.
    pub attempt: u64,
    /// The message kind.
    pub kind: MsgKind,
}

/// The outcome of one simulated message round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered and answered after `latency_us` of simulated time.
    Reply {
        /// Simulated round-trip latency in microseconds.
        latency_us: u64,
    },
    /// Dropped, node down, or partitioned — the caller observes only its
    /// own timeout.
    Lost,
}

/// A seeded, declarative fault schedule for a [`SimNet`].
///
/// The default plan is a healthy low-latency network: no drops, no dead
/// or slow nodes, 100–200 µs simulated round-trips.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for every randomized decision (drops, latency jitter).
    pub seed: u64,
    /// Base simulated round-trip latency in microseconds.
    pub base_latency_us: u64,
    /// Uniform jitter added on top of the base latency.
    pub jitter_us: u64,
    /// Probability in `[0, 1]` that any given message is dropped.
    pub drop_rate: f64,
    /// Latency multiplier applied to slow nodes.
    pub slow_factor: u64,
    /// Nodes that are down from the start.
    pub dead_nodes: Vec<NodeId>,
    /// Nodes whose replies are `slow_factor` slower.
    pub slow_nodes: Vec<NodeId>,
    /// Nodes unreachable from the coordinator from the start.
    pub partitioned_nodes: Vec<NodeId>,
    /// `(node, n)`: the node crashes permanently after its n-th message.
    pub crash_after_messages: Vec<(NodeId, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            base_latency_us: 100,
            jitter_us: 100,
            drop_rate: 0.0,
            slow_factor: 20,
            dead_nodes: Vec::new(),
            slow_nodes: Vec::new(),
            partitioned_nodes: Vec::new(),
            crash_after_messages: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A healthy plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Whether the plan injects any fault at all (latency aside).
    pub fn has_faults(&self) -> bool {
        self.drop_rate > 0.0
            || !self.dead_nodes.is_empty()
            || !self.slow_nodes.is_empty()
            || !self.partitioned_nodes.is_empty()
            || !self.crash_after_messages.is_empty()
    }
}

#[derive(Debug)]
struct NodeState {
    up: bool,
    partitioned: bool,
    slow: bool,
    messages: u64,
    crash_after: Option<u64>,
}

/// Point-in-time liveness of one node, for status displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHealth {
    /// The node.
    pub id: NodeId,
    /// False once crashed (and not yet restarted).
    pub up: bool,
    /// True while partitioned away from the coordinator.
    pub partitioned: bool,
    /// True while marked slow.
    pub slow: bool,
}

impl NodeHealth {
    /// Whether the coordinator can currently reach the node.
    pub fn reachable(&self) -> bool {
        self.up && !self.partitioned
    }
}

/// The simulated network.
pub struct SimNet {
    plan: FaultPlan,
    state: Mutex<Vec<NodeState>>,
}

/// splitmix64 finalizer: mixes message context into fault draws.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimNet {
    /// Builds a network for `nodes` nodes under `plan`.
    pub fn new(nodes: usize, plan: FaultPlan) -> Self {
        let state = (0..nodes)
            .map(|id| NodeState {
                up: !plan.dead_nodes.contains(&id),
                partitioned: plan.partitioned_nodes.contains(&id),
                slow: plan.slow_nodes.contains(&id),
                messages: 0,
                crash_after: plan
                    .crash_after_messages
                    .iter()
                    .find(|(n, _)| *n == id)
                    .map(|(_, limit)| *limit),
            })
            .collect();
        let net = Self {
            plan,
            state: Mutex::new(state),
        };
        net.publish_health();
        net
    }

    /// The plan this network runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One simulated round-trip to `to`.
    pub fn rpc(&self, to: NodeId, ctx: MsgCtx) -> Delivery {
        telemetry::counter!("cluster.rpc.sent", 1);
        let slow = {
            let mut state = self.state.lock();
            let Some(node) = state.get_mut(to) else {
                telemetry::counter!("cluster.rpc.lost", 1);
                return Delivery::Lost;
            };
            node.messages += 1;
            if let Some(limit) = node.crash_after {
                if node.up && node.messages > limit {
                    node.up = false;
                    drop(state);
                    self.publish_health();
                    telemetry::counter!("cluster.rpc.lost", 1);
                    return Delivery::Lost;
                }
            }
            if !node.up || node.partitioned {
                telemetry::counter!("cluster.rpc.lost", 1);
                return Delivery::Lost;
            }
            node.slow
        };

        // Stateless per-message draw: destination, topic, attempt and kind
        // fully determine drop and jitter, independent of scheduling.
        let h = mix(
            self.plan.seed
                ^ mix(to as u64)
                ^ mix(ctx.topic.wrapping_mul(0x9e37_79b9))
                ^ mix(ctx.attempt.wrapping_add(0x1000 * ctx.kind.salt())),
        );
        if self.plan.drop_rate > 0.0 {
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw < self.plan.drop_rate {
                telemetry::counter!("cluster.rpc.dropped", 1);
                telemetry::counter!("cluster.rpc.lost", 1);
                return Delivery::Lost;
            }
        }
        let jitter = if self.plan.jitter_us > 0 {
            mix(h) % (self.plan.jitter_us + 1)
        } else {
            0
        };
        let mut latency_us = self.plan.base_latency_us.saturating_add(jitter);
        if slow {
            latency_us = latency_us.saturating_mul(self.plan.slow_factor.max(1));
        }
        Delivery::Reply { latency_us }
    }

    /// Crashes a node: unreachable until [`SimNet::restart`].
    pub fn crash(&self, node: NodeId) {
        self.set_state(node, |n| n.up = false);
    }

    /// Restarts a crashed node (committed storage survives; the storage
    /// layer separately discards anything only staged).
    pub fn restart(&self, node: NodeId) {
        self.set_state(node, |n| {
            n.up = true;
            // A restart clears a pending crash trigger — it already fired.
            if n.crash_after.is_some_and(|limit| n.messages > limit) {
                n.crash_after = None;
            }
        });
    }

    /// Partitions a node away from the coordinator.
    pub fn partition(&self, node: NodeId) {
        self.set_state(node, |n| n.partitioned = true);
    }

    /// Heals a partition.
    pub fn heal(&self, node: NodeId) {
        self.set_state(node, |n| n.partitioned = false);
    }

    /// Marks or unmarks a node slow (`slow_factor` latency multiplier).
    pub fn set_slow(&self, node: NodeId, slow: bool) {
        self.set_state(node, |n| n.slow = slow);
    }

    /// Whether the coordinator can currently reach `node`.
    pub fn reachable(&self, node: NodeId) -> bool {
        self.state
            .lock()
            .get(node)
            .is_some_and(|n| n.up && !n.partitioned)
    }

    /// Liveness of every node.
    pub fn health(&self) -> Vec<NodeHealth> {
        self.state
            .lock()
            .iter()
            .enumerate()
            .map(|(id, n)| NodeHealth {
                id,
                up: n.up,
                partitioned: n.partitioned,
                slow: n.slow,
            })
            .collect()
    }

    fn set_state(&self, node: NodeId, f: impl FnOnce(&mut NodeState)) {
        {
            let mut state = self.state.lock();
            if let Some(n) = state.get_mut(node) {
                f(n);
            }
        }
        self.publish_health();
    }

    /// Refreshes the `cluster.nodes_up` and per-node `cluster.node_up.N`
    /// health gauges from the current liveness state.
    fn publish_health(&self) {
        let state = self.state.lock();
        let mut up = 0i64;
        for (id, n) in state.iter().enumerate() {
            let reachable = n.up && !n.partitioned;
            up += i64::from(reachable);
            telemetry::gauge(&format!("cluster.node_up.{id}")).set(i64::from(reachable));
        }
        telemetry::gauge("cluster.nodes_up").set(up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(topic: u64, attempt: u64, kind: MsgKind) -> MsgCtx {
        MsgCtx {
            topic,
            attempt,
            kind,
        }
    }

    #[test]
    fn healthy_net_always_replies_deterministically() {
        let a = SimNet::new(3, FaultPlan::seeded(7));
        let b = SimNet::new(3, FaultPlan::seeded(7));
        for node in 0..3 {
            for attempt in 0..4 {
                let x = a.rpc(node, ctx(9, attempt, MsgKind::Query));
                let y = b.rpc(node, ctx(9, attempt, MsgKind::Query));
                assert_eq!(x, y);
                assert!(matches!(x, Delivery::Reply { .. }));
            }
        }
    }

    #[test]
    fn fault_draws_are_independent_of_send_order() {
        let plan = FaultPlan {
            seed: 11,
            drop_rate: 0.5,
            ..FaultPlan::default()
        };
        let forward = SimNet::new(2, plan.clone());
        let backward = SimNet::new(2, plan);
        let ctxs: Vec<MsgCtx> = (0..16).map(|i| ctx(i, 0, MsgKind::Query)).collect();
        let f: Vec<Delivery> = ctxs.iter().map(|c| forward.rpc(1, *c)).collect();
        let mut b: Vec<Delivery> = ctxs.iter().rev().map(|c| backward.rpc(1, *c)).collect();
        b.reverse();
        assert_eq!(f, b);
        assert!(f.contains(&Delivery::Lost), "0.5 drop rate");
        assert!(f.iter().any(|d| matches!(d, Delivery::Reply { .. })));
    }

    #[test]
    fn crash_partition_and_slow_are_togglable() {
        let net = SimNet::new(2, FaultPlan::seeded(1));
        let q = ctx(0, 0, MsgKind::Query);
        assert!(net.reachable(0));
        net.crash(0);
        assert_eq!(net.rpc(0, q), Delivery::Lost);
        net.restart(0);
        assert!(matches!(net.rpc(0, q), Delivery::Reply { .. }));
        net.partition(0);
        assert!(!net.reachable(0));
        assert_eq!(net.rpc(0, q), Delivery::Lost);
        net.heal(0);
        let Delivery::Reply { latency_us: fast } = net.rpc(0, q) else {
            panic!("healed node should reply");
        };
        net.set_slow(0, true);
        let Delivery::Reply { latency_us: slow } = net.rpc(0, q) else {
            panic!("slow node should still reply");
        };
        assert!(slow >= fast * 10, "slow {slow} vs fast {fast}");
        assert!(net.health()[0].slow);
    }

    #[test]
    fn crash_after_messages_downs_the_node_permanently() {
        let plan = FaultPlan {
            seed: 3,
            crash_after_messages: vec![(1, 2)],
            ..FaultPlan::default()
        };
        let net = SimNet::new(2, plan);
        let q = ctx(5, 0, MsgKind::Store);
        assert!(matches!(net.rpc(1, q), Delivery::Reply { .. }));
        assert!(matches!(net.rpc(1, q), Delivery::Reply { .. }));
        assert_eq!(net.rpc(1, q), Delivery::Lost, "third message crashes");
        assert_eq!(net.rpc(1, q), Delivery::Lost);
        assert!(!net.reachable(1));
        net.restart(1);
        assert!(matches!(net.rpc(1, q), Delivery::Reply { .. }));
    }

    #[test]
    fn dead_and_partitioned_plans_apply_from_start() {
        let plan = FaultPlan {
            seed: 2,
            dead_nodes: vec![0],
            partitioned_nodes: vec![2],
            slow_nodes: vec![1],
            ..FaultPlan::default()
        };
        let net = SimNet::new(3, plan);
        assert!(!net.reachable(0));
        assert!(net.reachable(1));
        assert!(!net.reachable(2));
        let health = net.health();
        assert!(!health[0].up && health[2].partitioned && health[1].slow);
        assert!(net.plan().has_faults());
        assert!(!FaultPlan::default().has_faults());
    }

    #[test]
    fn out_of_range_node_is_lost() {
        let net = SimNet::new(1, FaultPlan::default());
        assert_eq!(net.rpc(9, ctx(0, 0, MsgKind::Query)), Delivery::Lost);
    }
}
