//! Distributed LogGrep — the scaling direction §8 names as future work,
//! grown into a fault-tolerant replicated cluster.
//!
//! The paper's system compresses and queries one 64 MB block at a time on
//! one machine. This crate scales that out in-process, with failure as a
//! first-class, deterministic, CI-testable concern:
//!
//! * every coordinator↔node interaction goes through a seeded simulated
//!   network ([`SimNet`]) that can inject latency, message drops, node
//!   crashes/restarts, slow nodes, and partitions — replayable from its
//!   seed exactly like a difftest case;
//! * blocks hash to shards via an explicit [`ShardMap`] with
//!   **replication factor N**: ingest writes every replica and a block is
//!   acknowledged only when all replicas committed (otherwise the batch
//!   rolls back); reads fall back to surviving replicas;
//! * queries scatter per shard with **deadlines, bounded retries
//!   (exponential backoff + deterministic jitter), and hedged reads**,
//!   then gather in global line order. A failed shard no longer fails the
//!   query: [`ClusterResult`] carries partial results, per-shard
//!   [`ShardStatus`], and a `complete` flag, with an optional error
//!   budget that turns excessive failure back into an error;
//! * ingest has **admission control**: bounded per-node queues
//!   ([`pool::BoundedQueue`]) reject overload with
//!   [`ClusterError::Overloaded`] and a retry-after hint.
//!
//! Every node records into the process-wide telemetry registry
//! (`cluster.retries`, `cluster.hedges`, `cluster.read_fallback`,
//! `cluster.nodes_up`, ...), so the [`Cluster::serve_metrics`] embedding
//! exposes the combined view over HTTP.
//!
//! # Examples
//!
//! ```
//! use cluster::Cluster;
//! use loggrep::LogGrepConfig;
//!
//! let mut cluster = Cluster::new(4, LogGrepConfig::default()).unwrap();
//! cluster.ingest(b"a 1 ok\nb 2 err\na 3 ok\n", 2).unwrap();
//! let hits = cluster.query("ok").unwrap();
//! assert!(hits.complete);
//! assert_eq!(hits.lines.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod gather;
pub mod placement;
pub mod replication;
pub mod transport;

pub use gather::{RetryPolicy, ShardStatus};
pub use placement::ShardMap;
pub use replication::Node;
pub use transport::{Delivery, FaultPlan, MsgCtx, MsgKind, NodeHealth, NodeId, SimNet};

use loggrep::{LogGrep, LogGrepConfig};
use std::collections::BTreeMap;
use std::fmt;

/// How many times ingest retries an unreachable replica before giving up
/// on the batch.
const INGEST_RETRIES: u64 = 4;

/// The `cluster.blocks` gauge: logical blocks currently committed across
/// all in-process clusters (replicas of one block count once).
fn blocks_gauge() -> &'static telemetry::Gauge {
    static G: std::sync::OnceLock<&'static telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| telemetry::gauge("cluster.blocks"))
}

/// The `cluster.ingest_queue` gauge: blocks admitted but not yet
/// committed or rolled back, summed over the per-node queues.
fn ingest_queue_gauge() -> &'static telemetry::Gauge {
    static G: std::sync::OnceLock<&'static telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| telemetry::gauge("cluster.ingest_queue"))
}

/// Errors from cluster construction, ingest, and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Invalid topology (zero nodes, replication factor out of range, ...).
    Config(String),
    /// Ingest admission control rejected the batch: a node's queue is
    /// full. Retry after roughly `retry_after_ms` milliseconds.
    Overloaded {
        /// The node whose queue overflowed.
        node: NodeId,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// Ingest failed (compression error or a replica set that could not
    /// be written); the batch was rolled back.
    Ingest(String),
    /// The query itself is invalid (parse error).
    Query(String),
    /// More shards failed than the caller's error budget allows.
    BudgetExceeded {
        /// Shards that did not answer.
        failed: usize,
        /// The caller's budget.
        budget: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "invalid cluster config: {e}"),
            ClusterError::Overloaded {
                node,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: node {node} ingest queue is full, retry after {retry_after_ms} ms"
            ),
            ClusterError::Ingest(e) => write!(f, "ingest failed (batch rolled back): {e}"),
            ClusterError::Query(e) => write!(f, "invalid query: {e}"),
            ClusterError::BudgetExceeded { failed, budget } => write!(
                f,
                "{failed} shard(s) failed, exceeding the error budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Cluster topology and behavior knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage nodes (must be ≥ 1).
    pub nodes: usize,
    /// Copies of every shard (must be in `1..=nodes`).
    pub replication: usize,
    /// Number of shards; 0 means `4 × nodes`.
    pub shards: usize,
    /// Per-node ingest admission queue capacity (blocks).
    pub queue_capacity: usize,
    /// Engine configuration shared by all nodes.
    pub engine: LogGrepConfig,
    /// Simulated-network fault schedule.
    pub faults: FaultPlan,
    /// Read-path retry/timeout/hedging policy.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    /// A single-replica configuration for `nodes` nodes over a healthy
    /// network — the drop-in equivalent of the pre-replication cluster.
    pub fn for_nodes(nodes: usize, engine: LogGrepConfig) -> Self {
        Self {
            nodes,
            replication: 1,
            shards: 0,
            queue_capacity: 128,
            engine,
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-query options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOpts {
    /// Maximum failed shards tolerated before the query returns
    /// [`ClusterError::BudgetExceeded`] instead of a partial result.
    /// `None` (the default) always returns the partial result and lets
    /// the caller inspect [`ClusterResult::complete`].
    pub max_failed_shards: Option<usize>,
}

/// A query result gathered from the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Matching lines from every shard that answered, in global log order.
    pub lines: Vec<Vec<u8>>,
    /// `(block, line-in-block)` of each hit, parallel to `lines`.
    pub locations: Vec<(usize, u32)>,
    /// True when every shard answered within its deadline.
    pub complete: bool,
    /// Per-shard outcome, in shard order (only shards that hold blocks).
    pub shards: Vec<ShardStatus>,
}

impl ClusterResult {
    /// The shards that did not answer.
    pub fn failed_shards(&self) -> impl Iterator<Item = &ShardStatus> {
        self.shards.iter().filter(|s| !s.ok)
    }
}

/// An in-process replicated LogGrep cluster.
pub struct Cluster {
    config: ClusterConfig,
    map: ShardMap,
    net: SimNet,
    nodes: Vec<Node>,
    engine: LogGrep,
    pool: pool::Pool,
    queues: Vec<pool::BoundedQueue<usize>>,
    /// Committed blocks per shard, in block order.
    blocks_by_shard: BTreeMap<usize, Vec<usize>>,
    next_block: usize,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("map", &self.map)
            .field("blocks", &self.block_count())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Creates a cluster of `nodes` empty single-replica nodes sharing one
    /// engine configuration over a healthy simulated network.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Config`] when `nodes` is zero (this was a
    /// documented panic before the API was hardened).
    pub fn new(nodes: usize, config: LogGrepConfig) -> Result<Self, ClusterError> {
        Self::with_config(ClusterConfig::for_nodes(nodes, config))
    }

    /// Creates a cluster from a full [`ClusterConfig`].
    pub fn with_config(config: ClusterConfig) -> Result<Self, ClusterError> {
        let shards = if config.shards == 0 {
            config.nodes.saturating_mul(4)
        } else {
            config.shards
        };
        let map = ShardMap::new(config.nodes, shards, config.replication)
            .map_err(ClusterError::Config)?;
        let net = SimNet::new(config.nodes, config.faults.clone());
        let nodes = (0..config.nodes).map(Node::new).collect();
        let queues = (0..config.nodes)
            .map(|_| pool::BoundedQueue::new(config.queue_capacity))
            .collect();
        let engine = LogGrep::new(config.engine.clone());
        Ok(Self {
            map,
            net,
            nodes,
            engine,
            pool: pool::Pool::from_env(),
            queues,
            blocks_by_shard: BTreeMap::new(),
            next_block: 0,
            config,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total committed logical blocks across the cluster.
    pub fn block_count(&self) -> usize {
        self.blocks_by_shard.values().map(Vec::len).sum()
    }

    /// The nodes (for inspection in tests and examples).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The explicit shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The simulated network, for runtime fault injection.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Crashes a node (unreachable until restarted).
    pub fn crash_node(&mut self, node: NodeId) {
        self.net.crash(node);
    }

    /// Restarts a crashed node. Committed replicas survive; staged
    /// replicas from interrupted ingests are discarded (crash safety).
    pub fn restart_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.restart();
        }
        self.net.restart(node);
    }

    /// Partitions a node away from the coordinator.
    pub fn partition_node(&mut self, node: NodeId) {
        self.net.partition(node);
    }

    /// Heals a partitioned node.
    pub fn heal_node(&mut self, node: NodeId) {
        self.net.heal(node);
    }

    /// Marks or unmarks a node as slow.
    pub fn set_slow_node(&mut self, node: NodeId, slow: bool) {
        self.net.set_slow(node, slow);
    }

    /// Splits `raw` into blocks of at most `block_bytes` (on line
    /// boundaries), compresses them in parallel, and writes every block to
    /// all replicas of its shard. A block is acknowledged only once every
    /// replica committed; any failure rolls the whole batch back. Returns
    /// the number of blocks ingested.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::Overloaded`] — a node's admission queue is full;
    ///   nothing was ingested, retry after the hinted delay.
    /// * [`ClusterError::Ingest`] — compression failed or a replica set
    ///   could not be written; the batch was rolled back and the cluster
    ///   is exactly as before the call.
    pub fn ingest(&mut self, raw: &[u8], block_bytes: usize) -> Result<usize, ClusterError> {
        let _span = telemetry::span("cluster/ingest");
        let blocks = split_blocks(raw, block_bytes.max(1));
        let n = blocks.len();
        if n == 0 {
            return Ok(0);
        }
        let first = self.next_block;

        // Admission control: every replica write must fit its node's
        // bounded queue, or the whole batch is rejected up front.
        let mut admitted: Vec<NodeId> = Vec::with_capacity(n * self.map.replication());
        for i in 0..n {
            let shard = self.map.shard_of_block(first + i);
            for r in self.map.replicas(shard) {
                match self.queues[r].try_push(first + i) {
                    Ok(_) => admitted.push(r),
                    Err(_) => {
                        for &a in &admitted {
                            self.queues[a].pop();
                        }
                        telemetry::counter!("cluster.overloaded", 1);
                        let retry_after_ms = (self.queues[r].len() as u64).max(1) * 2;
                        return Err(ClusterError::Overloaded {
                            node: r,
                            retry_after_ms,
                        });
                    }
                }
            }
        }
        ingest_queue_gauge().set(admitted.len() as i64);
        telemetry::counter!("cluster.blocks_ingested", n as u64);

        // Parallel compression on the shared worker pool, order-preserving
        // and byte-identical to serial.
        let engine = &self.engine;
        let compressed: Result<Vec<Vec<u8>>, String> = self
            .pool
            .try_map(&blocks, |_, block| {
                engine
                    .compress(block)
                    .map(|boxed| boxed.to_bytes())
                    .map_err(|e| e.to_string())
            });
        let compressed = match compressed {
            Ok(c) => c,
            Err(e) => {
                self.drain_queues();
                return Err(ClusterError::Ingest(e));
            }
        };

        // Replicated two-phase write: stage on every replica, then commit.
        let mut committed: Vec<usize> = Vec::with_capacity(n);
        for (i, bytes) in compressed.iter().enumerate() {
            let block_no = first + i;
            let shard = self.map.shard_of_block(block_no);
            let replicas = self.map.replicas(shard);
            let mut prepared: Vec<NodeId> = Vec::with_capacity(replicas.len());
            let mut failure: Option<String> = None;
            for &r in &replicas {
                if self.store_replica(r, block_no, shard, bytes) {
                    prepared.push(r);
                } else {
                    failure = Some(format!(
                        "replica node {r} unreachable while writing block {block_no}"
                    ));
                    break;
                }
            }
            if let Some(err) = failure {
                for &r in &prepared {
                    self.nodes[r].abort(block_no);
                }
                self.rollback_batch(&committed);
                self.drain_queues();
                return Err(ClusterError::Ingest(err));
            }
            for &r in &replicas {
                self.nodes[r].commit(block_no);
                self.queues[r].pop();
            }
            blocks_gauge().add(1);
            self.blocks_by_shard.entry(shard).or_default().push(block_no);
            committed.push(block_no);
            ingest_queue_gauge().set(
                self.queues.iter().map(pool::BoundedQueue::len).sum::<usize>() as i64,
            );
        }
        self.next_block += n;
        Ok(n)
    }

    /// Stages one replica through the simulated network, with bounded
    /// retries for dropped messages.
    fn store_replica(&mut self, node: NodeId, block_no: usize, shard: usize, bytes: &[u8]) -> bool {
        for attempt in 0..INGEST_RETRIES {
            let ctx = MsgCtx {
                topic: block_no as u64,
                attempt,
                kind: MsgKind::Store,
            };
            if let Delivery::Reply { .. } = self.net.rpc(node, ctx) {
                self.nodes[node].stage(block_no, shard, bytes.to_vec());
                return true;
            }
            if attempt > 0 {
                telemetry::counter!("cluster.retries", 1);
            }
        }
        false
    }

    /// Rolls back every block of a failed batch from all its replicas.
    fn rollback_batch(&mut self, committed: &[usize]) {
        if committed.is_empty() {
            return;
        }
        telemetry::counter!("cluster.ingest_rollback", 1);
        for &block_no in committed {
            let shard = self.map.shard_of_block(block_no);
            for r in self.map.replicas(shard) {
                // Best-effort rollback message; the state change is
                // authoritative (the coordinator's abort record).
                // lint:allow(swallowed-result) — a failed rollback RPC is re-driven by the abort record; nothing to handle here
                let _ = self.net.rpc(
                    r,
                    MsgCtx {
                        topic: block_no as u64,
                        attempt: 0,
                        kind: MsgKind::Rollback,
                    },
                );
                self.nodes[r].drop_block(block_no);
            }
            blocks_gauge().add(-1);
            if let Some(list) = self.blocks_by_shard.get_mut(&shard) {
                list.retain(|&b| b != block_no);
                if list.is_empty() {
                    self.blocks_by_shard.remove(&shard);
                }
            }
        }
    }

    fn drain_queues(&self) {
        for q in &self.queues {
            q.clear();
        }
        ingest_queue_gauge().set(0);
    }

    /// Scatter-gather query with the default options: failed shards yield
    /// a partial result (`complete == false`), never an error.
    pub fn query(&self, command: &str) -> Result<ClusterResult, ClusterError> {
        self.query_with(command, &QueryOpts::default())
    }

    /// Scatter-gather query: every shard is read from its replica set
    /// under the configured [`RetryPolicy`]; results merge in global
    /// order. Shards that miss their deadline are reported in
    /// [`ClusterResult::shards`] and drop the `complete` flag; when
    /// `opts.max_failed_shards` is set and exceeded, the query returns
    /// [`ClusterError::BudgetExceeded`] instead.
    pub fn query_with(
        &self,
        command: &str,
        opts: &QueryOpts,
    ) -> Result<ClusterResult, ClusterError> {
        let _trace = telemetry::trace_scope();
        let _span = telemetry::span("cluster/query");
        telemetry::counter!("cluster.queries", 1);
        // Parse once at the coordinator so an invalid query is an error,
        // not a unanimous "partial" failure.
        loggrep::Query::parse(command).map_err(|e| ClusterError::Query(e.to_string()))?;

        let mut statuses = Vec::with_capacity(self.blocks_by_shard.len());
        let mut hits: Vec<(usize, u32, Vec<u8>)> = Vec::new();
        for (&shard, blocks) in &self.blocks_by_shard {
            let (status, shard_hits) = gather::query_shard(
                &self.net,
                &self.nodes,
                &self.config.retry,
                shard,
                blocks.clone(),
                self.map.replicas(shard),
                command,
            );
            hits.extend(shard_hits);
            statuses.push(status);
        }

        let failed = statuses.iter().filter(|s| !s.ok).count();
        let complete = failed == 0;
        if !complete {
            telemetry::counter!("cluster.partial_results", 1);
        }
        if let Some(budget) = opts.max_failed_shards {
            if failed > budget {
                return Err(ClusterError::BudgetExceeded { failed, budget });
            }
        }

        // Global order: block number, then the per-block logical timestamp.
        hits.sort_by_key(|h| (h.0, h.1));
        let mut lines = Vec::with_capacity(hits.len());
        let mut locations = Vec::with_capacity(hits.len());
        for (block, lineno, line) in hits {
            locations.push((block, lineno));
            lines.push(line);
        }
        Ok(ClusterResult {
            lines,
            locations,
            complete,
            shards: statuses,
        })
    }

    /// Total stored bytes across the cluster, replicas included.
    pub fn stored_bytes(&self) -> usize {
        self.nodes.iter().map(Node::stored_bytes).sum()
    }

    /// Fault injection for tests: applies seeded xorshift bit flips (the
    /// corrupt-archive mutation technique from the robustness suite) to
    /// one committed replica's stored bytes, invalidating its archive
    /// cache so the next read hits the corruption. Returns false when the
    /// node holds no replica of that block.
    pub fn corrupt_replica(&mut self, node: NodeId, block_no: usize, seed: u64) -> bool {
        self.corrupt_replica_with(node, block_no, |bytes| {
            let mut state = seed | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_f491_4f6c_dd1d)
            };
            for _ in 0..16 {
                let r = next();
                if bytes.is_empty() {
                    break;
                }
                let at = (r % bytes.len() as u64) as usize;
                bytes[at] ^= 1 << ((r >> 32) % 8);
            }
        })
    }

    /// Like [`Cluster::corrupt_replica`] with a caller-supplied mutator.
    pub fn corrupt_replica_with(
        &mut self,
        node: NodeId,
        block_no: usize,
        f: impl FnOnce(&mut Vec<u8>),
    ) -> bool {
        self.nodes
            .get_mut(node)
            .is_some_and(|n| n.corrupt_block(block_no, f))
    }

    /// Starts an embedded metrics endpoint for this process.
    ///
    /// Every node shares the process-wide telemetry registry, so the
    /// served `/metrics` page is the aggregation of all shards: cluster
    /// spans, retry/hedge/fallback counters, per-node health gauges, pool
    /// gauges, and cache counters in one Prometheus exposition. Pass
    /// `"127.0.0.1:0"` to bind an ephemeral port (read it back via
    /// [`telemetry::MetricsServer::local_addr`]).
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<telemetry::MetricsServer> {
        telemetry::MetricsServer::bind(addr)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        blocks_gauge().add(-(self.block_count() as i64));
    }
}

/// Splits raw logs into blocks of at most `block_bytes` on line
/// boundaries — the exact split the cluster ingests, exposed so oracles
/// (difftest, tests) can reproduce per-block expectations.
pub fn split_blocks(raw: &[u8], block_bytes: usize) -> Vec<&[u8]> {
    let block_bytes = block_bytes.max(1);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < raw.len() {
        let mut end = (start + block_bytes).min(raw.len());
        if end < raw.len() {
            while end < raw.len() && raw[end - 1] != b'\n' {
                end += 1;
            }
        }
        blocks.push(&raw[start..end]);
        start = end;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggrep::query::lang::Query;
    use logparse::DEFAULT_DELIMS;

    fn sample(lines: usize) -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..lines {
            raw.extend_from_slice(
                format!(
                    "{} req {} from host{}\n",
                    if i % 13 == 0 { "ERROR" } else { "INFO" },
                    i,
                    i % 7
                )
                .as_bytes(),
            );
        }
        raw
    }

    fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
        let q = Query::parse(command).unwrap();
        loggrep::engine::split_lines(raw)
            .into_iter()
            .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
            .map(|l| l.to_vec())
            .collect()
    }

    #[test]
    fn cluster_matches_oracle_in_global_order() {
        let raw = sample(2000);
        let mut cluster = Cluster::new(3, LogGrepConfig::default()).unwrap();
        let blocks = cluster.ingest(&raw, 8 * 1024).unwrap();
        assert!(blocks > 3, "want multiple blocks, got {blocks}");
        assert_eq!(cluster.block_count(), blocks);

        for q in ["ERROR", "host3", "ERROR and host3", "req 1999"] {
            let result = cluster.query(q).unwrap();
            assert!(result.complete, "query `{q}` should be complete");
            assert_eq!(result.lines, oracle(&raw, q), "query `{q}`");
        }
    }

    #[test]
    fn zero_nodes_is_a_config_error_not_a_panic() {
        let err = Cluster::new(0, LogGrepConfig::default()).unwrap_err();
        assert!(matches!(err, ClusterError::Config(_)), "{err}");
        assert!(err.to_string().contains("at least one node"));
    }

    #[test]
    fn replication_factor_is_validated() {
        let cfg = ClusterConfig {
            replication: 4,
            ..ClusterConfig::for_nodes(2, LogGrepConfig::default())
        };
        let err = Cluster::with_config(cfg).unwrap_err();
        assert!(matches!(err, ClusterError::Config(_)), "{err}");
    }

    #[test]
    fn replication_places_every_block_n_times() {
        let raw = sample(1200);
        let cfg = ClusterConfig {
            replication: 2,
            ..ClusterConfig::for_nodes(4, LogGrepConfig::default())
        };
        let mut cluster = Cluster::with_config(cfg).unwrap();
        let blocks = cluster.ingest(&raw, 4 * 1024).unwrap();
        let replica_total: usize = cluster.nodes().iter().map(Node::block_count).sum();
        assert_eq!(replica_total, blocks * 2, "every block on two nodes");
        assert_eq!(cluster.block_count(), blocks, "logical count ignores replicas");
        let result = cluster.query("ERROR").unwrap();
        assert!(result.complete);
        assert_eq!(result.lines, oracle(&raw, "ERROR"));
    }

    #[test]
    fn incremental_ingest_appends() {
        let a = sample(300);
        let b = sample(300);
        let mut cluster = Cluster::new(2, LogGrepConfig::default()).unwrap();
        cluster.ingest(&a, 4 * 1024).unwrap();
        let before = cluster.query("INFO").unwrap().lines.len();
        cluster.ingest(&b, 4 * 1024).unwrap();
        let after = cluster.query("INFO").unwrap().lines.len();
        assert_eq!(after, before * 2);
    }

    #[test]
    fn empty_cluster_and_empty_input() {
        let mut cluster = Cluster::new(2, LogGrepConfig::default()).unwrap();
        let empty = cluster.query("x").unwrap();
        assert_eq!(empty.lines.len(), 0);
        assert!(empty.complete);
        assert_eq!(cluster.ingest(b"", 1024).unwrap(), 0);
        assert_eq!(cluster.stored_bytes(), 0);
    }

    #[test]
    fn invalid_query_is_an_error_not_a_partial_result() {
        let mut cluster = Cluster::new(2, LogGrepConfig::default()).unwrap();
        cluster.ingest(&sample(100), 1024).unwrap();
        let err = cluster.query("and and and").unwrap_err();
        assert!(matches!(err, ClusterError::Query(_)), "{err}");
    }

    #[test]
    fn ingest_backpressure_rejects_with_retry_after() {
        let cfg = ClusterConfig {
            queue_capacity: 2,
            ..ClusterConfig::for_nodes(2, LogGrepConfig::default())
        };
        let mut cluster = Cluster::with_config(cfg).unwrap();
        let raw = sample(2000);
        let err = cluster.ingest(&raw, 512).unwrap_err();
        let ClusterError::Overloaded { retry_after_ms, .. } = err else {
            panic!("expected Overloaded, got {err}");
        };
        assert!(retry_after_ms >= 1);
        // Rejection is clean: nothing was admitted or committed.
        assert_eq!(cluster.block_count(), 0);
        assert_eq!(cluster.stored_bytes(), 0);
        // A batch that fits the queues still works afterwards.
        assert!(cluster.ingest(&sample(40), 4 * 1024).is_ok());
    }

    #[test]
    fn serve_metrics_exposes_cluster_counters() {
        use std::io::{Read, Write};
        telemetry::set_enabled(true);
        let raw = sample(200);
        let mut cluster = Cluster::new(2, LogGrepConfig::default()).unwrap();
        cluster.ingest(&raw, 2 * 1024).unwrap();
        cluster.query("ERROR").unwrap();

        let mut server = cluster.serve_metrics("127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200"), "{body}");
        assert!(body.contains("loggrep_cluster_queries_total"), "{body}");
        assert!(body.contains("loggrep_cluster_blocks_ingested_total"), "{body}");
        assert!(body.contains("loggrep_cluster_rpc_sent_total"), "{body}");
        server.shutdown();
    }

    #[test]
    fn locations_identify_blocks() {
        let raw = sample(1000);
        let mut cluster = Cluster::new(2, LogGrepConfig::default()).unwrap();
        let blocks = cluster.ingest(&raw, 4 * 1024).unwrap();
        let result = cluster.query("ERROR").unwrap();
        assert!(!result.locations.is_empty());
        assert!(result.locations.iter().all(|(b, _)| *b < blocks));
        // Locations are in global order.
        assert!(result.locations.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_blocks_respects_line_boundaries() {
        let raw = sample(500);
        let blocks = split_blocks(&raw, 700);
        assert!(blocks.len() > 1);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, raw.len());
        for b in &blocks[..blocks.len() - 1] {
            assert_eq!(b.last(), Some(&b'\n'));
        }
    }
}
