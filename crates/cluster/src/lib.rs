//! Distributed LogGrep — the scaling direction §8 names as future work.
//!
//! The paper's system compresses and queries one 64 MB block at a time on
//! one machine. This crate scales that out, simulating a cluster in-process:
//!
//! * a [`Cluster`] owns N [`Node`]s; log blocks are sharded round-robin;
//! * **ingest** compresses blocks on all nodes in parallel (compression is
//!   embarrassingly parallel per block, as §6's normalization assumes);
//! * **queries** scatter to every node, run against each block's CapsuleBox
//!   independently, and gather in global line order (block order × the
//!   per-block logical timestamps);
//! * per-node query caches work exactly like the single-machine cache.
//!
//! Nodes are plain structs driven by crossbeam scoped threads, so the same
//! code paths would back a real RPC deployment.
//!
//! Every node records into the process-wide telemetry registry, so spans
//! and counters from all shards aggregate into one snapshot; the
//! [`Cluster::serve_metrics`] embedding exposes that combined view over
//! HTTP (`/metrics`, `/healthz`, `/trace/last.json`).
//!
//! # Examples
//!
//! ```
//! use cluster::Cluster;
//! use loggrep::LogGrepConfig;
//!
//! let mut cluster = Cluster::new(4, LogGrepConfig::default());
//! cluster.ingest(b"a 1 ok\nb 2 err\na 3 ok\n", 2).unwrap();
//! let hits = cluster.query("ok").unwrap();
//! assert_eq!(hits.lines.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use loggrep::{Archive, LogGrep, LogGrepConfig};
use parking_lot::Mutex;

/// The `cluster.blocks` gauge: blocks currently stored across all nodes of
/// every in-process cluster.
fn blocks_gauge() -> &'static telemetry::Gauge {
    static G: std::sync::OnceLock<&'static telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| telemetry::gauge("cluster.blocks"))
}

/// One storage node: owns a set of blocks (opened archives).
pub struct Node {
    /// Node id (0-based).
    pub id: usize,
    /// `(global block number, archive)` pairs owned by this node.
    blocks: Vec<(usize, Archive)>,
}

impl Node {
    fn new(id: usize) -> Self {
        Self {
            id,
            blocks: Vec::new(),
        }
    }

    /// Number of blocks stored on this node.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Runs a query against every local block, returning
    /// `(block number, line number within block, line)` triples.
    fn query_local(&self, command: &str) -> Result<Vec<(usize, u32, Vec<u8>)>, String> {
        let mut out = Vec::new();
        for (block_no, archive) in &self.blocks {
            let result = archive.query(command).map_err(|e| e.to_string())?;
            for (lineno, line) in result.line_numbers.iter().zip(result.lines) {
                out.push((*block_no, *lineno, line));
            }
        }
        Ok(out)
    }
}

/// A query result gathered from the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Matching lines in global log order.
    pub lines: Vec<Vec<u8>>,
    /// `(block, line-in-block)` of each hit, parallel to `lines`.
    pub locations: Vec<(usize, u32)>,
}

/// An in-process LogGrep cluster.
pub struct Cluster {
    nodes: Vec<Node>,
    engine: LogGrep,
    next_block: usize,
}

impl Cluster {
    /// Creates a cluster of `nodes` empty nodes sharing one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, config: LogGrepConfig) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Self {
            nodes: (0..nodes).map(Node::new).collect(),
            engine: LogGrep::new(config),
            next_block: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total blocks across the cluster.
    pub fn block_count(&self) -> usize {
        self.nodes.iter().map(Node::block_count).sum()
    }

    /// The nodes (for inspection in tests and examples).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Splits `raw` into blocks of at most `block_bytes` (on line
    /// boundaries), compresses them in parallel, and shards them
    /// round-robin across the nodes. Returns the number of blocks ingested.
    pub fn ingest(&mut self, raw: &[u8], block_bytes: usize) -> Result<usize, String> {
        let _span = telemetry::span("cluster/ingest");
        let blocks = split_blocks(raw, block_bytes.max(1));
        let n = blocks.len();
        telemetry::counter!("cluster.blocks_ingested", n as u64);
        let engine = &self.engine;

        // Parallel compression, order-preserving.
        let slots: Vec<Mutex<Option<Result<Archive, String>>>> =
            blocks.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for (i, block) in blocks.iter().enumerate() {
                let slot = &slots[i];
                scope.spawn(move |_| {
                    let result = engine
                        .compress(block)
                        .map(|boxed| engine.open(boxed))
                        .map_err(|e| e.to_string());
                    *slot.lock() = Some(result);
                });
            }
        })
        .map_err(|_| "ingest worker panicked".to_string())?;

        for slot in slots {
            let archive = slot
                .into_inner()
                .expect("every slot filled")?;
            let block_no = self.next_block;
            self.next_block += 1;
            let node = block_no % self.nodes.len();
            self.nodes[node].blocks.push((block_no, archive));
            blocks_gauge().add(1);
        }
        Ok(n)
    }

    /// Scatter-gather query: every node evaluates the command against its
    /// blocks in parallel; results merge in global order.
    pub fn query(&self, command: &str) -> Result<ClusterResult, String> {
        let _trace = telemetry::trace_scope();
        let _span = telemetry::span("cluster/query");
        telemetry::counter!("cluster.queries", 1);
        type Partial = Result<Vec<(usize, u32, Vec<u8>)>, String>;
        let partials: Vec<Mutex<Option<Partial>>> =
            self.nodes.iter().map(|_| Mutex::new(None)).collect();
        let trace_id = telemetry::current_trace_id();
        crossbeam::thread::scope(|scope| {
            for (node, slot) in self.nodes.iter().zip(&partials) {
                scope.spawn(move |_| {
                    let _trace = telemetry::trace_scope_with(trace_id);
                    *slot.lock() = Some(node.query_local(command));
                });
            }
        })
        .map_err(|_| "query worker panicked".to_string())?;

        let mut hits: Vec<(usize, u32, Vec<u8>)> = Vec::new();
        for slot in partials {
            hits.extend(slot.into_inner().expect("every slot filled")?);
        }
        // Global order: block number, then the per-block logical timestamp.
        hits.sort_by_key(|(block, line, _)| (*block, *line));
        let mut lines = Vec::with_capacity(hits.len());
        let mut locations = Vec::with_capacity(hits.len());
        for (block, lineno, line) in hits {
            locations.push((block, lineno));
            lines.push(line);
        }
        Ok(ClusterResult { lines, locations })
    }

    /// Total stored bytes across the cluster (sum of CapsuleBox sizes).
    pub fn stored_bytes(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.blocks.iter())
            .map(|(_, a)| a.capsule_box().compressed_size())
            .sum()
    }

    /// Starts an embedded metrics endpoint for this process.
    ///
    /// Every node shares the process-wide telemetry registry, so the
    /// served `/metrics` page is the aggregation of all shards: cluster
    /// spans, per-node query spans, pool gauges, and cache counters in one
    /// Prometheus exposition. Pass `"127.0.0.1:0"` to bind an ephemeral
    /// port (read it back via [`telemetry::MetricsServer::local_addr`]).
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<telemetry::MetricsServer> {
        telemetry::MetricsServer::bind(addr)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let stored: usize = self.nodes.iter().map(Node::block_count).sum();
        blocks_gauge().add(-(stored as i64));
    }
}

/// Splits raw logs into blocks of at most `block_bytes` on line boundaries.
fn split_blocks(raw: &[u8], block_bytes: usize) -> Vec<&[u8]> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < raw.len() {
        let mut end = (start + block_bytes).min(raw.len());
        if end < raw.len() {
            while end < raw.len() && raw[end - 1] != b'\n' {
                end += 1;
            }
        }
        blocks.push(&raw[start..end]);
        start = end;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggrep::query::lang::Query;
    use logparse::DEFAULT_DELIMS;

    fn sample(lines: usize) -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..lines {
            raw.extend_from_slice(
                format!(
                    "{} req {} from host{}\n",
                    if i % 13 == 0 { "ERROR" } else { "INFO" },
                    i,
                    i % 7
                )
                .as_bytes(),
            );
        }
        raw
    }

    fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
        let q = Query::parse(command).unwrap();
        loggrep::engine::split_lines(raw)
            .into_iter()
            .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
            .map(|l| l.to_vec())
            .collect()
    }

    #[test]
    fn cluster_matches_oracle_in_global_order() {
        let raw = sample(2000);
        let mut cluster = Cluster::new(3, LogGrepConfig::default());
        let blocks = cluster.ingest(&raw, 8 * 1024).unwrap();
        assert!(blocks > 3, "want multiple blocks, got {blocks}");
        assert_eq!(cluster.block_count(), blocks);

        for q in ["ERROR", "host3", "ERROR and host3", "req 1999"] {
            assert_eq!(cluster.query(q).unwrap().lines, oracle(&raw, q), "query `{q}`");
        }
    }

    #[test]
    fn blocks_shard_evenly() {
        let raw = sample(3000);
        let mut cluster = Cluster::new(4, LogGrepConfig::default());
        let blocks = cluster.ingest(&raw, 4 * 1024).unwrap();
        let counts: Vec<usize> = cluster.nodes().iter().map(Node::block_count).collect();
        assert_eq!(counts.iter().sum::<usize>(), blocks);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven shard: {counts:?}");
    }

    #[test]
    fn incremental_ingest_appends() {
        let a = sample(300);
        let b = sample(300);
        let mut cluster = Cluster::new(2, LogGrepConfig::default());
        cluster.ingest(&a, 4 * 1024).unwrap();
        let before = cluster.query("INFO").unwrap().lines.len();
        cluster.ingest(&b, 4 * 1024).unwrap();
        let after = cluster.query("INFO").unwrap().lines.len();
        assert_eq!(after, before * 2);
    }

    #[test]
    fn empty_cluster_and_empty_input() {
        let mut cluster = Cluster::new(2, LogGrepConfig::default());
        assert_eq!(cluster.query("x").unwrap().lines.len(), 0);
        assert_eq!(cluster.ingest(b"", 1024).unwrap(), 0);
        assert_eq!(cluster.stored_bytes(), 0);
    }

    #[test]
    fn serve_metrics_exposes_cluster_counters() {
        use std::io::{Read, Write};
        telemetry::set_enabled(true);
        let raw = sample(200);
        let mut cluster = Cluster::new(2, LogGrepConfig::default());
        cluster.ingest(&raw, 2 * 1024).unwrap();
        cluster.query("ERROR").unwrap();

        let mut server = cluster.serve_metrics("127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200"), "{body}");
        assert!(body.contains("loggrep_cluster_queries_total"), "{body}");
        assert!(body.contains("loggrep_cluster_blocks_ingested_total"), "{body}");
        server.shutdown();
    }

    #[test]
    fn locations_identify_blocks() {
        let raw = sample(1000);
        let mut cluster = Cluster::new(2, LogGrepConfig::default());
        let blocks = cluster.ingest(&raw, 4 * 1024).unwrap();
        let result = cluster.query("ERROR").unwrap();
        assert!(!result.locations.is_empty());
        assert!(result.locations.iter().all(|(b, _)| *b < blocks));
        // Locations are in global order.
        assert!(result.locations.windows(2).all(|w| w[0] <= w[1]));
    }
}
