//! Per-shard read path: deadlines, bounded retries with exponential
//! backoff + jitter, hedged reads, and replica fallback.
//!
//! Time here is **virtual**: a reply carries its simulated latency and
//! the loop advances a per-shard microsecond clock, so deadline and
//! backoff arithmetic is exact and a fault run completes instantly in
//! CI. The loop per attempt:
//!
//! 1. pick the primary replica by rotating the replica set with the
//!    attempt number (a dead primary is not retried forever);
//! 2. send the primary read; if its (virtual) latency exceeds the hedge
//!    threshold — or the message is lost — send a **hedged** read to the
//!    next replica and take whichever answer lands first;
//! 3. a delivered reply runs the real per-block query on that node; a
//!    data error (e.g. a corrupt replica) triggers immediate **fallback**
//!    to the surviving replicas (`cluster.read_fallback`);
//! 4. no answer within the attempt budget → exponential backoff with
//!    deterministic jitter, then retry, until the shard deadline.

use crate::replication::Node;
use crate::transport::{Delivery, MsgCtx, MsgKind, NodeId, SimNet};

/// Retry/timeout/hedging knobs for the scatter-gather read path.
///
/// All times are virtual microseconds interpreted against simulated
/// message latencies, so the defaults behave identically on any host.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total virtual budget for one shard, backoff included.
    pub shard_deadline_us: u64,
    /// Virtual budget for a single attempt (one primary + one hedge).
    pub rpc_timeout_us: u64,
    /// Maximum attempts per shard (1 = no retries).
    pub max_attempts: u32,
    /// First backoff; doubles every retry.
    pub backoff_base_us: u64,
    /// A primary slower than this triggers a hedged read.
    pub hedge_after_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            shard_deadline_us: 50_000,
            rpc_timeout_us: 8_000,
            max_attempts: 5,
            backoff_base_us: 500,
            hedge_after_us: 1_500,
        }
    }
}

/// How one shard fared during a scatter-gather query.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// The shard.
    pub shard: usize,
    /// Blocks the shard holds, in block order.
    pub blocks: Vec<usize>,
    /// The shard's replica set.
    pub replicas: Vec<NodeId>,
    /// Whether the shard answered within its deadline.
    pub ok: bool,
    /// The replica that served the answer.
    pub served_by: Option<NodeId>,
    /// Attempts spent (1 = first try answered).
    pub attempts: u32,
    /// Whether a hedged read was sent.
    pub hedged: bool,
    /// Replica fallbacks taken after data errors.
    pub fallbacks: u32,
    /// Virtual time consumed by the shard, in microseconds.
    pub elapsed_us: u64,
    /// The last error when `ok` is false.
    pub error: Option<String>,
}

/// splitmix64 finalizer for deterministic backoff jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shard's read, returning its status and (on success) the hits.
pub(crate) fn query_shard(
    net: &SimNet,
    nodes: &[Node],
    policy: &RetryPolicy,
    shard: usize,
    blocks: Vec<usize>,
    replicas: Vec<NodeId>,
    command: &str,
) -> (ShardStatus, Vec<(usize, u32, Vec<u8>)>) {
    let mut status = ShardStatus {
        shard,
        blocks,
        replicas: replicas.clone(),
        ok: false,
        served_by: None,
        attempts: 0,
        hedged: false,
        fallbacks: 0,
        elapsed_us: 0,
        error: None,
    };
    let n = replicas.len();
    let mut clock_us = 0u64;
    let mut last_error = "shard deadline exceeded".to_string();

    'attempts: for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            telemetry::counter!("cluster.retries", 1);
            let backoff = policy
                .backoff_base_us
                .saturating_mul(1 << (attempt - 1).min(10));
            let jitter = mix(net.plan().seed ^ ((shard as u64) << 8) ^ u64::from(attempt))
                % (backoff / 2 + 1);
            clock_us = clock_us.saturating_add(backoff + jitter);
        }
        if clock_us >= policy.shard_deadline_us {
            break;
        }
        status.attempts = attempt + 1;
        let budget = policy.rpc_timeout_us.min(policy.shard_deadline_us - clock_us);
        let primary = replicas[attempt as usize % n];
        let ctx = |kind| MsgCtx {
            topic: shard as u64,
            attempt: u64::from(attempt),
            kind,
        };

        // Primary send, then hedge if the primary is slow or lost.
        let mut candidates: Vec<(u64, NodeId)> = Vec::with_capacity(2);
        let primary_latency = match net.rpc(primary, ctx(MsgKind::Query)) {
            Delivery::Reply { latency_us } if latency_us <= budget => {
                candidates.push((latency_us, primary));
                Some(latency_us)
            }
            _ => None,
        };
        if n > 1
            && policy.hedge_after_us < budget
            && primary_latency.is_none_or(|l| l > policy.hedge_after_us)
        {
            let hedge = replicas[(attempt as usize + 1) % n];
            if hedge != primary {
                telemetry::counter!("cluster.hedges", 1);
                status.hedged = true;
                if let Delivery::Reply { latency_us } = net.rpc(hedge, ctx(MsgKind::Hedge)) {
                    let effective = policy.hedge_after_us.saturating_add(latency_us);
                    if effective <= budget {
                        candidates.push((effective, hedge));
                    }
                }
            }
        }
        candidates.sort_unstable();

        let Some(&(latency, winner)) = candidates.first() else {
            // Nothing answered within the attempt budget.
            telemetry::counter!("cluster.timeouts", 1);
            clock_us = clock_us.saturating_add(budget);
            continue;
        };
        clock_us = clock_us.saturating_add(latency);

        match nodes[winner].query_shard(shard, command) {
            Ok(hits) => {
                status.ok = true;
                status.served_by = Some(winner);
                status.elapsed_us = clock_us;
                return (status, hits);
            }
            Err(e) => {
                // Data error on a reachable replica (e.g. corruption):
                // fall back to the surviving replicas right away.
                last_error = e;
                let mut data_errors = 1usize;
                for &r in replicas.iter().filter(|&&r| r != winner) {
                    let Delivery::Reply { latency_us } = net.rpc(r, ctx(MsgKind::Fallback))
                    else {
                        continue;
                    };
                    if clock_us.saturating_add(latency_us) >= policy.shard_deadline_us {
                        continue;
                    }
                    telemetry::counter!("cluster.read_fallback", 1);
                    status.fallbacks += 1;
                    clock_us = clock_us.saturating_add(latency_us);
                    match nodes[r].query_shard(shard, command) {
                        Ok(hits) => {
                            status.ok = true;
                            status.served_by = Some(r);
                            status.elapsed_us = clock_us;
                            return (status, hits);
                        }
                        Err(e) => {
                            last_error = e;
                            data_errors += 1;
                        }
                    }
                }
                if data_errors == n {
                    // Every replica's data is bad; retrying cannot help.
                    break 'attempts;
                }
            }
        }
    }

    telemetry::counter!("cluster.shards_failed", 1);
    status.elapsed_us = clock_us.min(policy.shard_deadline_us);
    status.error = Some(last_error);
    (status, Vec::new())
}
