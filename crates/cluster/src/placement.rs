//! Hash-based shard placement with an explicit shard map.
//!
//! Blocks hash to one of a fixed number of **shards**; each shard maps to
//! `replication` consecutive nodes on the node ring, starting at a hashed
//! offset so shard ownership spreads over the cluster instead of piling
//! onto node 0. Both mappings are pure functions of the ids, so every
//! participant (coordinator, tests, the difftest oracle) derives the same
//! placement with no coordination.

use crate::transport::NodeId;

/// splitmix64 finalizer used for both placement hashes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The cluster's explicit shard map: block → shard → replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nodes: usize,
    shards: usize,
    replication: usize,
}

impl ShardMap {
    /// Builds a map of `shards` shards over `nodes` nodes with
    /// `replication` copies of every shard.
    pub fn new(nodes: usize, shards: usize, replication: usize) -> Result<Self, String> {
        if nodes == 0 {
            return Err("a cluster needs at least one node".to_string());
        }
        if shards == 0 {
            return Err("a cluster needs at least one shard".to_string());
        }
        if replication == 0 || replication > nodes {
            return Err(format!(
                "replication factor {replication} must be in 1..={nodes} (the node count)"
            ));
        }
        Ok(Self {
            nodes,
            shards,
            replication,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The shard a block belongs to (stable hash of the block number).
    pub fn shard_of_block(&self, block_no: usize) -> usize {
        (mix(block_no as u64) % self.shards as u64) as usize
    }

    /// The replica set of a shard: `replication` distinct nodes, walked
    /// consecutively from a hashed starting point on the node ring.
    pub fn replicas(&self, shard: usize) -> Vec<NodeId> {
        let start = (mix(shard as u64 ^ 0x5348_4152_444d_4150) % self.nodes as u64) as usize;
        (0..self.replication)
            .map(|k| (start + k) % self.nodes)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_maps() {
        assert!(ShardMap::new(0, 4, 1).is_err());
        assert!(ShardMap::new(4, 0, 1).is_err());
        assert!(ShardMap::new(4, 4, 0).is_err());
        assert!(ShardMap::new(4, 4, 5).is_err());
        assert!(ShardMap::new(4, 16, 4).is_ok());
    }

    #[test]
    fn replicas_are_distinct_and_stable() {
        let map = ShardMap::new(5, 20, 3).unwrap();
        for shard in 0..map.shards() {
            let r = map.replicas(shard);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {r:?}");
            assert!(r.iter().all(|&n| n < 5));
            assert_eq!(r, map.replicas(shard), "placement must be stable");
        }
    }

    #[test]
    fn blocks_spread_over_shards_and_nodes() {
        let map = ShardMap::new(4, 16, 2).unwrap();
        let mut shard_counts = vec![0usize; map.shards()];
        let mut node_counts = vec![0usize; map.nodes()];
        for block in 0..400 {
            let s = map.shard_of_block(block);
            shard_counts[s] += 1;
            for n in map.replicas(s) {
                node_counts[n] += 1;
            }
        }
        assert!(
            shard_counts.iter().filter(|&&c| c > 0).count() >= 12,
            "hashing 400 blocks should reach most of 16 shards: {shard_counts:?}"
        );
        assert!(
            node_counts.iter().all(|&c| c > 0),
            "every node should own replicas: {node_counts:?}"
        );
    }

    #[test]
    fn full_replication_covers_every_node() {
        let map = ShardMap::new(3, 6, 3).unwrap();
        for shard in 0..6 {
            let mut r = map.replicas(shard);
            r.sort_unstable();
            assert_eq!(r, vec![0, 1, 2]);
        }
    }
}
