//! Replica read-fallback on data corruption: a corrupt archive on one
//! replica (seeded bit flips, the corruption-robustness mutator
//! technique) must be served silently from a surviving replica, counted
//! in `cluster.read_fallback` — and only when every replica is corrupt
//! does the shard fail.
//!
//! This test owns its process (one integration-test file = one process)
//! because it asserts deltas on process-wide counters.

use cluster::{Cluster, ClusterConfig, FaultPlan};
use loggrep::query::lang::Query;
use loggrep::LogGrepConfig;
use logparse::DEFAULT_DELIMS;

fn sample() -> Vec<u8> {
    (0..900)
        .flat_map(|i| {
            format!(
                "{} op {} user{}\n",
                if i % 9 == 0 { "WARN" } else { "DEBUG" },
                i,
                i % 6
            )
            .into_bytes()
        })
        .collect()
}

fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
    let q = Query::parse(command).unwrap();
    loggrep::engine::split_lines(raw)
        .into_iter()
        .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
        .map(|l| l.to_vec())
        .collect()
}

#[test]
fn corrupt_replica_is_served_from_survivor() {
    telemetry::set_enabled(true);
    let raw = sample();
    let cfg = ClusterConfig {
        replication: 2,
        shards: 4,
        faults: FaultPlan::seeded(5),
        ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
    };
    let mut c = Cluster::with_config(cfg).unwrap();
    let blocks = c.ingest(&raw, 4 * 1024).unwrap();
    assert!(blocks >= 2);

    // Flip seeded bits in the *primary* replica of block 0 — the replica
    // the gather loop reads first — so the fallback path must fire.
    let map = *c.shard_map();
    let primary = map.replicas(map.shard_of_block(0))[0];
    for (seed, block_no) in (0..blocks).enumerate() {
        let owner = map.replicas(map.shard_of_block(block_no))[0];
        if owner == primary {
            assert!(c.corrupt_replica(primary, block_no, 0xBAD + seed as u64));
        }
    }

    let before = telemetry::snapshot();
    let result = c.query("WARN").unwrap();
    let after = telemetry::snapshot();

    assert!(result.complete, "the surviving replica covers the corruption");
    assert_eq!(result.lines, oracle(&raw, "WARN"));
    assert!(
        after.counter("cluster.read_fallback") > before.counter("cluster.read_fallback"),
        "fallback reads must be counted"
    );
    let fallback_shards: Vec<_> = result.shards.iter().filter(|s| s.fallbacks > 0).collect();
    assert!(!fallback_shards.is_empty(), "some shard fell back");
    for s in &fallback_shards {
        assert_ne!(s.served_by, Some(primary), "corrupt replica cannot serve");
        assert!(s.ok);
    }
}

#[test]
fn all_replicas_corrupt_fails_only_that_shard() {
    telemetry::set_enabled(true);
    let raw = sample();
    let cfg = ClusterConfig {
        replication: 2,
        shards: 4,
        faults: FaultPlan::seeded(6),
        ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
    };
    let mut c = Cluster::with_config(cfg).unwrap();
    let blocks = c.ingest(&raw, 4 * 1024).unwrap();
    assert!(blocks >= 2);

    // Corrupt every replica of block 0's shard: that shard is beyond
    // saving, but every other shard must still answer exactly.
    let map = *c.shard_map();
    let bad_shard = map.shard_of_block(0);
    for block_no in 0..blocks {
        if map.shard_of_block(block_no) != bad_shard {
            continue;
        }
        for (i, node) in map.replicas(map.shard_of_block(block_no)).into_iter().enumerate() {
            assert!(c.corrupt_replica(node, block_no, 0xDEAD + i as u64));
        }
    }

    let result = c.query("WARN").unwrap();
    assert!(!result.complete, "a fully corrupt shard cannot answer");
    let failed: Vec<_> = result.failed_shards().collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].shard, bad_shard);
    assert!(failed[0].error.is_some());

    // Survivors are exact: the oracle minus the bad shard's blocks.
    let q = Query::parse("WARN").unwrap();
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for (i, block) in cluster::split_blocks(&raw, 4 * 1024).iter().enumerate() {
        if map.shard_of_block(i) == bad_shard {
            continue;
        }
        expected.extend(
            loggrep::engine::split_lines(block)
                .into_iter()
                .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
                .map(|l| l.to_vec()),
        );
    }
    assert_eq!(result.lines, expected);
}
