//! Fault-schedule integration tests: the cluster under seeded crashes,
//! slowness, partitions, and message drops must either return exactly the
//! single-node oracle result (when replicas can cover the failure) or a
//! well-labeled partial result (when a whole shard is gone) — and every
//! run must replay identically from its seed.

use cluster::{Cluster, ClusterConfig, ClusterError, FaultPlan, QueryOpts};
use loggrep::query::lang::Query;
use loggrep::LogGrepConfig;
use logparse::DEFAULT_DELIMS;

const SEEDS: [u64; 3] = [1, 2, 3];

fn sample(lines: usize) -> Vec<u8> {
    let mut raw = Vec::new();
    for i in 0..lines {
        raw.extend_from_slice(
            format!(
                "{} req {} from host{} took {}ms\n",
                if i % 11 == 0 { "ERROR" } else { "INFO" },
                i,
                i % 5,
                (i * 7) % 900
            )
            .as_bytes(),
        );
    }
    raw
}

fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
    let q = Query::parse(command).unwrap();
    loggrep::engine::split_lines(raw)
        .into_iter()
        .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
        .map(|l| l.to_vec())
        .collect()
}

/// Acceptance scenario 1: with one of three replicas killed per shard and
/// another delayed, scatter-gather still returns the exact oracle result
/// with `complete == true` — for every seed.
#[test]
fn killed_replica_and_slow_node_still_complete() {
    for seed in SEEDS {
        let raw = sample(1500);
        let cfg = ClusterConfig {
            replication: 3,
            shards: 8,
            faults: FaultPlan::seeded(seed),
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, 8 * 1024).unwrap();

        // Seed-chosen victims: one replica of every shard dies, another
        // is 20x slower than the rest.
        let dead = (seed as usize) % 3;
        let slow = (dead + 1) % 3;
        c.crash_node(dead);
        c.set_slow_node(slow, true);

        for q in ["ERROR", "host3", "ERROR and host2", "took 0ms"] {
            let result = c.query(q).unwrap();
            assert!(
                result.complete,
                "seed {seed} query `{q}`: replicas cover one dead node"
            );
            assert_eq!(result.lines, oracle(&raw, q), "seed {seed} query `{q}`");
            assert!(
                result.shards.iter().all(|s| s.served_by != Some(dead)),
                "seed {seed}: dead node cannot serve"
            );
        }
    }
}

/// Acceptance scenario 2: with a whole shard partitioned away
/// (replication 1), the query returns `complete == false` plus the exact
/// results from every surviving shard — for every seed.
#[test]
fn partitioned_shard_yields_labeled_partial_results() {
    for seed in SEEDS {
        let raw = sample(1500);
        let block_bytes = 4 * 1024;
        let cfg = ClusterConfig {
            replication: 1,
            shards: 6,
            faults: FaultPlan::seeded(seed),
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, block_bytes).unwrap();
        let victim = (seed as usize) % 3;
        c.partition_node(victim);

        // Expected: the oracle restricted to blocks whose only replica
        // is NOT on the partitioned node, in block order.
        let map = *c.shard_map();
        let q = Query::parse("ERROR").unwrap();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (i, block) in cluster::split_blocks(&raw, block_bytes).iter().enumerate() {
            if map.replicas(map.shard_of_block(i))[0] == victim {
                continue;
            }
            expected.extend(
                loggrep::engine::split_lines(block)
                    .into_iter()
                    .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
                    .map(|l| l.to_vec()),
            );
        }
        assert_ne!(
            expected.len(),
            oracle(&raw, "ERROR").len(),
            "seed {seed}: the victim must actually own blocks"
        );

        let result = c.query("ERROR").unwrap();
        assert!(!result.complete, "seed {seed}: a whole shard is gone");
        assert_eq!(result.lines, expected, "seed {seed}: survivors are exact");
        for s in result.failed_shards() {
            assert_eq!(s.replicas, vec![victim], "seed {seed}");
            assert!(s.served_by.is_none());
            assert!(s.error.is_some());
            assert!(s.attempts >= 2, "seed {seed}: failures were retried");
        }

        // The error budget turns excess failure back into a hard error.
        let failed = result.failed_shards().count();
        assert!(failed >= 1);
        let err = c
            .query_with("ERROR", &QueryOpts { max_failed_shards: Some(failed - 1) })
            .unwrap_err();
        assert!(matches!(err, ClusterError::BudgetExceeded { .. }), "{err}");
        let ok = c
            .query_with("ERROR", &QueryOpts { max_failed_shards: Some(failed) })
            .unwrap();
        assert_eq!(ok.lines, expected);

        // Healing the partition restores completeness.
        c.heal_node(victim);
        let healed = c.query("ERROR").unwrap();
        assert!(healed.complete, "seed {seed}");
        assert_eq!(healed.lines, oracle(&raw, "ERROR"), "seed {seed}");
    }
}

/// A lossy network (30% drops) is survived by retries and hedging: the
/// result is still exact and complete for every seed.
#[test]
fn lossy_network_is_survived_by_retries() {
    for seed in SEEDS {
        let raw = sample(800);
        let cfg = ClusterConfig {
            replication: 2,
            shards: 6,
            faults: FaultPlan {
                drop_rate: 0.3,
                ..FaultPlan::seeded(seed)
            },
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, 8 * 1024).unwrap();
        let result = c.query("ERROR").unwrap();
        assert!(result.complete, "seed {seed}");
        assert_eq!(result.lines, oracle(&raw, "ERROR"), "seed {seed}");
    }
}

/// The same seed replays byte-identically: lines, locations, per-shard
/// attempt counts and serving replicas all match across two fresh runs.
#[test]
fn fault_runs_replay_identically_from_their_seed() {
    let run = |seed: u64| {
        let raw = sample(1000);
        let cfg = ClusterConfig {
            replication: 2,
            shards: 6,
            faults: FaultPlan {
                drop_rate: 0.25,
                slow_nodes: vec![1],
                ..FaultPlan::seeded(seed)
            },
            ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
        };
        let mut c = Cluster::with_config(cfg).unwrap();
        c.ingest(&raw, 8 * 1024).unwrap();
        let r = c.query("ERROR or host4").unwrap();
        let shape: Vec<(usize, bool, Option<usize>, u32, u64)> = r
            .shards
            .iter()
            .map(|s| (s.shard, s.ok, s.served_by, s.attempts, s.elapsed_us))
            .collect();
        (r.lines, r.locations, r.complete, shape)
    };
    for seed in SEEDS {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
    }
}

/// Crash/restart cycle: committed blocks survive a restart, and the
/// restarted node serves queries again.
#[test]
fn restart_preserves_committed_blocks() {
    let raw = sample(600);
    let cfg = ClusterConfig {
        replication: 2,
        shards: 4,
        ..ClusterConfig::for_nodes(2, LogGrepConfig::default())
    };
    let mut c = Cluster::with_config(cfg).unwrap();
    c.ingest(&raw, 4 * 1024).unwrap();
    let before = c.query("ERROR").unwrap();
    assert!(before.complete);

    c.crash_node(0);
    let during = c.query("ERROR").unwrap();
    assert!(during.complete, "replication 2 covers one crash");
    assert_eq!(during.lines, before.lines);
    assert!(during.shards.iter().all(|s| s.served_by == Some(1)));

    c.restart_node(0);
    let after = c.query("ERROR").unwrap();
    assert!(after.complete);
    assert_eq!(after.lines, before.lines);
    assert_eq!(c.nodes()[0].block_count(), c.nodes()[1].block_count());
}
