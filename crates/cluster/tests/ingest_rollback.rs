//! Ingest crash-safety: a replica failing mid-batch must roll the whole
//! batch back — no half-ingested blocks, no leaked queue slots, and no
//! drift in the `cluster.blocks` gauge.
//!
//! This test owns its process (one integration-test file = one process)
//! because it asserts deltas on process-wide gauges and counters.

use cluster::{Cluster, ClusterConfig, ClusterError, FaultPlan};
use loggrep::LogGrepConfig;

#[test]
fn mid_batch_replica_crash_rolls_back_cleanly() {
    telemetry::set_enabled(true);
    let raw: Vec<u8> = (0..1200)
        .flat_map(|i| format!("INFO event {i} on host{}\n", i % 4).into_bytes())
        .collect();

    // Node 1 crashes permanently after its 3rd message, which lands in
    // the middle of staging this multi-block batch.
    let cfg = ClusterConfig {
        replication: 2,
        shards: 8,
        faults: FaultPlan {
            crash_after_messages: vec![(1, 3)],
            ..FaultPlan::seeded(42)
        },
        ..ClusterConfig::for_nodes(3, LogGrepConfig::default())
    };
    let mut c = Cluster::with_config(cfg).unwrap();

    let before = telemetry::snapshot();
    let err = c.ingest(&raw, 2 * 1024).unwrap_err();
    let after = telemetry::snapshot();

    let ClusterError::Ingest(msg) = &err else {
        panic!("expected Ingest error, got {err}");
    };
    assert!(msg.contains("unreachable"), "{msg}");

    // The rollback is total: no logical blocks, no replicas, no bytes.
    assert_eq!(c.block_count(), 0, "no block may survive the rollback");
    for node in c.nodes() {
        assert_eq!(node.block_count(), 0, "node {} leaked a replica", node.id);
        assert_eq!(node.stored_bytes(), 0);
    }

    // Telemetry agrees: the blocks gauge does not drift, the admission
    // queues drained, and the rollback was counted.
    assert_eq!(
        after.gauge("cluster.blocks"),
        before.gauge("cluster.blocks"),
        "cluster.blocks gauge drifted across a rolled-back ingest"
    );
    assert_eq!(after.gauge("cluster.ingest_queue"), 0);
    assert!(
        after.counter("cluster.ingest_rollback") > before.counter("cluster.ingest_rollback"),
        "rollback of committed blocks must be counted"
    );

    // Queries see an empty cluster, not a torn one.
    let empty = c.query("INFO").unwrap();
    assert!(empty.complete);
    assert_eq!(empty.lines.len(), 0);

    // After restarting the crashed node the same batch ingests fine and
    // the gauge moves by exactly the committed block count.
    c.restart_node(1);
    let blocks = c.ingest(&raw, 2 * 1024).unwrap();
    assert!(blocks > 1);
    let settled = telemetry::snapshot();
    assert_eq!(
        settled.gauge("cluster.blocks") - before.gauge("cluster.blocks"),
        blocks as i64
    );
    let result = c.query("host2").unwrap();
    assert!(result.complete);
    assert_eq!(result.lines.len(), 300);
}
