//! Criterion micro-benchmarks for the string-search substrate: the §5.2
//! Boyer-Moore vs KMP comparison on fixed-width capsule buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strsearch::fixed::{pad_values, Mode};
use strsearch::{BoyerMoore, FixedRows, Kmp};

/// A padded capsule-like buffer of hex ids plus a rare needle.
fn capsule(rows: usize, width: usize) -> Vec<u8> {
    let values: Vec<Vec<u8>> = (0..rows)
        .map(|i| {
            if i == rows - 7 {
                b"DEADBEEF".to_vec()
            } else {
                format!("{:08X}", (i as u64).wrapping_mul(0x9E3779B9) & 0xFFFF_FFFF).into_bytes()
            }
        })
        .collect();
    pad_values(values.iter(), width, 0)
}

fn bench_raw_search(c: &mut Criterion) {
    let buf = capsule(100_000, 8);
    let needle = b"DEADBEEF";
    let mut g = c.benchmark_group("raw_search");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("boyer-moore"), &buf, |b, buf| {
        let bm = BoyerMoore::new(needle);
        b.iter(|| bm.find_all(buf).len())
    });
    g.bench_with_input(BenchmarkId::from_parameter("kmp"), &buf, |b, buf| {
        let kmp = Kmp::new(needle);
        b.iter(|| kmp.find_all(buf).len())
    });
    g.finish();
}

fn bench_fixed_vs_delimited(c: &mut Criterion) {
    // The §5.2 ablation in miniature: fixed-width BM scan vs
    // delimiter-counting KMP scan over the same values.
    let rows = 100_000;
    let padded = capsule(rows, 8);
    let mut delimited = Vec::with_capacity(rows * 9);
    for i in 0..rows {
        let start = i * 8;
        delimited.extend_from_slice(&padded[start..start + 8]);
        delimited.push(b'\n');
    }
    let needle = b"DEADBEEF";

    let mut g = c.benchmark_group("capsule_scan");
    g.throughput(Throughput::Bytes(padded.len() as u64));
    g.bench_function("fixed_width_bm", |b| {
        let view = FixedRows::new(&padded, 8, 0);
        b.iter(|| view.find(needle, Mode::Contains).len())
    });
    g.bench_function("delimited_kmp", |b| {
        let kmp = Kmp::new(needle);
        b.iter(|| kmp.find_records(&delimited, b'\n').len())
    });
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_raw_search, bench_fixed_vs_delimited
}
criterion_main!(benches);
