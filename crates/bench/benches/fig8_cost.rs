//! Figure 8(a,b): overall cost per TB under Equation 1, with per-component
//! breakdown and the ES break-even query frequency of §6.1/§6.2.

fn main() {
    let prod = workloads::production_logs();
    let m = bench::experiments::fig7(&prod, "Figure 8(a) inputs: production logs");
    bench::experiments::fig8(&m, "Figure 8(a): overall cost, production logs");

    let public = workloads::public_logs();
    let m = bench::experiments::fig7(&public, "Figure 8(b) inputs: public logs");
    bench::experiments::fig8(&m, "Figure 8(b): overall cost, public logs");
}
