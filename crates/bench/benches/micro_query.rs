//! Criterion micro-benchmarks for the query engine (§5): hit and miss
//! queries against a compressed block, full system vs ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loggrep::{Archive, LogGrep, LogGrepConfig};

fn archive_for(config: LogGrepConfig, raw: &[u8]) -> Archive {
    let mut engine_config = config;
    // Benchmark raw matching work, not the cache.
    engine_config.use_query_cache = false;
    LogGrep::new(engine_config)
        .compress_to_archive(raw)
        .expect("clean input")
}

fn bench_query_paths(c: &mut Criterion) {
    let spec = workloads::by_name("Log A").expect("catalog has Log A");
    let raw = spec.generate(5, 2 << 20);
    let configs = [
        ("full", LogGrepConfig::default()),
        ("sp", LogGrepConfig::sp()),
        ("no_stamp", LogGrepConfig::without_stamps()),
        ("no_fixed", LogGrepConfig::without_fixed()),
    ];
    let queries = [
        ("rare_hit", "ERROR and state:REQ_ST_CLOSED and 20012"),
        ("miss", "zz-absent-keyword"),
        ("subvar_probe", "reqId:5E9D21AD0F"),
    ];
    for (qlabel, q) in queries {
        let mut g = c.benchmark_group(format!("query_{qlabel}"));
        g.sample_size(20);
        for (clabel, config) in &configs {
            let archive = archive_for(config.clone(), &raw);
            g.bench_with_input(BenchmarkId::from_parameter(clabel), &archive, |b, a| {
                b.iter(|| a.query(q).expect("valid query").lines.len())
            });
        }
        g.finish();
    }
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_query_paths
}
criterion_main!(benches);
