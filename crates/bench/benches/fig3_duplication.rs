//! Figure 3: distribution of single- and multi-pattern variable vectors
//! with respect to duplication rate, over all 37 log types.

fn main() {
    let logs = workloads::all_logs();
    bench::experiments::fig3(&logs);
}
