//! §2.2/§2.3 strictness numbers: character-type groups and length variance
//! at block, variable-vector and sub-variable granularity.

fn main() {
    let logs = workloads::all_logs();
    bench::experiments::strictness(&logs);
}
