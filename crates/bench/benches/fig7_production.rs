//! Figure 7(a,b,c): query latency, compression ratio, compression speed on
//! the 21 production-style logs, for all five systems.

fn main() {
    let logs = workloads::production_logs();
    let _ = bench::experiments::fig7(&logs, "Figure 7: 21 production logs");
}
