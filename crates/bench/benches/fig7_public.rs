//! §6.2: query latency, compression ratio, compression speed on the 16
//! public-style logs, for all five systems.

fn main() {
    let logs = workloads::public_logs();
    let _ = bench::experiments::fig7(&logs, "Section 6.2: 16 public logs");
}
