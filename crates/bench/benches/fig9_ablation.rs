//! Figure 9: effect of each individual technique (§6.3), plus the padding
//! vs compression-ratio check.

fn main() {
    let logs = workloads::production_logs();
    bench::experiments::fig9(&logs);
}
