//! Criterion micro-benchmarks for the codec substrate: the gzip/zstd/LZMA
//! speed-vs-ratio ordering the evaluation depends on.

use codec::{Cm1, Codec, Deflate, FastLz, LzmaLite};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn log_text(bytes: usize) -> Vec<u8> {
    let spec = workloads::by_name("Log A").expect("catalog has Log A");
    spec.generate(7, bytes)
}

fn codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(FastLz::default()),
        Box::new(Deflate::default()),
        Box::new(LzmaLite::default()),
        Box::new(Cm1),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let data = log_text(256 * 1024);
    let mut g = c.benchmark_group("codec_compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for codec in codecs() {
        g.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &data,
            |b, data| b.iter(|| codec.compress(data)),
        );
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = log_text(256 * 1024);
    let mut g = c.benchmark_group("codec_decompress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for codec in codecs() {
        let packed = codec.compress(&data);
        g.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &packed,
            |b, packed| b.iter(|| codec.decompress(packed).expect("valid")),
        );
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_compress, bench_decompress
}
criterion_main!(benches);
