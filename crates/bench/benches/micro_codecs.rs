//! Criterion micro-benchmarks for the codec substrate: the gzip/zstd/LZMA
//! speed-vs-ratio ordering the evaluation depends on, plus the per-capsule-
//! class ratio-vs-speed table the engine's codec cost model is derived from.

use codec::{Cm1, Codec, Deflate, FastLz, LzmaLite};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

fn log_text(bytes: usize) -> Vec<u8> {
    let spec = workloads::by_name("Log A").expect("catalog has Log A");
    spec.generate(7, bytes)
}

/// Decomposes a workload into engine capsule payloads bucketed by class.
///
/// The classes mirror the Assembler's vector kinds: Real sub-value and
/// outlier capsules, Nominal dictionary and index capsules, and Plain
/// value capsules — the populations the per-capsule cost model chooses a
/// codec for.
fn capsule_class_payloads(bytes: usize) -> Vec<(&'static str, Vec<Vec<u8>>)> {
    let spec = workloads::by_name("Log C").expect("catalog has Log C");
    let raw = spec.generate(bench::bench_seed(), bytes);
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig::default());
    let boxed = engine.compress(&raw).expect("compress");
    let mut classes: Vec<(&'static str, Vec<Vec<u8>>)> = vec![
        ("real-sub", Vec::new()),
        ("real-outlier", Vec::new()),
        ("nominal-dict", Vec::new()),
        ("nominal-index", Vec::new()),
        ("plain", Vec::new()),
    ];
    let mut push = |class: usize, id: u32| {
        let payload = boxed.decompress_capsule(id).expect("capsule decodes");
        classes[class].1.push(payload);
    };
    for group in &boxed.groups {
        for vector in &group.vectors {
            match vector {
                loggrep::vector::VectorMeta::Real {
                    sub_caps,
                    outlier_cap,
                    ..
                } => {
                    for &id in sub_caps {
                        push(0, id);
                    }
                    push(1, *outlier_cap);
                }
                loggrep::vector::VectorMeta::Nominal {
                    dict_cap,
                    index_cap,
                    ..
                } => {
                    push(2, *dict_cap);
                    push(3, *index_cap);
                }
                loggrep::vector::VectorMeta::Plain { capsule } => push(4, *capsule),
            }
        }
    }
    classes.retain(|(_, payloads)| !payloads.is_empty());
    classes
}

/// Times `f` over `reps` runs and returns the best wall time in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Prints the ratio-vs-speed table behind the cost model's thresholds:
/// for every capsule class and codec, the compression ratio and the
/// compress/decompress throughput over the class's real payload
/// population (Log C via the engine's own Assembler).
fn emit_cost_model_table(classes: &[(&'static str, Vec<Vec<u8>>)]) {
    eprintln!("\ncapsule-class ratio-vs-speed table (cost-model input):");
    eprintln!(
        "{:<14} {:>9} {:>10} | {:>7} {:>12} {:>12}",
        "class", "payloads", "bytes", "ratio", "comp MB/s", "decomp MB/s"
    );
    for (class, payloads) in classes {
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        for codec in codecs() {
            let mut packed: Vec<Vec<u8>> = Vec::new();
            let comp_secs = best_secs(3, || {
                packed = payloads.iter().map(|p| codec.compress(p)).collect();
            });
            let csize: usize = packed.iter().map(|p| p.len()).sum();
            let decomp_secs = best_secs(3, || {
                for p in &packed {
                    std::hint::black_box(codec.decompress(p).expect("valid"));
                }
            });
            eprintln!(
                "{:<14} {:>9} {:>10} | {:>7.3} {:>12.1} {:>12.1}  {}",
                class,
                payloads.len(),
                total,
                total as f64 / csize.max(1) as f64,
                total as f64 / 1e6 / comp_secs,
                total as f64 / 1e6 / decomp_secs,
                codec.name(),
            );
        }
    }
    eprintln!();
}

fn codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(FastLz::default()),
        Box::new(Deflate::default()),
        Box::new(LzmaLite::default()),
        Box::new(Cm1),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let data = log_text(256 * 1024);
    let mut g = c.benchmark_group("codec_compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for codec in codecs() {
        g.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &data,
            |b, data| b.iter(|| codec.compress(data)),
        );
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = log_text(256 * 1024);
    let mut g = c.benchmark_group("codec_decompress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for codec in codecs() {
        let packed = codec.compress(&data);
        g.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &packed,
            |b, packed| b.iter(|| codec.decompress(packed).expect("valid")),
        );
    }
    g.finish();
}

fn bench_capsule_classes(c: &mut Criterion) {
    // MICRO_CODECS_BYTES overrides the workload size when re-deriving the
    // cost-model table at other scales.
    let bytes = std::env::var("MICRO_CODECS_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512 * 1024);
    let classes = capsule_class_payloads(bytes);
    emit_cost_model_table(&classes);
    let mut g = c.benchmark_group("codec_capsule_class");
    for (class, payloads) in &classes {
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        g.throughput(Throughput::Bytes(total as u64));
        for codec in codecs() {
            g.bench_with_input(
                BenchmarkId::new(*class, codec.name()),
                payloads,
                |b, payloads| {
                    b.iter(|| {
                        for p in payloads {
                            std::hint::black_box(codec.compress(p));
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_compress, bench_decompress, bench_capsule_classes
}
criterion_main!(benches);
