//! Criterion micro-benchmarks for runtime-pattern extraction (§4.1): the
//! O(n) tree-expanding path, the O(n log n) pattern-merging path, and the
//! full per-block compression pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logparse::Column;
use loggrep::extract::{nominal, real};
use loggrep::{LogGrep, LogGrepConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn real_values(n: usize) -> Column {
    Column::from_values(
        (0..n)
            .map(|i| format!("blk_{:08x}F8{:04x}", i * 2654435761u64 as usize, i % 65536))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_bytes),
    )
}

fn nominal_values(n: usize) -> Column {
    let dict = ["SUC#1604", "ERR#1623", "SUC#1611", "ERR#404", "TIMEOUT"];
    Column::from_values((0..n).map(|i| dict[i % dict.len()].as_bytes()))
}

fn bench_extraction(c: &mut Criterion) {
    let config = LogGrepConfig::default();
    let mut g = c.benchmark_group("extract");
    for n in [1_000usize, 10_000] {
        let rv = real_values(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("tree_expanding", n), &rv, |b, rv| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                real::extract(rv, &config, &mut rng).expect("pattern")
            })
        });
        let nv = nominal_values(n);
        g.bench_with_input(BenchmarkId::new("pattern_merging", n), &nv, |b, nv| {
            b.iter(|| nominal::extract(nv))
        });
    }
    g.finish();
}

fn bench_compression_pipeline(c: &mut Criterion) {
    let spec = workloads::by_name("Log A").expect("catalog has Log A");
    let raw = spec.generate(3, 512 * 1024);
    let mut g = c.benchmark_group("compress_block");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(raw.len() as u64));
    for (label, config) in [
        ("full", LogGrepConfig::default()),
        ("sp", LogGrepConfig::sp()),
    ] {
        let engine = LogGrep::new(config);
        g.bench_with_input(BenchmarkId::from_parameter(label), &raw, |b, raw| {
            b.iter(|| engine.compress(raw).expect("clean input"))
        });
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_extraction, bench_compression_pipeline
}
criterion_main!(benches);
