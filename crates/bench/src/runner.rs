//! Measurement runner: compress + query one system on one workload.

use baselines::LogSystem;
use std::time::Instant;

/// Measured characteristics of one system on one log.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// System display name.
    pub system: String,
    /// Workload name.
    pub log: String,
    /// Raw size in bytes.
    pub raw_bytes: usize,
    /// Stored (compressed + indexed) size in bytes.
    pub stored_bytes: usize,
    /// Compression wall time in seconds.
    pub compress_secs: f64,
    /// Primary-query latency in seconds (median of the runs).
    pub query_secs: f64,
    /// Number of lines the primary query returned.
    pub query_hits: usize,
}

impl Measurement {
    /// Compression ratio.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.stored_bytes.max(1) as f64
    }

    /// Compression speed in MB/s.
    pub fn speed_mb_s(&self) -> f64 {
        self.raw_bytes as f64 / 1e6 / self.compress_secs.max(1e-9)
    }

    /// Query latency scaled linearly to one TB of raw logs, in seconds —
    /// the normalization used when feeding Equation 1.
    pub fn query_secs_per_tb(&self) -> f64 {
        self.query_secs * (1e12 / self.raw_bytes.max(1) as f64)
    }
}

/// Compresses `raw` with `sys`, then runs `query` `runs` times on a freshly
/// opened archive each time (direct mode: no cross-run caching) and records
/// the median latency.
pub fn measure_system(
    sys: &dyn LogSystem,
    log: &str,
    raw: &[u8],
    query: &str,
    runs: usize,
) -> Result<Measurement, String> {
    let t0 = Instant::now();
    let stored = sys.compress(raw)?;
    let compress_secs = t0.elapsed().as_secs_f64();

    let mut lat = Vec::with_capacity(runs.max(1));
    let mut hits = 0usize;
    for _ in 0..runs.max(1) {
        // Re-open per run so per-archive caches (query cache, decoded
        // segments) cannot carry results across runs.
        let archive = sys.open(&stored)?;
        let t1 = Instant::now();
        let result = archive.query(query)?;
        lat.push(t1.elapsed().as_secs_f64());
        hits = result.len();
    }
    lat.sort_by(f64::total_cmp);
    Ok(Measurement {
        system: sys.name(),
        log: log.to_string(),
        raw_bytes: raw.len(),
        stored_bytes: stored.len(),
        compress_secs,
        query_secs: lat[lat.len() / 2],
        query_hits: hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::GzipGrep;

    #[test]
    fn measurement_fields_are_sane() {
        let spec = workloads::by_name("Log C").unwrap();
        // 256 KiB ≈ 4400 lines: the ERROR template is weighted 1/401, so a
        // smaller sample can plausibly roll zero hits for some seeds.
        let raw = spec.generate(1, 256 * 1024);
        let m = measure_system(&GzipGrep, "Log C", &raw, &spec.queries[0], 3).unwrap();
        assert!(m.ratio() > 2.0, "ratio {}", m.ratio());
        assert!(m.speed_mb_s() > 0.0);
        assert!(m.query_secs > 0.0);
        assert!(m.query_hits > 0);
        assert!(m.query_secs_per_tb() > m.query_secs);
    }
}
