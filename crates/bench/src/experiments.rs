//! The figure/table experiments, shared by the bench targets in `benches/`.

use crate::cost::CostModel;
use crate::runner::{measure_system, Measurement};
use crate::table::{fmt, Table};
use crate::{bench_bytes, bench_seed, geomean};
use baselines::{Clp, GzipGrep, LogGrepSystem, LogSystem, MiniEs};
use loggrep::LogGrepConfig;
use workloads::LogSpec;

/// The five systems of Figure 7/8, in paper order.
pub fn systems() -> Vec<Box<dyn LogSystem>> {
    vec![
        Box::new(GzipGrep),
        Box::new(Clp::default()),
        Box::new(MiniEs::default()),
        Box::new(LogGrepSystem::sp()),
        Box::new(LogGrepSystem::full()),
    ]
}

/// Figure 7 (a, b, c): query latency, compression ratio and compression
/// speed per log for all five systems. Returns the raw measurements so
/// Figure 8 can reuse them.
pub fn fig7(logs: &[LogSpec], title: &str) -> Vec<Vec<Measurement>> {
    let bytes = bench_bytes();
    let seed = bench_seed();
    println!("== {title} ==");
    println!(
        "block size: {} KiB per log, seed {seed} (LOGGREP_BENCH_BYTES / LOGGREP_BENCH_SEED)\n",
        bytes / 1024
    );

    let mut all: Vec<Vec<Measurement>> = Vec::new();
    for spec in logs {
        let raw = spec.generate(seed, bytes);
        let mut row = Vec::new();
        for sys in systems() {
            let m = measure_system(sys.as_ref(), &spec.name, &raw, &spec.queries[0], 3)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", sys.name(), spec.name));
            row.push(m);
        }
        all.push(row);
    }

    let names: Vec<String> = systems().iter().map(|s| s.name()).collect();
    let mut header = vec!["log".to_string()];
    header.extend(names.iter().cloned());

    println!("(a) query latency [ms] (lower is better)");
    let mut t = Table::new(header.clone());
    for row in &all {
        let mut cells = vec![row[0].log.clone()];
        cells.extend(row.iter().map(|m| fmt(m.query_secs * 1e3)));
        t.row(cells);
    }
    t.print();
    let lg = names.len() - 1;
    for (i, name) in names.iter().enumerate().take(names.len() - 1) {
        let speedups: Vec<f64> = all
            .iter()
            .map(|row| row[i].query_secs / row[lg].query_secs.max(1e-9))
            .collect();
        println!(
            "  LogGrep vs {name}: {:.2}x lower latency (geomean; paper: ggrep ~30.6x/14.6x, CLP ~35.7x/13.7x, ES ~0.5-3x, LG-SP ~10.1x/7.0x)",
            geomean(&speedups)
        );
    }

    println!("\n(b) compression ratio (higher is better)");
    let mut t = Table::new(header.clone());
    for row in &all {
        let mut cells = vec![row[0].log.clone()];
        cells.extend(row.iter().map(|m| fmt(m.ratio())));
        t.row(cells);
    }
    t.print();
    for (i, name) in names.iter().enumerate().take(names.len() - 1) {
        let gains: Vec<f64> = all
            .iter()
            .map(|row| row[lg].ratio() / row[i].ratio().max(1e-9))
            .collect();
        println!(
            "  LogGrep vs {name}: {:.2}x higher ratio (geomean; paper: gzip ~2.6x/4.0x, CLP ~2.1x, ES ~23x/41x, LG-SP ~1x)",
            geomean(&gains)
        );
    }

    println!("\n(c) compression speed [MB/s] (higher is better)");
    let mut t = Table::new(header);
    for row in &all {
        let mut cells = vec![row[0].log.clone()];
        cells.extend(row.iter().map(|m| fmt(m.speed_mb_s())));
        t.row(cells);
    }
    t.print();
    for (i, name) in names.iter().enumerate().take(names.len() - 1) {
        let rel: Vec<f64> = all
            .iter()
            .map(|row| row[lg].speed_mb_s() / row[i].speed_mb_s().max(1e-9))
            .collect();
        println!(
            "  LogGrep vs {name}: {:.2}x the speed (geomean; paper: gzip ~0.10x/0.14x, CLP ~0.16x/0.35x, ES ~8.3x/11.2x, LG-SP ~0.86x)",
            geomean(&rel)
        );
    }
    println!();
    all
}

/// Figure 8: overall cost per TB (Equation 1) with breakdown, plus the
/// §6.1/§6.2 ES break-even query frequency.
pub fn fig8(measurements: &[Vec<Measurement>], title: &str) {
    let model = CostModel::default();
    let names: Vec<String> = systems().iter().map(|s| s.name()).collect();
    println!("== {title} ==");
    println!(
        "Equation 1 constants: ${}/GB-month x {} months, ${}/CPU-hour, {} queries\n",
        model.storage_per_gb_month, model.months, model.cpu_per_hour, model.query_frequency
    );

    // Average the per-log characteristics per system.
    let mut t = Table::new([
        "system", "storage$", "compress$", "query$", "total $/TB",
    ]);
    let mut profiles = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let ratio = geomean(
            &measurements
                .iter()
                .map(|row| row[i].ratio())
                .collect::<Vec<_>>(),
        );
        let speed = geomean(
            &measurements
                .iter()
                .map(|row| row[i].speed_mb_s())
                .collect::<Vec<_>>(),
        );
        let lat = geomean(
            &measurements
                .iter()
                .map(|row| row[i].query_secs_per_tb())
                .collect::<Vec<_>>(),
        );
        let cost = model.cost_per_tb(ratio, speed, lat);
        t.row([
            name.clone(),
            fmt(cost.storage),
            fmt(cost.compression),
            fmt(cost.query),
            fmt(cost.total()),
        ]);
        profiles.push((name.clone(), ratio, speed, lat, cost));
    }
    t.print();

    let lg = &profiles[profiles.len() - 1];
    for p in profiles.iter().take(profiles.len() - 1) {
        println!(
            "  LogGrep cost = {:.0}% of {} (paper: ggrep 34%, CLP 36%/41%, ES 7%/5%, LG-SP 73%/74%)",
            100.0 * lg.4.total() / p.4.total(),
            p.0
        );
    }

    // ES break-even (§6.1): frequency where ES beats LogGrep.
    let es = &profiles[2];
    match model.break_even_frequency((lg.1, lg.2, lg.3), (es.1, es.2, es.3)) {
        Some(f) => println!(
            "  ES becomes cheaper than LogGrep above ~{f:.0} queries (paper: 7.4k-542k prod, 17.7k-125k public)"
        ),
        None => println!("  ES never becomes cheaper than LogGrep at these measurements"),
    }
    println!();
}

/// Figure 9: effect of individual techniques. Ablated query latency
/// normalized to the full system (higher = that technique mattered more).
pub fn fig9(logs: &[LogSpec]) {
    let bytes = bench_bytes();
    let seed = bench_seed();
    println!("== Figure 9: effects of individual techniques ==");
    println!("block size: {} KiB per log\n", bytes / 1024);

    let ablations: Vec<(&str, LogGrepConfig, f64)> = vec![
        ("w/o real", LogGrepConfig::without_real(), 1.51),
        ("w/o nomi", LogGrepConfig::without_nominal(), 4.03),
        ("w/o stamp", LogGrepConfig::without_stamps(), 3.59),
        ("w/o fixed", LogGrepConfig::without_fixed(), 1.89),
    ];

    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); ablations.len() + 1];
    for spec in logs {
        let raw = spec.generate(seed, bytes);
        let full = LogGrepSystem::full();
        let base = measure_system(&full, &spec.name, &raw, &spec.queries[0], 3)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        for (i, (label, config, _)) in ablations.iter().enumerate() {
            let sys = LogGrepSystem::with_config(label, config.clone());
            let m = measure_system(&sys, &spec.name, &raw, &spec.queries[0], 3)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            norm[i].push(m.query_secs / base.query_secs.max(1e-9));
        }
        // "w/o cache" is evaluated in refining mode: the second identical
        // query hits the cache in the full system and re-executes without.
        let archive_cached = full.engine().compress_to_archive(&raw).unwrap();
        let _ = archive_cached.query(&spec.queries[0]).unwrap();
        let t0 = std::time::Instant::now();
        let _ = archive_cached.query(&spec.queries[0]).unwrap();
        let cached = t0.elapsed().as_secs_f64();
        let nocache_engine =
            LogGrepSystem::with_config("w/o cache", LogGrepConfig::without_cache());
        let archive_nc = nocache_engine.engine().compress_to_archive(&raw).unwrap();
        let _ = archive_nc.query(&spec.queries[0]).unwrap();
        let t1 = std::time::Instant::now();
        let _ = archive_nc.query(&spec.queries[0]).unwrap();
        let uncached = t1.elapsed().as_secs_f64();
        norm[ablations.len()].push(uncached / cached.max(1e-9));
    }

    let mut t = Table::new(["version", "normalized latency (x)", "paper (x)"]);
    t.row(["full", "1.00".to_string().as_str(), "1.00"]);
    for (i, (label, _, paper)) in ablations.iter().enumerate() {
        t.row([
            label.to_string(),
            format!("{:.2}", geomean(&norm[i])),
            format!("{paper:.2}"),
        ]);
    }
    t.row([
        "w/o cache (refining)".to_string(),
        format!("{:.2}", geomean(&norm[ablations.len()])),
        "2.08".to_string(),
    ]);
    t.print();

    // §6.3: padding's effect on compression ratio.
    let mut rel = Vec::new();
    for spec in logs {
        let raw = spec.generate(seed, bytes);
        let padded = LogGrepSystem::full().compress(&raw).unwrap().len();
        let unpadded = LogGrepSystem::with_config("nf", LogGrepConfig::without_fixed())
            .compress(&raw)
            .unwrap()
            .len();
        rel.push(unpadded as f64 / padded as f64);
    }
    println!(
        "\npadding vs no padding: ratio with padding is {:.3}x of without (paper: 0.99-1.10x, avg 1.04x)\n",
        geomean(&rel)
    );
}

/// Figure 3: distribution of single- vs multi-pattern variable vectors by
/// duplication rate.
pub fn fig3(logs: &[LogSpec]) {
    use loggrep::extract::{duplication_rate, real};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let bytes = bench_bytes();
    let seed = bench_seed();
    println!("== Figure 3: single- vs multi-pattern vectors by duplication rate ==\n");

    // Buckets of width 0.1 over [0, 1].
    let mut single = [0usize; 10];
    let mut multi = [0usize; 10];
    let config = LogGrepConfig::default();
    for spec in logs {
        let raw = spec.generate(seed, bytes);
        let lines: Vec<&[u8]> = loggrep::engine::split_lines(&raw);
        let parser = logparse::Parser::train(&config.parser, lines.iter().copied());
        let parsed = parser.parse_all(lines.iter().copied());
        for group in &parsed.groups {
            for values in &group.vars {
                if values.len() < config.min_vector_for_patterns {
                    continue;
                }
                let rate = duplication_rate(values);
                let bucket = ((rate * 10.0) as usize).min(9);
                // Single-pattern = one extracted pattern covers >= 90 %.
                let mut rng = StdRng::seed_from_u64(7);
                let is_single = real::extract(values, &config, &mut rng)
                    .map(|ex| {
                        ex.outlier_rows.len() as f64 <= values.len() as f64 * 0.1
                    })
                    .unwrap_or(false);
                if is_single {
                    single[bucket] += 1;
                } else {
                    multi[bucket] += 1;
                }
            }
        }
    }

    let mut t = Table::new(["dup-rate bucket", "single-pattern", "multi-pattern"]);
    for b in 0..10 {
        t.row([
            format!("{:.1}-{:.1}", b as f64 / 10.0, (b + 1) as f64 / 10.0),
            single[b].to_string(),
            multi[b].to_string(),
        ]);
    }
    t.print();
    let low_single: usize = single[..5].iter().sum();
    let low_multi: usize = multi[..5].iter().sum();
    println!(
        "\nlow-duplication vectors that are single-pattern: {}/{} (paper: the bathtub's left side is overwhelmingly single-pattern)\n",
        low_single,
        low_single + low_multi
    );
}

/// §2.2 strictness table: character-type groups and length variance at
/// block / variable-vector / sub-variable granularity.
pub fn strictness(logs: &[LogSpec]) {
    use loggrep::extract::{extract_vector, Extraction};
    use loggrep::typemask::TypeMask;

    let bytes = bench_bytes();
    let seed = bench_seed();
    println!("== §2.2 / §2.3: summary strictness by granularity ==\n");

    fn stats<'a, I: Iterator<Item = &'a [u8]> + Clone>(values: I) -> (f64, f64) {
        let mut mask = TypeMask::EMPTY;
        let mut n = 0usize;
        let mut sum = 0f64;
        for v in values.clone() {
            mask.absorb(v);
            sum += v.len() as f64;
            n += 1;
        }
        if n == 0 {
            return (0.0, 0.0);
        }
        let mean = sum / n as f64;
        let var = values
            .map(|v| (v.len() as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        (mask.group_count() as f64, var)
    }

    let config = LogGrepConfig::default();
    let (mut block_t, mut block_v, mut vec_t, mut vec_v, mut sub_t, mut sub_v) =
        (vec![], vec![], vec![], vec![], vec![], vec![]);
    for spec in logs {
        let raw = spec.generate(seed, bytes);
        let lines: Vec<&[u8]> = loggrep::engine::split_lines(&raw);
        let parser = logparse::Parser::train(&config.parser, lines.iter().copied());
        let parsed = parser.parse_all(lines.iter().copied());

        // Block granularity: all variable values of the block together.
        let all_values = parsed
            .groups
            .iter()
            .flat_map(|g| g.vars.iter())
            .flat_map(|v| v.iter());
        let (t, v) = stats(all_values);
        block_t.push(t);
        block_v.push(v);

        for (gi, group) in parsed.groups.iter().enumerate() {
            for (vi, values) in group.vars.iter().enumerate() {
                if values.len() < config.min_vector_for_patterns {
                    continue;
                }
                let (t, var) = stats(values.iter());
                vec_t.push(t);
                vec_v.push(var);
                match extract_vector(values, &config, (gi * 131 + vi) as u64) {
                    Extraction::Real(ex) => {
                        for sv in &ex.sub_values {
                            let (t, var) = stats(sv.iter().copied());
                            sub_t.push(t);
                            sub_v.push(var);
                        }
                    }
                    Extraction::Nominal(ex) => {
                        let regions = loggrep::vector::VectorMeta::dict_regions(&ex.patterns)
                            .unwrap_or_default();
                        for r in &regions {
                            let vals = &ex.dict_values
                                [r.first_index as usize..(r.first_index + r.count) as usize];
                            let (t, var) = stats(vals.iter().map(|v| v.as_slice()));
                            sub_t.push(t);
                            sub_v.push(var);
                        }
                    }
                    Extraction::Plain => {}
                }
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut t = Table::new(["granularity", "char-type groups", "length variance", "paper"]);
    t.row([
        "whole block".to_string(),
        fmt(avg(&block_t)),
        fmt(avg(&block_v)),
        "5.8 / 198.5".to_string(),
    ]);
    t.row([
        "variable vector".to_string(),
        fmt(avg(&vec_t)),
        fmt(avg(&vec_v)),
        "3.1 / 66.1".to_string(),
    ]);
    t.row([
        "sub-variable vector".to_string(),
        fmt(avg(&sub_t)),
        fmt(avg(&sub_v)),
        "1.5 / 32.5".to_string(),
    ]);
    t.print();
    println!();
}
