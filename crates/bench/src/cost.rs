//! The overall-cost model of §6, Equation 1:
//!
//! ```text
//! C_total = C_storage · Duration · Size / CompressionRatio
//!         + C_cpu · Size / CompressionSpeed
//!         + C_cpu · QueryLatency · QueryFrequency
//! ```
//!
//! Constants follow the paper: storage $0.017/GB-month (erasure coding
//! included), 6 months retention, CPU $0.016/hour, and a default query
//! frequency of 100 over the retention period.

/// The cost-model constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Storage price in $/GB-month.
    pub storage_per_gb_month: f64,
    /// Retention in months.
    pub months: f64,
    /// CPU price in $/hour (single core, as in §6's normalization).
    pub cpu_per_hour: f64,
    /// Queries over the retention period.
    pub query_frequency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            storage_per_gb_month: 0.017,
            months: 6.0,
            cpu_per_hour: 0.016,
            query_frequency: 100.0,
        }
    }
}

/// Cost breakdown for one system on 1 TB of logs, in dollars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemCost {
    /// Storage cost over the retention period.
    pub storage: f64,
    /// One-time compression CPU cost.
    pub compression: f64,
    /// Query CPU cost over the retention period.
    pub query: f64,
}

impl SystemCost {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.storage + self.compression + self.query
    }
}

impl CostModel {
    /// Computes the per-TB cost of a system from its measured
    /// characteristics: compression ratio, compression speed (MB/s, one
    /// core) and query latency (seconds per TB of raw logs, one core).
    pub fn cost_per_tb(
        &self,
        compression_ratio: f64,
        compression_speed_mb_s: f64,
        query_latency_s_per_tb: f64,
    ) -> SystemCost {
        let size_gb = 1000.0; // 1 TB in GB (decimal, matching $/GB pricing).
        let storage = self.storage_per_gb_month * self.months * size_gb / compression_ratio.max(1e-9);
        let compress_hours = size_gb * 1000.0 / compression_speed_mb_s.max(1e-9) / 3600.0;
        let compression = self.cpu_per_hour * compress_hours;
        let query_hours = query_latency_s_per_tb / 3600.0 * self.query_frequency;
        let query = self.cpu_per_hour * query_hours;
        SystemCost {
            storage,
            compression,
            query,
        }
    }

    /// The query frequency at which system `a` stops being cheaper than
    /// system `b` (both given as per-TB measurements at frequency 0), i.e.
    /// the §6.1 "ES break-even" computation. Returns `None` if `a` is never
    /// cheaper or always cheaper.
    pub fn break_even_frequency(
        &self,
        a: (f64, f64, f64), // (ratio, speed, latency s/TB)
        b: (f64, f64, f64),
    ) -> Option<f64> {
        let base = CostModel {
            query_frequency: 0.0,
            ..*self
        };
        let fixed_a = base.cost_per_tb(a.0, a.1, a.2).total();
        let fixed_b = base.cost_per_tb(b.0, b.1, b.2).total();
        let per_query_a = self.cpu_per_hour * a.2 / 3600.0;
        let per_query_b = self.cpu_per_hour * b.2 / 3600.0;
        let fixed_gap = fixed_b - fixed_a; // How much cheaper b's fixed cost is when negative.
        let slope_gap = per_query_a - per_query_b;
        if slope_gap <= 0.0 {
            return None; // a's queries are not more expensive; no crossover.
        }
        // a cheaper while fixed_a + f·pa < fixed_b + f·pb  ⇔  f < gap/slope.
        let f = fixed_gap / slope_gap;
        if f <= 0.0 {
            None
        } else {
            Some(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_dominates_low_ratio() {
        let m = CostModel::default();
        let poor = m.cost_per_tb(1.0, 100.0, 10.0);
        let good = m.cost_per_tb(30.0, 2.0, 10.0);
        assert!(poor.storage > good.storage * 20.0);
        assert!(poor.total() > good.total());
    }

    #[test]
    fn paper_scale_sanity() {
        // gzip-like system: ratio ~12, 60 MB/s, 20-minute queries per TB.
        let m = CostModel::default();
        let c = m.cost_per_tb(12.0, 60.0, 1200.0);
        // Storage: .017*6*1000/12 = 8.5 $/TB — the right order of magnitude
        // for Figure 8's y-axis.
        assert!((c.storage - 8.5).abs() < 0.01);
        assert!(c.total() > 8.5 && c.total() < 20.0);
    }

    #[test]
    fn break_even_exists_when_fixed_cheaper_but_queries_dearer() {
        let m = CostModel::default();
        // a: cheap storage, slow queries. b: pricey storage, instant queries.
        let f = m
            .break_even_frequency((30.0, 2.0, 60.0), (1.0, 1.0, 1.0))
            .expect("crossover expected");
        assert!(f > 100.0, "f = {f}");
        // No crossover when a is better on both axes.
        assert!(m
            .break_even_frequency((30.0, 2.0, 1.0), (1.0, 1.0, 60.0))
            .is_none());
    }
}
