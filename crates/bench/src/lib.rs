//! Benchmark harness library: measurement runners, the Equation-1 cost
//! model, and table formatting shared by the per-figure bench targets.
//!
//! Every table and figure of the paper's evaluation (§6) has a bench target
//! in `benches/` that regenerates it; see `DESIGN.md` for the index. Sizes
//! default to laptop scale and can be increased with the
//! `LOGGREP_BENCH_BYTES` environment variable.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod experiments;
pub mod regression;
pub mod runner;
pub mod table;
pub mod trace;

pub use cost::{CostModel, SystemCost};
pub use runner::{measure_system, Measurement};
pub use table::Table;
pub use trace::per_stage_json;

/// Bytes of log generated per log type (default 1 MiB; override with
/// `LOGGREP_BENCH_BYTES`).
pub fn bench_bytes() -> usize {
    std::env::var("LOGGREP_BENCH_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20)
}

/// The seed used by every harness (override with `LOGGREP_BENCH_SEED`).
pub fn bench_seed() -> u64 {
    std::env::var("LOGGREP_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Geometric mean of a nonempty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }
}
