//! Minimal aligned-text table printing for the figure harnesses.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                if i + 1 < ncols {
                    for _ in cell.len()..widths[i] + 2 {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["log", "ratio"]);
        t.row(["A", "12.5"]);
        t.row(["LongName", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("log"));
        assert!(lines[3].starts_with("LongName"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(12.34), "12.34");
        assert_eq!(fmt(0.1234), "0.1234");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
