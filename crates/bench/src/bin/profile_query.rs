fn main() {
    let spec = workloads::by_name("Log A").unwrap();
    let raw = spec.generate(42, 4 << 20);
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig::default());
    let (boxed, cstats) = engine.compress_with_stats(&raw).unwrap();
    eprintln!("compress: ratio {:.1}, groups {}, capsules {}, real {} nominal {} plain {}",
        cstats.ratio(), cstats.groups, cstats.capsules, cstats.real_vectors, cstats.nominal_vectors, cstats.plain_vectors);
    let archive = engine.open(boxed);
    for q in [&spec.queries[0], "ERROR", "zz-absent"] {
        let t = std::time::Instant::now();
        let r = archive.query(q).unwrap();
        eprintln!("query `{q}`: {:?} hits {} caps_decomp {} bytes_decomp {} stamp_rej {} groups_skipped {} rows_verified {}",
            t.elapsed(), r.lines.len(), r.stats.capsules_decompressed, r.stats.bytes_decompressed,
            r.stats.stamp_rejections, r.stats.groups_skipped, r.stats.rows_verified);
    }
}
