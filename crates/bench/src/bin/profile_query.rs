//! Ad-hoc query profiler: compresses one workload, runs a few queries, and
//! prints the per-stage telemetry breakdown in the same format as the CLI's
//! `--trace` flag (`--json` switches to the machine-readable per-stage
//! report from `bench::per_stage_json`; `--log <name>` picks the workload).

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let log = argv
        .iter()
        .position(|a| a == "--log")
        .and_then(|i| argv.get(i + 1).cloned())
        .unwrap_or_else(|| "Log A".to_string());
    telemetry::set_enabled(true);
    telemetry::reset();

    let spec = workloads::by_name(&log).unwrap();
    let raw = spec.generate(42, 4 << 20);
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig::default());
    let (boxed, cstats) = engine.compress_with_stats(&raw).unwrap();
    eprintln!(
        "compress: ratio {:.1}, speed {:.1} MB/s, groups {}, {} capsule(s)",
        cstats.ratio(),
        cstats.speed_mb_s(),
        cstats.groups,
        cstats.capsules,
    );
    let archive = engine.open(boxed);
    for q in [spec.queries[0].as_str(), "ERROR", "zz-absent"] {
        let r = archive.query(q).unwrap();
        eprintln!(
            "query `{q}`: {} hit(s), plan {:.3} ms / execute {:.3} ms",
            r.lines.len(),
            r.stats.plan_elapsed.as_secs_f64() * 1e3,
            r.stats.execute_elapsed().as_secs_f64() * 1e3,
        );
    }

    let snap = telemetry::snapshot();
    if json {
        print!("{}", bench::per_stage_json(&snap));
    } else {
        eprintln!("-- trace --");
        eprint!("{}", telemetry::export_trace_text(&snap));
    }
}
