//! Hot-path benchmark feeding the perf-regression trajectory.
//!
//! ```text
//! hotpath [--out BENCH_hotpath.json] [--label ci] [--log "Log C"] [--bytes N]
//!         [--check] [--no-append]
//! ```
//!
//! One run measures, on one workload:
//!
//! * compression throughput (best of 3, MB/s);
//! * a selective query and a full-scan query (median of 5 cold-cache
//!   samples, interleaved in ABBA order, seconds);
//! * the wall-time overhead of the sampling profiler at its default rate
//!   while the selective query loops (percent — the `<5%` design bound);
//! * the aggregate arm: a pushed-down `count-by-template` (metadata only)
//!   vs the naive reconstruct-every-line-then-tally pipeline (median of 5
//!   cold ABBA pairs each) — the pushdown's headline speedup.
//!
//! The result is appended as one record to the `--out` trajectory file
//! (created if missing) so the committed file accumulates the perf history.
//! `--check` replays [`bench::regression::check`] over the trajectory and
//! exits nonzero if the newest run regressed beyond the thresholds — the
//! CI gate for compress throughput and selective-query latency. The gate
//! is two-sided: a run that *beats* the baseline median by the same margin
//! is re-measured once, and if the field-wise worst of both passes still
//! improves, the run is recorded with a `baseline` marker that pins future
//! comparison windows ([`bench::regression::improvements`]).

#![forbid(unsafe_code)]

use bench::regression::{self, Record};
use std::time::Instant;

struct Args {
    out: String,
    label: String,
    log: String,
    bytes: usize,
    check: bool,
    append: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_hotpath.json".to_string(),
        label: "local".to_string(),
        log: "Log C".to_string(),
        bytes: 4 << 20,
        check: false,
        append: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--label" => {
                args.label = value(i);
                i += 2;
            }
            "--log" => {
                args.log = value(i);
                i += 2;
            }
            "--bytes" => {
                args.bytes = value(i).parse().expect("byte count");
                i += 2;
            }
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--no-append" => {
                args.append = false;
                i += 1;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

/// Best wall time of `tries` runs of `f`, in seconds.
fn best_of<F: FnMut()>(tries: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..tries {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Median of a nonempty sample vector, in place.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// One full measurement pass over every tracked metric.
fn measure(args: &Args, raw: &[u8], selective_query: &str, scan_query: &str) -> Record {
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig::default());

    let compress_secs = best_of(3, || {
        let boxed = engine.compress(raw).unwrap();
        std::hint::black_box(&boxed);
    });
    let compress_mb_s = raw.len() as f64 / 1e6 / compress_secs;

    let archive = engine.open(engine.compress(raw).unwrap());
    // Selective and scan queries: 5 cold-cache samples each, taken as
    // ABBA-counterbalanced pairs (sel/scan, scan/sel, ...) so monotone host
    // drift lands evenly on both metrics, summarized by the MEDIAN. The
    // two-sided ratchet compares these numbers in both directions; a
    // min-of-N estimator would record optimistic baselines that honest
    // later runs could not reproduce.
    let time_one = |q: &str| {
        archive.clear_caches();
        let t = Instant::now();
        let r = archive.query(q).unwrap();
        std::hint::black_box(r.lines.len());
        t.elapsed().as_secs_f64()
    };
    time_one(selective_query); // untimed warm-up: arena, line index, page-in
    time_one(scan_query);
    let mut sel_samples = Vec::new();
    let mut scan_samples = Vec::new();
    for pair in 0..5 {
        if pair % 2 == 0 {
            sel_samples.push(time_one(selective_query));
            scan_samples.push(time_one(scan_query));
        } else {
            scan_samples.push(time_one(scan_query));
            sel_samples.push(time_one(selective_query));
        }
    }
    let selective_secs = median(&mut sel_samples);
    let scan_secs = median(&mut scan_samples);

    // Aggregate arm: pushed-down `count-by-template` (metadata only) vs
    // the naive pipeline — reconstruct every line, then tally lines per
    // template. The naive arm matches all lines with the block's shared
    // leading token (the timestamp date for the catalog logs), which
    // exercises exactly the reconstruction a pre-pushdown engine would
    // pay. Same estimator as the query arms: 5 cold ABBA pairs, median.
    let spec = loggrep::AggSpec::CountByTemplate;
    let all_token: String = raw
        .split(|&b| b == b' ' || b == b'\n')
        .next()
        .map(|t| String::from_utf8_lossy(t).into_owned())
        .unwrap_or_else(|| "e".to_string());
    let time_pushdown = || {
        archive.clear_caches();
        let t = Instant::now();
        let r = archive.query_agg(None, &spec).unwrap();
        std::hint::black_box(&r.agg);
        t.elapsed().as_secs_f64()
    };
    let time_reconstruct = || {
        archive.clear_caches();
        let t = Instant::now();
        let r = archive.query(&all_token).unwrap();
        let groups = &archive.capsule_box().groups;
        let mut line_group = vec![u32::MAX; archive.total_lines() as usize];
        for (gi, g) in groups.iter().enumerate() {
            for &l in &g.line_numbers {
                line_group[l as usize] = gi as u32;
            }
        }
        let mut counts = vec![0u64; groups.len()];
        for &l in &r.line_numbers {
            counts[line_group[l as usize] as usize] += 1;
        }
        std::hint::black_box(&counts);
        t.elapsed().as_secs_f64()
    };
    time_pushdown(); // untimed warm-up, as above
    time_reconstruct();
    let mut pushdown_samples = Vec::new();
    let mut reconstruct_samples = Vec::new();
    for pair in 0..5 {
        if pair % 2 == 0 {
            pushdown_samples.push(time_pushdown());
            reconstruct_samples.push(time_reconstruct());
        } else {
            reconstruct_samples.push(time_reconstruct());
            pushdown_samples.push(time_pushdown());
        }
    }
    let agg_pushdown_secs = median(&mut pushdown_samples);
    let agg_reconstruct_secs = median(&mut reconstruct_samples);

    // Sampler overhead: the same selective-query loop with and without the
    // profiler attached. Span publication must be live in both arms (the
    // sampler reads published span stacks), so telemetry is enabled for
    // the whole comparison. One measurement round runs 7 alternating
    // plain/sampled pairs and takes the MEDIAN of the per-pair relative
    // deltas: paired deltas cancel slow drift, and the median discards
    // pairs where either arm caught a noisy slice (virtualized hosts show
    // one-sided stalls worth ±15% of an ~85 ms arm). One median still
    // carries a few percent of standard error, so the CI-enforced number
    // is the MINIMUM over up to 3 rounds — a real sampler regression
    // inflates every round, while noise rarely inflates all of them —
    // stopping early once a round lands comfortably under the bound.
    telemetry::set_enabled(true);
    // Size the loop so one arm runs ~100 ms of query work: each sampled
    // arm pays a fixed `Sampler::start`/`stop` cost (a thread spawn —
    // ~1 ms on virtualized hosts), and against a too-short arm that
    // fixed cost would read as steady-state sampler overhead. Sizing by
    // the just-measured selective latency keeps the arm length stable
    // as the query gets faster.
    let loops = ((0.1 / selective_secs.max(1e-6)).ceil() as usize).clamp(32, 4096);
    let query_loop = || {
        for _ in 0..loops {
            archive.clear_caches();
            let r = archive.query(selective_query).unwrap();
            std::hint::black_box(r.lines.len());
        }
    };
    query_loop(); // untimed warm-up: caches, allocator, page-in
    let sampled_loop = || {
        let sampler = telemetry::Sampler::start(0); // 0 = default rate
        query_loop();
        let report = sampler.stop();
        std::hint::black_box(report.total_samples);
    };
    let overhead_round = || {
        let mut deltas = Vec::new();
        for pair in 0..9 {
            // ABBA counterbalancing: odd pairs run sampled-first so a
            // monotone host slowdown inflates half the deltas and
            // deflates the other half instead of biasing all of them.
            let (plain, sampled) = if pair % 2 == 0 {
                let plain = best_of(1, query_loop);
                (plain, best_of(1, sampled_loop))
            } else {
                let sampled = best_of(1, sampled_loop);
                (best_of(1, query_loop), sampled)
            };
            deltas.push((sampled - plain) / plain * 100.0);
        }
        deltas.sort_by(|a, b| a.total_cmp(b));
        deltas[deltas.len() / 2]
    };
    let mut sampler_overhead_pct = f64::INFINITY;
    for _ in 0..3 {
        sampler_overhead_pct = sampler_overhead_pct.min(overhead_round().max(0.0));
        if sampler_overhead_pct <= regression::SAMPLER_OVERHEAD_LIMIT_PCT / 2.0 {
            break;
        }
    }
    telemetry::set_enabled(false);

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Record {
        label: args.label.clone(),
        unix_secs,
        compress_mb_s,
        selective_secs,
        scan_secs,
        sampler_overhead_pct,
        agg_pushdown_secs,
        agg_reconstruct_secs,
        baseline: false,
    }
}

/// Field-wise best of two measurement passes: a metric's best value across
/// attempts is the closest observable estimate of the code's true cost on a
/// host whose noise only ever makes things look slower.
fn merge_best(a: Record, b: Record) -> Record {
    Record {
        compress_mb_s: a.compress_mb_s.max(b.compress_mb_s),
        selective_secs: a.selective_secs.min(b.selective_secs),
        scan_secs: a.scan_secs.min(b.scan_secs),
        sampler_overhead_pct: a.sampler_overhead_pct.min(b.sampler_overhead_pct),
        agg_pushdown_secs: a.agg_pushdown_secs.min(b.agg_pushdown_secs),
        agg_reconstruct_secs: a.agg_reconstruct_secs.min(b.agg_reconstruct_secs),
        ..a
    }
}

/// Field-wise *worst* of two passes: the conservative merge used before
/// recording a ratchet baseline — an improvement only counts if both
/// independent passes show it, so one lucky slice cannot permanently
/// tighten the gate.
fn merge_worst(a: Record, b: Record) -> Record {
    Record {
        compress_mb_s: a.compress_mb_s.min(b.compress_mb_s),
        selective_secs: a.selective_secs.max(b.selective_secs),
        scan_secs: a.scan_secs.max(b.scan_secs),
        agg_pushdown_secs: a.agg_pushdown_secs.max(b.agg_pushdown_secs),
        agg_reconstruct_secs: a.agg_reconstruct_secs.max(b.agg_reconstruct_secs),
        // Not a ratchet field: the overhead bound is one-sided and its
        // designed estimator is the minimum over rounds (noise only ever
        // inflates it), so the conservative merge keeps the min here.
        sampler_overhead_pct: a.sampler_overhead_pct.min(b.sampler_overhead_pct),
        ..a
    }
}

fn report(log: &str, record: &Record) {
    eprintln!(
        "{log}: compress {:.1} MB/s, selective {:.1} µs, scan {:.2} ms, \
         sampler overhead {:.2}%, agg pushdown {:.1} µs vs reconstruct {:.2} ms",
        record.compress_mb_s,
        record.selective_secs * 1e6,
        record.scan_secs * 1e3,
        record.sampler_overhead_pct,
        record.agg_pushdown_secs * 1e6,
        record.agg_reconstruct_secs * 1e3,
    );
}

fn main() {
    let args = parse_args();
    let spec = workloads::by_name(&args.log)
        .unwrap_or_else(|| panic!("unknown log `{}`", args.log));
    let raw = spec.generate(bench::bench_seed(), args.bytes);
    let selective_query = spec.queries[0].as_str();
    let scan_query = "wor*er";

    let mut record = measure(&args, &raw, selective_query, scan_query);
    report(&args.log, &record);

    let mut history = match std::fs::read_to_string(&args.out) {
        Ok(src) => regression::parse_history(&src)
            .unwrap_or_else(|e| panic!("corrupt trajectory {}: {e}", args.out)),
        Err(_) => Vec::new(),
    };

    if args.check {
        // Confirm before alarming: host slow phases (virtualized CI
        // runners stall for seconds at a time) can inflate a whole
        // measurement pass past the thresholds. A regression must
        // reproduce across fresh passes — re-measure up to twice,
        // folding each pass in field-wise, before declaring failure.
        for attempt in 0..2 {
            let mut trial = history.clone();
            trial.push(record.clone());
            if regression::check(&trial).is_empty() {
                break;
            }
            eprintln!("thresholds exceeded; re-measuring (attempt {})", attempt + 2);
            record = merge_best(record, measure(&args, &raw, selective_query, scan_query));
            report(&args.log, &record);
        }

        // The improvement side of the ratchet: a confirmed win becomes a
        // `baseline` marker that future check windows cannot reach past.
        // The marker permanently tightens the gate, so it takes one retry
        // pass and the field-wise worst of the two before it is recorded.
        let mut trial = history.clone();
        trial.push(record.clone());
        if !regression::improvements(&trial).is_empty() {
            eprintln!("improvement detected; re-measuring to confirm");
            let confirm = measure(&args, &raw, selective_query, scan_query);
            report(&args.log, &confirm);
            let conservative = merge_worst(record.clone(), confirm);
            let mut trial = history.clone();
            trial.push(conservative.clone());
            let wins = regression::improvements(&trial);
            if wins.is_empty() {
                eprintln!("improvement did not reproduce; baseline unchanged");
            } else {
                for w in &wins {
                    eprintln!("RATCHET: {w}");
                }
                record = conservative;
                record.baseline = true;
            }
        }
    }

    history.push(record);
    if args.append {
        std::fs::write(&args.out, regression::render_history(&history)).expect("write trajectory");
        eprintln!("appended run {} to {}", history.len(), args.out);
    }

    if args.check {
        let failures = regression::check(&history);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("regression check passed ({} run(s) in trajectory)", history.len());
    }
}
