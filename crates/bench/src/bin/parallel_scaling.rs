//! Thread-scaling benchmark: compresses one workload and runs a full-scan
//! plus a selective query at each requested thread count, then reports the
//! speedup relative to the serial run.
//!
//! ```text
//! parallel_scaling [--threads 1,2,4] [--log "Log C"] [--bytes N] [--out BENCH_parallel.json]
//! ```
//!
//! The output JSON holds one entry per thread count — wall times, computed
//! speedups, and the full per-stage telemetry report from
//! [`bench::per_stage_json`] — so regressions in either scaling or stage
//! breakdown are visible from one file.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    threads: Vec<usize>,
    log: String,
    bytes: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: vec![1, 2, 4],
        log: "Log C".to_string(),
        bytes: 4 << 20,
        out: "BENCH_parallel.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--threads" => {
                args.threads = value(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("thread count"))
                    .collect();
                i += 2;
            }
            "--log" => {
                args.log = value(i);
                i += 2;
            }
            "--bytes" => {
                args.bytes = value(i).parse().expect("byte count");
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

struct Run {
    threads: usize,
    compress_secs: f64,
    compress_mb_s: f64,
    scan_secs: f64,
    scan_hits: usize,
    selective_secs: f64,
    selective_hits: usize,
    per_stage: String,
}

fn main() {
    let args = parse_args();
    let spec = workloads::by_name(&args.log)
        .unwrap_or_else(|| panic!("unknown log `{}`", args.log));
    let raw = spec.generate(42, args.bytes);
    // A full scan: the wildcard forces verification of every candidate row
    // by reconstruction, touching each group (see query exec §5).
    let scan_query = "wor*er";
    let selective_query = spec.queries[0].as_str();

    let mut runs: Vec<Run> = Vec::new();
    for &threads in &args.threads {
        telemetry::set_enabled(true);
        telemetry::reset();
        let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig {
            threads,
            ..loggrep::LogGrepConfig::default()
        });

        let t0 = Instant::now();
        let boxed = engine.compress(&raw).unwrap();
        let compress_secs = t0.elapsed().as_secs_f64();

        let archive = engine.open(boxed);
        // Fresh archives per query keep the query cache out of the timing;
        // best-of-3 damps scheduler noise.
        let time_query = |q: &str| -> (f64, usize) {
            let mut best = f64::INFINITY;
            let mut hits = 0;
            for _ in 0..3 {
                archive.clear_caches();
                let t = Instant::now();
                let r = archive.query(q).unwrap();
                best = best.min(t.elapsed().as_secs_f64());
                hits = r.lines.len();
            }
            (best, hits)
        };
        let (scan_secs, scan_hits) = time_query(scan_query);
        let (selective_secs, selective_hits) = time_query(selective_query);

        let per_stage = bench::per_stage_json(&telemetry::snapshot());
        telemetry::set_enabled(false);

        eprintln!(
            "threads {threads}: compress {:.3}s ({:.1} MB/s), scan {:.4}s ({scan_hits} hits), \
             selective {:.4}s ({selective_hits} hits)",
            compress_secs,
            raw.len() as f64 / 1e6 / compress_secs,
            scan_secs,
            selective_secs,
        );
        runs.push(Run {
            threads,
            compress_secs,
            compress_mb_s: raw.len() as f64 / 1e6 / compress_secs,
            scan_secs,
            scan_hits,
            selective_secs,
            selective_hits,
            per_stage,
        });
    }

    let serial = runs
        .iter()
        .find(|r| r.threads == 1)
        .unwrap_or(&runs[0]);
    let (serial_compress, serial_scan, serial_selective) =
        (serial.compress_secs, serial.scan_secs, serial.selective_secs);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "\"log\": \"{}\",", args.log);
    // Speedups only materialize up to the host's core count — record it so
    // flat curves on small machines read as environment, not regression.
    let _ = writeln!(json, "\"host_threads\": {},", pool::default_threads());
    let _ = writeln!(json, "\"raw_bytes\": {},", raw.len());
    let _ = writeln!(json, "\"scan_query\": \"{scan_query}\",");
    let _ = writeln!(
        json,
        "\"selective_query\": \"{}\",",
        selective_query.replace('"', "\\\"")
    );
    let _ = writeln!(json, "\"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "{{\"threads\": {}, \"compress_secs\": {:.6}, \"compress_mb_s\": {:.2}, \
             \"compress_speedup\": {:.3}, \"scan_secs\": {:.6}, \"scan_hits\": {}, \
             \"scan_speedup\": {:.3}, \"selective_secs\": {:.6}, \"selective_hits\": {}, \
             \"selective_speedup\": {:.3},\n\"per_stage\": {}}}{comma}",
            r.threads,
            r.compress_secs,
            r.compress_mb_s,
            serial_compress / r.compress_secs,
            r.scan_secs,
            r.scan_hits,
            serial_scan / r.scan_secs,
            r.selective_secs,
            r.selective_hits,
            serial_selective / r.selective_secs,
            r.per_stage.trim_end(),
        );
    }
    let _ = writeln!(json, "]\n}}");

    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
