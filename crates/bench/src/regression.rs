//! Perf-regression tracking over the hot-path benchmark trajectory.
//!
//! The `hotpath` bin appends one [`Record`] per run to `BENCH_hotpath.json`;
//! [`check`] compares the latest run against the median of the preceding
//! runs and reports anything that regressed beyond
//! [`RELATIVE_THRESHOLD`]. CI commits the trajectory, so a regression shows
//! up as a failing check *and* a reviewable diff of the numbers.
//!
//! Medians (rather than the single previous run) absorb one-off scheduler
//! noise; the absolute floors keep micro-benchmarks measured in tens of
//! microseconds from tripping the relative threshold on timer jitter.
//!
//! The gate is a **two-sided ratchet**. Regressions beyond the threshold
//! fail the check, and confirmed improvements are locked in: when a run
//! beats the baseline median by the same margin (see [`improvements`]) the
//! `hotpath` bin re-measures to confirm and appends the run with
//! `baseline: true`. [`check`] never reaches past the most recent baseline
//! marker when building its comparison window, so pre-improvement runs
//! cannot dilute the median back down — a later return to the old, slower
//! numbers fails the check instead of hiding inside a stale window.

use telemetry::json::{self, Value};

/// Relative change that counts as a regression (0.25 = 25%).
pub const RELATIVE_THRESHOLD: f64 = 0.25;

/// Previous runs considered when computing the baseline median.
pub const BASELINE_WINDOW: usize = 5;

/// Ignore selective-query regressions when both sides are under this many
/// seconds (50 µs): at that scale the timer, not the code, is the signal.
pub const SELECTIVE_FLOOR_SECS: f64 = 50e-6;

/// Ignore scan regressions when both sides are under this many seconds.
pub const SCAN_FLOOR_SECS: f64 = 10e-3;

/// Sampler overhead (percent of wall time) above which the check fails —
/// the design bound the profiler must stay inside.
pub const SAMPLER_OVERHEAD_LIMIT_PCT: f64 = 5.0;

/// One hot-path benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Free-form tag for the run (e.g. a git revision or "ci").
    pub label: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_secs: u64,
    /// Compression throughput in MB/s (higher is better).
    pub compress_mb_s: f64,
    /// Best-of-N latency of the selective query, seconds (lower is better).
    pub selective_secs: f64,
    /// Best-of-N latency of the full-scan query, seconds (lower is better).
    pub scan_secs: f64,
    /// Wall-time overhead of running the sampling profiler during the
    /// selective-query loop, in percent (0 when it was not measured).
    pub sampler_overhead_pct: f64,
    /// Median latency of a pushed-down `count-by-template` aggregate,
    /// seconds (0 in trajectories recorded before the aggregate arm).
    pub agg_pushdown_secs: f64,
    /// Median latency of the same aggregate answered naively — reconstruct
    /// every line, then tally per template — seconds (0 when unmeasured).
    pub agg_reconstruct_secs: f64,
    /// Ratchet marker: this run recorded a confirmed improvement, and
    /// [`check`] windows never reach past it. Absent (false) in
    /// pre-ratchet trajectories.
    pub baseline: bool,
}

impl Record {
    fn to_json(&self) -> String {
        let mut label = String::new();
        telemetry::export::push_json_string(&mut label, &self.label);
        let baseline = if self.baseline { ", \"baseline\": true" } else { "" };
        format!(
            "{{\"label\": {label}, \"unix_secs\": {}, \"compress_mb_s\": {:.3}, \
             \"selective_secs\": {:.9}, \"scan_secs\": {:.9}, \
             \"sampler_overhead_pct\": {:.3}, \"agg_pushdown_secs\": {:.9}, \
             \"agg_reconstruct_secs\": {:.9}{baseline}}}",
            self.unix_secs, self.compress_mb_s, self.selective_secs, self.scan_secs,
            self.sampler_overhead_pct, self.agg_pushdown_secs, self.agg_reconstruct_secs,
        )
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let need = |key: &str| v.num(key).ok_or_else(|| format!("run missing `{key}`"));
        Ok(Self {
            label: v.str("label").unwrap_or("").to_string(),
            unix_secs: need("unix_secs")? as u64,
            compress_mb_s: need("compress_mb_s")?,
            selective_secs: need("selective_secs")?,
            scan_secs: need("scan_secs")?,
            sampler_overhead_pct: v.num("sampler_overhead_pct").unwrap_or(0.0),
            // The aggregate arm postdates early trajectories: absent keys
            // parse as 0.0 ("unmeasured") and are excluded from windows.
            agg_pushdown_secs: v.num("agg_pushdown_secs").unwrap_or(0.0),
            agg_reconstruct_secs: v.num("agg_reconstruct_secs").unwrap_or(0.0),
            baseline: matches!(v.get("baseline"), Some(Value::Bool(true))),
        })
    }
}

/// Parses a `BENCH_hotpath.json` trajectory (oldest run first).
pub fn parse_history(src: &str) -> Result<Vec<Record>, String> {
    let doc = json::parse(src)?;
    let runs = doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("missing `runs` array")?;
    runs.iter().map(Record::from_json).collect()
}

/// Renders a trajectory back to the `BENCH_hotpath.json` format.
pub fn render_history(records: &[Record]) -> String {
    let mut out = String::from("{\n\"version\": 1,\n\"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Median of a nonempty slice (mean of the middle pair for even lengths).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The comparison window: up to [`BASELINE_WINDOW`] trailing runs, never
/// reaching past the most recent `baseline` ratchet marker.
fn window(prior: &[Record]) -> &[Record] {
    let anchor = prior
        .iter()
        .rposition(|r| r.baseline)
        .unwrap_or(0);
    let since = &prior[anchor..];
    &since[since.len().saturating_sub(BASELINE_WINDOW)..]
}

/// Checks the newest run against the median of (up to
/// [`BASELINE_WINDOW`]) preceding runs since the last baseline marker.
///
/// Returns one human-readable message per violated bound; an empty vector
/// means the trajectory is healthy. A history with fewer than two runs
/// always passes — there is nothing to compare against yet.
pub fn check(history: &[Record]) -> Vec<String> {
    let mut failures = Vec::new();
    let Some((latest, prior)) = history.split_last() else {
        return failures;
    };
    if latest.sampler_overhead_pct > SAMPLER_OVERHEAD_LIMIT_PCT {
        failures.push(format!(
            "sampler overhead {:.2}% exceeds the {SAMPLER_OVERHEAD_LIMIT_PCT}% bound",
            latest.sampler_overhead_pct,
        ));
    }
    if prior.is_empty() {
        return failures;
    }
    let window = window(prior);

    let mut base: Vec<f64> = window.iter().map(|r| r.compress_mb_s).collect();
    let base_compress = median(&mut base);
    if latest.compress_mb_s < base_compress * (1.0 - RELATIVE_THRESHOLD) {
        failures.push(format!(
            "compress throughput regressed: {:.1} MB/s vs baseline median {:.1} MB/s \
             (> {:.0}% drop)",
            latest.compress_mb_s,
            base_compress,
            RELATIVE_THRESHOLD * 100.0,
        ));
    }

    let mut base: Vec<f64> = window.iter().map(|r| r.selective_secs).collect();
    let base_selective = median(&mut base);
    if latest.selective_secs > base_selective * (1.0 + RELATIVE_THRESHOLD)
        && latest.selective_secs > SELECTIVE_FLOOR_SECS
    {
        failures.push(format!(
            "selective query regressed: {:.1} µs vs baseline median {:.1} µs (> {:.0}% slower)",
            latest.selective_secs * 1e6,
            base_selective * 1e6,
            RELATIVE_THRESHOLD * 100.0,
        ));
    }

    let mut base: Vec<f64> = window.iter().map(|r| r.scan_secs).collect();
    let base_scan = median(&mut base);
    if latest.scan_secs > base_scan * (1.0 + RELATIVE_THRESHOLD)
        && latest.scan_secs > SCAN_FLOOR_SECS
    {
        failures.push(format!(
            "scan query regressed: {:.2} ms vs baseline median {:.2} ms (> {:.0}% slower)",
            latest.scan_secs * 1e3,
            base_scan * 1e3,
            RELATIVE_THRESHOLD * 100.0,
        ));
    }

    // Aggregate arms: 0.0 means "unmeasured" (a trajectory recorded
    // before the arm existed), so zero runs are excluded from the window
    // and an unmeasured latest run skips the check entirely.
    let mut base: Vec<f64> = window
        .iter()
        .map(|r| r.agg_pushdown_secs)
        .filter(|&v| v > 0.0)
        .collect();
    if latest.agg_pushdown_secs > 0.0 && !base.is_empty() {
        let base_pushdown = median(&mut base);
        if latest.agg_pushdown_secs > base_pushdown * (1.0 + RELATIVE_THRESHOLD)
            && latest.agg_pushdown_secs > SELECTIVE_FLOOR_SECS
        {
            failures.push(format!(
                "aggregate pushdown regressed: {:.1} µs vs baseline median {:.1} µs \
                 (> {:.0}% slower)",
                latest.agg_pushdown_secs * 1e6,
                base_pushdown * 1e6,
                RELATIVE_THRESHOLD * 100.0,
            ));
        }
    }

    let mut base: Vec<f64> = window
        .iter()
        .map(|r| r.agg_reconstruct_secs)
        .filter(|&v| v > 0.0)
        .collect();
    if latest.agg_reconstruct_secs > 0.0 && !base.is_empty() {
        let base_reconstruct = median(&mut base);
        if latest.agg_reconstruct_secs > base_reconstruct * (1.0 + RELATIVE_THRESHOLD)
            && latest.agg_reconstruct_secs > SCAN_FLOOR_SECS
        {
            failures.push(format!(
                "aggregate reconstruct-then-count regressed: {:.2} ms vs baseline median \
                 {:.2} ms (> {:.0}% slower)",
                latest.agg_reconstruct_secs * 1e3,
                base_reconstruct * 1e3,
                RELATIVE_THRESHOLD * 100.0,
            ));
        }
    }
    failures
}

/// The improvement side of the ratchet: metrics where the newest run beats
/// the baseline median by more than [`RELATIVE_THRESHOLD`].
///
/// One message per improved metric; empty means nothing ratchet-worthy.
/// Latency improvements below the same absolute floors `check` uses are
/// ignored — at that scale a "win" is timer jitter, and ratcheting it in
/// would set an unmeetable baseline. Callers should confirm with a second
/// measurement pass before recording a `baseline` marker.
pub fn improvements(history: &[Record]) -> Vec<String> {
    let mut wins = Vec::new();
    let Some((latest, prior)) = history.split_last() else {
        return wins;
    };
    if prior.is_empty() {
        return wins;
    }
    let window = window(prior);

    let mut base: Vec<f64> = window.iter().map(|r| r.compress_mb_s).collect();
    let base_compress = median(&mut base);
    if latest.compress_mb_s > base_compress * (1.0 + RELATIVE_THRESHOLD) {
        wins.push(format!(
            "compress throughput improved: {:.1} MB/s vs baseline median {:.1} MB/s",
            latest.compress_mb_s, base_compress,
        ));
    }

    let mut base: Vec<f64> = window.iter().map(|r| r.selective_secs).collect();
    let base_selective = median(&mut base);
    if latest.selective_secs < base_selective * (1.0 - RELATIVE_THRESHOLD)
        && base_selective > SELECTIVE_FLOOR_SECS
    {
        wins.push(format!(
            "selective query improved: {:.1} µs vs baseline median {:.1} µs",
            latest.selective_secs * 1e6,
            base_selective * 1e6,
        ));
    }

    let mut base: Vec<f64> = window.iter().map(|r| r.scan_secs).collect();
    let base_scan = median(&mut base);
    if latest.scan_secs < base_scan * (1.0 - RELATIVE_THRESHOLD) && base_scan > SCAN_FLOOR_SECS {
        wins.push(format!(
            "scan query improved: {:.2} ms vs baseline median {:.2} ms",
            latest.scan_secs * 1e3,
            base_scan * 1e3,
        ));
    }

    // Aggregate arms mirror `check`: unmeasured (0.0) runs never count.
    let mut base: Vec<f64> = window
        .iter()
        .map(|r| r.agg_pushdown_secs)
        .filter(|&v| v > 0.0)
        .collect();
    if latest.agg_pushdown_secs > 0.0 && !base.is_empty() {
        let base_pushdown = median(&mut base);
        if latest.agg_pushdown_secs < base_pushdown * (1.0 - RELATIVE_THRESHOLD)
            && base_pushdown > SELECTIVE_FLOOR_SECS
        {
            wins.push(format!(
                "aggregate pushdown improved: {:.1} µs vs baseline median {:.1} µs",
                latest.agg_pushdown_secs * 1e6,
                base_pushdown * 1e6,
            ));
        }
    }

    let mut base: Vec<f64> = window
        .iter()
        .map(|r| r.agg_reconstruct_secs)
        .filter(|&v| v > 0.0)
        .collect();
    if latest.agg_reconstruct_secs > 0.0 && !base.is_empty() {
        let base_reconstruct = median(&mut base);
        if latest.agg_reconstruct_secs < base_reconstruct * (1.0 - RELATIVE_THRESHOLD)
            && base_reconstruct > SCAN_FLOOR_SECS
        {
            wins.push(format!(
                "aggregate reconstruct-then-count improved: {:.2} ms vs baseline median {:.2} ms",
                latest.agg_reconstruct_secs * 1e3,
                base_reconstruct * 1e3,
            ));
        }
    }
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(compress: f64, selective: f64, scan: f64) -> Record {
        Record {
            label: "t".to_string(),
            unix_secs: 1,
            compress_mb_s: compress,
            selective_secs: selective,
            scan_secs: scan,
            sampler_overhead_pct: 1.0,
            agg_pushdown_secs: 0.0,
            agg_reconstruct_secs: 0.0,
            baseline: false,
        }
    }

    fn rec_agg(pushdown: f64, reconstruct: f64) -> Record {
        Record {
            agg_pushdown_secs: pushdown,
            agg_reconstruct_secs: reconstruct,
            ..rec(100.0, 1e-3, 0.5)
        }
    }

    #[test]
    fn history_roundtrips() {
        let records = vec![rec(100.0, 1e-3, 0.5), rec(110.0, 1.1e-3, 0.45)];
        let parsed = parse_history(&render_history(&records)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed[1].compress_mb_s - 110.0).abs() < 1e-9);
        assert!((parsed[0].selective_secs - 1e-3).abs() < 1e-12);
        assert_eq!(parsed[0].label, "t");
    }

    #[test]
    fn empty_and_single_histories_pass() {
        assert!(check(&[]).is_empty());
        assert!(check(&[rec(100.0, 1e-3, 0.5)]).is_empty());
        assert!(parse_history("{\"runs\": []}").unwrap().is_empty());
    }

    #[test]
    fn steady_trajectory_passes() {
        let history: Vec<Record> = (0..6)
            .map(|i| rec(100.0 + i as f64, 1e-3, 0.5))
            .collect();
        assert!(check(&history).is_empty(), "{:?}", check(&history));
    }

    #[test]
    fn regressions_are_caught() {
        let mut history: Vec<Record> = (0..5).map(|_| rec(100.0, 1e-3, 0.5)).collect();
        history.push(rec(60.0, 2e-3, 1.0));
        let failures = check(&history);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures[0].contains("compress"), "{failures:?}");
        assert!(failures[1].contains("selective"), "{failures:?}");
        assert!(failures[2].contains("scan"), "{failures:?}");
    }

    #[test]
    fn floors_suppress_microsecond_noise() {
        // 10 µs -> 20 µs is a 100% "regression" but below the floor.
        let history = vec![rec(100.0, 10e-6, 1e-3), rec(100.0, 20e-6, 2e-3)];
        assert!(check(&history).is_empty(), "{:?}", check(&history));
    }

    #[test]
    fn median_absorbs_one_outlier() {
        // One slow run in the window does not poison the baseline, and the
        // median keeps a healthy latest run passing.
        let mut history: Vec<Record> = (0..4).map(|_| rec(100.0, 1e-3, 0.5)).collect();
        history.push(rec(100.0, 10e-3, 0.5)); // the outlier
        history.push(rec(100.0, 1.1e-3, 0.5)); // latest: fine vs median
        assert!(check(&history).is_empty(), "{:?}", check(&history));
    }

    #[test]
    fn baseline_flag_roundtrips_and_defaults_false() {
        let mut records = vec![rec(100.0, 1e-3, 0.5), rec(200.0, 0.5e-3, 0.25)];
        records[1].baseline = true;
        let rendered = render_history(&records);
        let parsed = parse_history(&rendered).unwrap();
        assert!(!parsed[0].baseline);
        assert!(parsed[1].baseline);
        // Pre-ratchet trajectories (no `baseline` key) parse as false.
        let legacy = parse_history(
            "{\"runs\": [{\"unix_secs\": 1, \"compress_mb_s\": 1.0, \
             \"selective_secs\": 0.001, \"scan_secs\": 0.5}]}",
        )
        .unwrap();
        assert!(!legacy[0].baseline);
    }

    #[test]
    fn improvements_detected_symmetrically() {
        let mut history: Vec<Record> = (0..5).map(|_| rec(100.0, 1e-3, 0.5)).collect();
        history.push(rec(200.0, 0.4e-3, 0.2));
        let wins = improvements(&history);
        assert_eq!(wins.len(), 3, "{wins:?}");
        assert!(wins[0].contains("compress"), "{wins:?}");
        assert!(wins[1].contains("selective"), "{wins:?}");
        assert!(wins[2].contains("scan"), "{wins:?}");
        // A steady trajectory reports no improvements.
        let steady: Vec<Record> = (0..5).map(|_| rec(100.0, 1e-3, 0.5)).collect();
        assert!(improvements(&steady).is_empty());
    }

    #[test]
    fn improvements_below_floor_are_ignored() {
        // 40 µs -> 20 µs is a 50% "win" but both sides are timer noise.
        let history = vec![rec(100.0, 40e-6, 5e-3), rec(100.0, 20e-6, 2e-3)];
        assert!(improvements(&history).is_empty(), "{:?}", improvements(&history));
    }

    #[test]
    fn baseline_marker_pins_the_window() {
        // Five slow runs, then a confirmed 4x improvement, then a return to
        // the old numbers. Without the marker the slow runs dominate the
        // median and the relapse passes; the ratchet must catch it.
        let mut history: Vec<Record> = (0..5).map(|_| rec(100.0, 4e-3, 2.0)).collect();
        let mut improved = rec(100.0, 1e-3, 0.5);
        improved.baseline = true;
        history.push(improved);
        history.push(rec(100.0, 4e-3, 2.0));
        let failures = check(&history);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("selective"), "{failures:?}");
        assert!(failures[1].contains("scan"), "{failures:?}");
    }

    #[test]
    fn aggregate_arms_skip_unmeasured_runs() {
        // A legacy window (all zeros) never gates a measured latest run,
        // and an unmeasured latest run is never compared.
        let mut history: Vec<Record> = (0..5).map(|_| rec(100.0, 1e-3, 0.5)).collect();
        history.push(rec_agg(2e-4, 80e-3));
        assert!(check(&history).is_empty(), "{:?}", check(&history));
        let mut history = vec![rec_agg(1e-4, 40e-3); 5];
        history.push(rec(100.0, 1e-3, 0.5));
        assert!(check(&history).is_empty(), "{:?}", check(&history));
        // Legacy trajectories without the keys parse as unmeasured.
        let legacy = parse_history(
            "{\"runs\": [{\"unix_secs\": 1, \"compress_mb_s\": 1.0, \
             \"selective_secs\": 0.001, \"scan_secs\": 0.5}]}",
        )
        .unwrap();
        assert_eq!(legacy[0].agg_pushdown_secs, 0.0);
        assert_eq!(legacy[0].agg_reconstruct_secs, 0.0);
    }

    #[test]
    fn aggregate_regressions_and_improvements_are_caught() {
        let mut history = vec![rec_agg(1e-4, 40e-3); 5];
        history.push(rec_agg(3e-4, 120e-3));
        let failures = check(&history);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("aggregate pushdown"), "{failures:?}");
        assert!(failures[1].contains("reconstruct-then-count"), "{failures:?}");

        let mut history = vec![rec_agg(3e-4, 120e-3); 5];
        history.push(rec_agg(1e-4, 40e-3));
        let wins = improvements(&history);
        assert_eq!(wins.len(), 2, "{wins:?}");

        // Both sides under the floors: jitter, not a signal.
        let mut history = vec![rec_agg(10e-6, 1e-3); 5];
        history.push(rec_agg(40e-6, 4e-3));
        assert!(check(&history).is_empty(), "{:?}", check(&history));
    }

    #[test]
    fn aggregate_fields_roundtrip() {
        let records = vec![rec_agg(1.5e-4, 42e-3)];
        let parsed = parse_history(&render_history(&records)).unwrap();
        assert!((parsed[0].agg_pushdown_secs - 1.5e-4).abs() < 1e-12);
        assert!((parsed[0].agg_reconstruct_secs - 42e-3).abs() < 1e-12);
    }

    #[test]
    fn sampler_overhead_bound_enforced() {
        let mut bad = rec(100.0, 1e-3, 0.5);
        bad.sampler_overhead_pct = 9.0;
        let failures = check(&[bad]);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("sampler overhead"), "{failures:?}");
    }
}
