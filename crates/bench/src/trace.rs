//! Machine-readable per-stage reports derived from the telemetry registry.
//!
//! The harness enables [`telemetry`], runs a workload, then emits one JSON
//! document combining the derived pipeline views ([`ArchiveStats`] /
//! [`QueryStats`] rebuilt from the snapshot) with the raw per-stage
//! span/counter export — the same data the CLI's `--trace --json` prints.

use loggrep::{ArchiveStats, QueryStats};
use telemetry::Snapshot;

/// Renders one per-stage JSON report from a telemetry snapshot.
pub fn per_stage_json(snap: &Snapshot) -> String {
    let a = ArchiveStats::from_snapshot(snap);
    let q = QueryStats::from_snapshot(snap);
    let telemetry_json = telemetry::export_json(snap);
    format!(
        "{{\n\"compress\": {{\"raw_bytes\": {}, \"elapsed_secs\": {:.6}, \
         \"real_vectors\": {}, \"nominal_vectors\": {}, \"plain_vectors\": {}, \
         \"capsules\": {}, \"catch_all_lines\": {}}},\n\
         \"query\": {{\"elapsed_secs\": {:.6}, \"plan_secs\": {:.6}, \
         \"execute_secs\": {:.6}, \"capsules_decompressed\": {}, \
         \"bytes_decompressed\": {}, \"stamp_rejections\": {}, \
         \"groups_skipped\": {}, \"rows_verified\": {}}},\n\
         \"telemetry\": {}\n}}\n",
        a.raw_size,
        a.elapsed.as_secs_f64(),
        a.real_vectors,
        a.nominal_vectors,
        a.plain_vectors,
        a.capsules,
        a.catch_all_lines,
        q.elapsed.as_secs_f64(),
        q.plan_elapsed.as_secs_f64(),
        q.execute_elapsed().as_secs_f64(),
        q.capsules_decompressed,
        q.bytes_decompressed,
        q.stamp_rejections,
        q.groups_skipped,
        q.rows_verified,
        telemetry_json.trim_end(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::HistogramSnapshot;

    #[test]
    fn per_stage_json_shape() {
        let hist = |sum: u64| HistogramSnapshot {
            count: 1,
            sum,
            min: sum,
            max: sum,
            buckets: vec![0; 65],
        };
        let snap = Snapshot {
            counters: vec![
                ("compress.bytes_raw".into(), 1024),
                ("pack.capsules".into(), 7),
                ("query.capsules_decompressed".into(), 2),
            ],
            gauges: vec![],
            histograms: vec![
                ("compress".into(), hist(2_000_000)),
                ("query".into(), hist(300_000)),
                ("query/plan".into(), hist(100_000)),
            ],
        };
        let json = per_stage_json(&snap);
        for key in [
            "\"compress\"",
            "\"query\"",
            "\"telemetry\"",
            "\"raw_bytes\": 1024",
            "\"capsules\": 7",
            "\"capsules_decompressed\": 2",
            "\"plan_secs\": 0.000100",
            "\"execute_secs\": 0.000200",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
