//! End-to-end check that the process-wide telemetry registry agrees with
//! the per-run `ArchiveStats` / `QueryStats` the pipeline reports.
//!
//! Kept as one test function: the registry is process-global, and this
//! integration binary owns its process, so a single function gives exact
//! counter equality without cross-test interference.

use loggrep::{ArchiveStats, LogGrep, LogGrepConfig, QueryStats};

#[test]
fn registry_agrees_with_per_run_stats() {
    telemetry::set_enabled(true);
    telemetry::reset();

    let spec = workloads::by_name("Log C").unwrap();
    let raw = spec.generate(11, 256 * 1024);
    let engine = LogGrep::new(LogGrepConfig::default());
    let (boxed, cstats) = engine.compress_with_stats(&raw).unwrap();
    let archive = engine.open(boxed);

    // Compression: global counters equal the per-run ArchiveStats.
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("compress.bytes_raw"), cstats.raw_size);
    assert_eq!(snap.counter("pack.capsules") as usize, cstats.capsules);
    assert_eq!(
        snap.counter("extract.vectors.real") as usize,
        cstats.real_vectors
    );
    assert_eq!(
        snap.counter("extract.vectors.nominal") as usize,
        cstats.nominal_vectors
    );
    assert_eq!(
        snap.counter("extract.vectors.plain") as usize,
        cstats.plain_vectors
    );
    assert_eq!(
        snap.counter("parse.catch_all_lines") as u32,
        cstats.catch_all_lines
    );
    let a_view = ArchiveStats::from_snapshot(&snap);
    assert_eq!(a_view.raw_size, cstats.raw_size);
    assert_eq!(a_view.capsules, cstats.capsules);
    assert_eq!(a_view.real_vectors, cstats.real_vectors);
    assert!(a_view.elapsed.as_nanos() > 0);

    // Queries: for each, global counters (reset per query) equal the
    // per-run QueryStats, and at least one selective query must have been
    // answered partly by stamps (rejections without decompression).
    let mut total_stamp_rejections = 0usize;
    for q in [spec.queries[0].as_str(), "ERROR", "zz-absent"] {
        telemetry::reset();
        let result = archive.query(q).unwrap();
        let snap = telemetry::snapshot();
        assert_eq!(snap.counter("query.executed"), 1, "query `{q}`");
        assert_eq!(
            snap.counter("query.capsules_decompressed") as usize,
            result.stats.capsules_decompressed,
            "query `{q}`"
        );
        assert_eq!(
            snap.counter("query.bytes_decompressed"),
            result.stats.bytes_decompressed,
            "query `{q}`"
        );
        assert_eq!(
            snap.counter("query.stamp_rejections") as usize,
            result.stats.stamp_rejections,
            "query `{q}`"
        );
        assert_eq!(
            snap.counter("query.groups_skipped") as usize,
            result.stats.groups_skipped,
            "query `{q}`"
        );
        assert_eq!(
            snap.counter("query.rows_verified") as usize,
            result.stats.rows_verified,
            "query `{q}`"
        );
        let q_view = QueryStats::from_snapshot(&snap);
        assert_eq!(
            q_view.capsules_decompressed,
            result.stats.capsules_decompressed
        );
        assert_eq!(q_view.stamp_rejections, result.stats.stamp_rejections);
        assert!(q_view.elapsed >= q_view.plan_elapsed);
        total_stamp_rejections += result.stats.stamp_rejections;
    }
    assert!(
        total_stamp_rejections > 0,
        "selective queries should reject at least one requirement via stamps"
    );
    telemetry::set_enabled(false);
}
