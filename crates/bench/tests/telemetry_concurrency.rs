//! Concurrency-merge guarantees of the observability layer: spans and
//! counters recorded by parallel pool workers must merge into the global
//! registry and the trace journal losslessly, and a 4-thread run must
//! report the same counters and span counts as the serial run.
//!
//! One test function: the registry and journal are process-global, and
//! this integration binary owns its process.

use std::collections::{BTreeMap, HashMap};
use telemetry::EventKind;

/// Counters plus histogram (span) counts from one engine run.
fn run_engine(threads: usize, raw: &[u8], query: &str) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    telemetry::reset();
    let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig {
        threads,
        ..loggrep::LogGrepConfig::default()
    });
    let archive = engine.open(engine.compress(raw).unwrap());
    let hits = archive.query(query).unwrap();
    assert!(!hits.lines.is_empty());
    let snap = telemetry::snapshot();
    (
        snap.counters.iter().cloned().collect(),
        snap.histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.count))
            .collect(),
    )
}

#[test]
fn workers_merge_losslessly_and_deterministically() {
    telemetry::set_enabled(true);
    let spec = workloads::by_name("Log C").unwrap();
    let raw = spec.generate(13, 512 * 1024);
    // The wildcard scan verifies rows by reconstruction in every group, so
    // both the search and reconstruct stages fan out across workers.
    let query = "wor*er";

    // Serial vs 4 workers: identical counters (every worker increment
    // arrived, none double-counted) and identical span counts (every
    // worker span begin/end pair merged).
    let (counters_1, spans_1) = run_engine(1, &raw, query);
    let (counters_4, spans_4) = run_engine(4, &raw, query);
    assert!(!counters_1.is_empty() && !spans_1.is_empty());
    assert_eq!(counters_1, counters_4, "counters diverge between 1 and 4 threads");
    assert_eq!(spans_1, spans_4, "span counts diverge between 1 and 4 threads");

    // Repeatability at 4 threads: scheduling must not leak into totals.
    let (again_counters, again_spans) = run_engine(4, &raw, query);
    assert_eq!(counters_4, again_counters, "4-thread counters not deterministic");
    assert_eq!(spans_4, again_spans, "4-thread span counts not deterministic");

    // Journal merge: record a 4-thread query and replay the merged stream.
    telemetry::set_journal_enabled(true);
    telemetry::clear_journal();
    {
        let engine = loggrep::LogGrep::new(loggrep::LogGrepConfig {
            threads: 4,
            ..loggrep::LogGrepConfig::default()
        });
        let archive = engine.open(engine.compress(&raw).unwrap());
        archive.query(query).unwrap();
    }
    let events = telemetry::journal_events();
    telemetry::set_journal_enabled(false);

    // Deterministic merge order: sorted by (timestamp, thread).
    assert!(
        events.windows(2).all(|w| (w[0].ts_ns, w[0].tid) <= (w[1].ts_ns, w[1].tid)),
        "journal merge not ordered"
    );
    // Lossless per thread: every span end closes the matching begin, and
    // no thread ends with an open stack.
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut worker_tids = std::collections::HashSet::new();
    let mut span_ends: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &events {
        match ev.kind {
            EventKind::SpanBegin => {
                stacks.entry(ev.tid).or_default().push(&ev.name);
                worker_tids.insert(ev.tid);
            }
            EventKind::SpanEnd => {
                let top = stacks.entry(ev.tid).or_default().pop();
                assert_eq!(top, Some(ev.name.as_str()), "unbalanced journal on tid {}", ev.tid);
                *span_ends.entry(ev.name.clone()).or_default() += 1;
            }
            EventKind::Counter | EventKind::Instant => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "open spans left on tid {tid}: {stack:?}");
    }
    assert!(
        worker_tids.len() > 1,
        "expected spans from multiple worker threads, got {worker_tids:?}"
    );
    // The journal saw exactly as many span completions as the registry
    // counted — the two views of the same run agree.
    for (name, count) in &spans_4 {
        assert_eq!(
            span_ends.get(name),
            Some(count),
            "journal lost span ends for `{name}`"
        );
    }
    telemetry::set_enabled(false);
}
