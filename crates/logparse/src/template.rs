//! Static-pattern templates: alternating constant text and variable slots.

use crate::tokenizer::has_digit;

/// One piece of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// Constant bytes (static text, including delimiter runs).
    Static(Vec<u8>),
    /// A variable slot; `usize` is the slot index (0-based, left to right).
    Slot(usize),
}

/// A static pattern: the printf-style skeleton of a set of log lines.
///
/// Invariants: slots are numbered left to right starting at zero; two slots
/// are never adjacent (they are always separated by at least one delimiter
/// byte, because slots come from distinct tokens); rendering with the
/// original slot values reproduces the original line byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    pieces: Vec<Piece>,
    slots: usize,
    /// Token-level view used during induction: `None` = slot, `Some(t)` =
    /// constant token. Parallel to the token positions of member lines.
    token_view: Vec<Option<Vec<u8>>>,
    /// Delimiter runs around the tokens (constant across member lines).
    delim_runs: Vec<Vec<u8>>,
}

impl Template {
    /// The catch-all template: a single slot holding the whole line.
    pub fn catch_all() -> Self {
        Self {
            pieces: vec![Piece::Slot(0)],
            slots: 1,
            token_view: vec![None],
            delim_runs: vec![Vec::new(), Vec::new()],
        }
    }

    /// Rebuilds a template from stored pieces (e.g. deserialized from a
    /// CapsuleBox). The result supports [`Self::render`], [`Self::pieces`]
    /// and [`Self::static_text`], but not induction ([`Self::merge`]) or
    /// [`Self::extract`], which need the token-level view.
    ///
    /// # Panics
    ///
    /// Panics if slot indices are not `0..n` in left-to-right order.
    pub fn from_pieces(pieces: Vec<Piece>) -> Self {
        let mut slots = 0usize;
        for p in &pieces {
            if let Piece::Slot(i) = p {
                assert_eq!(*i, slots, "slot indices must be sequential");
                slots += 1;
            }
        }
        Self {
            pieces,
            slots,
            token_view: Vec::new(),
            delim_runs: Vec::new(),
        }
    }

    /// Builds a template from one line's tokens, masking digit-bearing
    /// tokens as slots immediately.
    pub fn from_tokens(tokens: &[&[u8]], delim_runs: &[&[u8]]) -> Self {
        debug_assert_eq!(delim_runs.len(), tokens.len() + 1);
        let token_view: Vec<Option<Vec<u8>>> = tokens
            .iter()
            .map(|t| {
                if has_digit(t) {
                    None
                } else {
                    Some(t.to_vec())
                }
            })
            .collect();
        let delim_runs: Vec<Vec<u8>> = delim_runs.iter().map(|r| r.to_vec()).collect();
        let mut t = Self {
            pieces: Vec::new(),
            slots: 0,
            token_view,
            delim_runs,
        };
        t.rebuild_pieces();
        t
    }

    /// Token similarity between this template and a token list of the same
    /// arity: the fraction of *static* positions that agree. Slot positions
    /// are excluded — a line must match the template's constant words, not
    /// merely have the same shape, which keeps lines with different static
    /// text (e.g. `INFO ...` vs `ERROR ...`) in separate templates the way
    /// CLP's log types do.
    ///
    /// Returns 0.0 on arity mismatch; 1.0 for an all-slot template.
    pub fn similarity(&self, tokens: &[&[u8]]) -> f64 {
        if tokens.len() != self.token_view.len() || tokens.is_empty() {
            return 0.0;
        }
        let mut statics = 0usize;
        let mut same = 0usize;
        for (view, tok) in self.token_view.iter().zip(tokens) {
            if let Some(v) = view {
                statics += 1;
                if v.as_slice() == *tok {
                    same += 1;
                }
            }
        }
        if statics == 0 {
            1.0
        } else {
            same as f64 / statics as f64
        }
    }

    /// Merges a same-arity token list into the template: positions that
    /// disagree become slots.
    pub fn merge(&mut self, tokens: &[&[u8]]) {
        debug_assert_eq!(tokens.len(), self.token_view.len());
        let mut changed = false;
        for (view, tok) in self.token_view.iter_mut().zip(tokens) {
            if let Some(v) = view {
                if v.as_slice() != *tok {
                    *view = None;
                    changed = true;
                }
            }
        }
        if changed {
            self.rebuild_pieces();
        }
    }

    /// Rebuilds `pieces` from `token_view` + `delim_runs`, coalescing
    /// adjacent static text.
    fn rebuild_pieces(&mut self) {
        let mut pieces: Vec<Piece> = Vec::new();
        let mut slots = 0usize;
        let mut pending: Vec<u8> = Vec::new();
        for (i, run) in self.delim_runs.iter().enumerate() {
            pending.extend_from_slice(run);
            if i < self.token_view.len() {
                match &self.token_view[i] {
                    Some(tok) => pending.extend_from_slice(tok),
                    None => {
                        if !pending.is_empty() {
                            pieces.push(Piece::Static(std::mem::take(&mut pending)));
                        }
                        pieces.push(Piece::Slot(slots));
                        slots += 1;
                    }
                }
            }
        }
        if !pending.is_empty() {
            pieces.push(Piece::Static(pending));
        }
        if pieces.is_empty() {
            pieces.push(Piece::Static(Vec::new()));
        }
        self.pieces = pieces;
        self.slots = slots;
    }

    /// The template pieces, left to right.
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// Number of variable slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Concatenated static text (used for keyword pre-matching on templates).
    pub fn static_text(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for p in &self.pieces {
            if let Piece::Static(s) = p {
                out.extend_from_slice(s);
            }
        }
        out
    }

    /// Extracts slot values from a same-structure token list, or `None` if
    /// the line does not match this template (different statics or delims).
    pub fn extract<'a>(&self, tokens: &[&'a [u8]], delim_runs: &[&'a [u8]]) -> Option<Vec<&'a [u8]>> {
        let mut vars = Vec::with_capacity(self.slots);
        if self.extract_into(tokens, delim_runs, &mut vars) {
            Some(vars)
        } else {
            None
        }
    }

    /// Like [`Self::extract`], but writes the slot values into `vars`
    /// (cleared first) and returns whether the line matched. The bulk-parse
    /// hot loop reuses one `vars` buffer across every line of a block, so
    /// steady-state extraction allocates nothing.
    pub fn extract_into<'a>(
        &self,
        tokens: &[&'a [u8]],
        delim_runs: &[&'a [u8]],
        vars: &mut Vec<&'a [u8]>,
    ) -> bool {
        vars.clear();
        if tokens.len() != self.token_view.len() || delim_runs.len() != self.delim_runs.len() {
            return false;
        }
        for (mine, theirs) in self.delim_runs.iter().zip(delim_runs) {
            if mine.as_slice() != *theirs {
                return false;
            }
        }
        for (view, tok) in self.token_view.iter().zip(tokens) {
            match view {
                Some(v) => {
                    if v.as_slice() != *tok {
                        vars.clear();
                        return false;
                    }
                }
                None => vars.push(*tok),
            }
        }
        true
    }

    /// Renders the template with the given slot values.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != self.slots()`.
    pub fn render(&self, vars: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        self.render_into(vars, &mut out);
        out
    }

    /// Renders into a caller-provided buffer (cleared first), reusing its
    /// capacity — the allocation-free form reconstruction loops use. Accepts
    /// any byte-slice-like values so scratch `Vec<u8>` buffers work directly.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != self.slots()`.
    pub fn render_into<V: AsRef<[u8]>>(&self, vars: &[V], out: &mut Vec<u8>) {
        assert_eq!(vars.len(), self.slots, "slot count mismatch");
        out.clear();
        for p in &self.pieces {
            match p {
                Piece::Static(s) => out.extend_from_slice(s),
                Piece::Slot(i) => out.extend_from_slice(vars[*i].as_ref()),
            }
        }
    }

    /// A human-readable form like `write to file:<*> done`.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for p in &self.pieces {
            match p {
                Piece::Static(s) => out.push_str(&String::from_utf8_lossy(s)),
                Piece::Slot(_) => out.push_str("<*>"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{Tokenizer, DEFAULT_DELIMS};

    fn template_of(lines: &[&[u8]]) -> Template {
        let tkz = Tokenizer::new(DEFAULT_DELIMS);
        let first = tkz.tokenize(lines[0]);
        let mut t = Template::from_tokens(&first.tokens, &first.delim_runs);
        for line in &lines[1..] {
            let toks = tkz.tokenize(line);
            t.merge(&toks.tokens);
        }
        t
    }

    #[test]
    fn digit_masking_creates_slots() {
        let t = template_of(&[b"req 12 done"]);
        assert_eq!(t.slots(), 1);
        assert_eq!(t.display(), "req <*> done");
    }

    #[test]
    fn merge_turns_disagreements_into_slots() {
        let t = template_of(&[b"mode fast go", b"mode slow go"]);
        assert_eq!(t.slots(), 1);
        assert_eq!(t.display(), "mode <*> go");
    }

    #[test]
    fn render_extract_roundtrip() {
        let tkz = Tokenizer::new(DEFAULT_DELIMS);
        let t = template_of(&[b"write to file:/tmp/1.log ok", b"write to file:/tmp/2.log ok"]);
        let line: &[u8] = b"write to file:/tmp/999.log ok";
        let toks = tkz.tokenize(line);
        let vars = t.extract(&toks.tokens, &toks.delim_runs).expect("must match");
        assert_eq!(t.render(&vars), line);
    }

    #[test]
    fn extract_rejects_static_mismatch() {
        let tkz = Tokenizer::new(DEFAULT_DELIMS);
        let t = template_of(&[b"alpha beta", b"alpha beta"]);
        let toks = tkz.tokenize(b"alpha gamma");
        assert!(t.extract(&toks.tokens, &toks.delim_runs).is_none());
    }

    #[test]
    fn extract_rejects_delim_mismatch() {
        let tkz = Tokenizer::new(DEFAULT_DELIMS);
        let t = template_of(&[b"a b"]);
        let toks = tkz.tokenize(b"a  b");
        assert!(t.extract(&toks.tokens, &toks.delim_runs).is_none());
    }

    #[test]
    fn catch_all_renders_whole_line() {
        let t = Template::catch_all();
        assert_eq!(t.slots(), 1);
        assert_eq!(t.render(&[b"anything at all"]), b"anything at all");
    }

    #[test]
    fn static_text_concatenation() {
        let t = template_of(&[b"state: SUC#1604", b"state: ERR#1623"]);
        // "state" and ": " are static; the token "SUC#1604" has digits and
        // is masked.
        assert_eq!(t.static_text(), b"state: ");
    }

    #[test]
    fn similarity_over_static_positions() {
        let tkz = Tokenizer::new(DEFAULT_DELIMS);
        let t = template_of(&[b"req 12 done"]);
        // Slot positions are ignored: only "req" and "done" count.
        let toks = tkz.tokenize(b"req 99 done");
        assert!((t.similarity(&toks.tokens) - 1.0).abs() < 1e-9);
        let other = tkz.tokenize(b"rsp 99 fail");
        assert!(t.similarity(&other.tokens) < 1e-9);
        let half = tkz.tokenize(b"req 99 fail");
        assert!((t.similarity(&half.tokens) - 0.5).abs() < 1e-9);
    }
}
