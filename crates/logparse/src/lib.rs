//! Static-pattern (template) log parser.
//!
//! LogGrep's compression pipeline (§3) starts by sampling 5 % of a log
//! block's entries and identifying **static patterns** — the printf-style
//! templates developers wrote — using the parser adopted from LogReducer.
//! This crate is that substrate: a sampling template-induction parser that
//! structurizes a log block into groups of variable vectors.
//!
//! The induction algorithm is a light Drain/LogReducer hybrid:
//!
//! 1. lines are tokenized on a delimiter set, keeping the delimiter runs
//!    (so a template can reproduce its lines byte-for-byte);
//! 2. tokens containing digits are masked as variable slots immediately
//!    (the classic heuristic — counters, ids and timestamps vary per line);
//! 3. lines with the same token arity and delimiter structure merge into one
//!    template when their token similarity passes a threshold, turning
//!    disagreeing positions into slots.
//!
//! Parsing accuracy affects compression/query *performance* only, never
//! correctness: a line no template matches lands in the catch-all template
//! (id 0), whose single slot holds the whole line.
//!
//! # Examples
//!
//! ```
//! use logparse::{Parser, ParserConfig};
//!
//! let lines: Vec<&[u8]> = vec![
//!     b"write to file:/tmp/1FF8a.log",
//!     b"write to file:/tmp/1FF8b.log",
//!     b"state: SUC#1604",
//! ];
//! let parsed = Parser::train(&ParserConfig::default(), lines.iter().copied())
//!     .parse_all(lines.iter().copied());
//! // Every line reconstructs exactly.
//! for (i, line) in lines.iter().enumerate() {
//!     assert_eq!(parsed.reconstruct_line(i as u32).unwrap(), *line);
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod template;
pub mod tokenizer;

pub use column::Column;
pub use template::{Piece, Template};
pub use tokenizer::{Tokenizer, DEFAULT_DELIMS};

use std::collections::HashMap;

/// Configuration for template induction.
#[derive(Debug, Clone)]
pub struct ParserConfig {
    /// Fraction of lines sampled for template induction (paper: 5 %).
    pub sample_rate: f64,
    /// Sample at least this many lines regardless of the rate.
    pub min_sample: usize,
    /// Token-similarity threshold for merging a line into a template.
    pub merge_threshold: f64,
    /// Delimiter byte set for tokenization.
    pub delims: Vec<u8>,
    /// Upper bound on learned templates; excess lines go to the catch-all.
    pub max_templates: usize,
}

impl Default for ParserConfig {
    fn default() -> Self {
        Self {
            sample_rate: 0.05,
            min_sample: 256,
            merge_threshold: 0.92,
            delims: DEFAULT_DELIMS.to_vec(),
            max_templates: 4096,
        }
    }
}

/// A trained parser holding the learned templates.
#[derive(Debug)]
pub struct Parser {
    tokenizer: Tokenizer,
    templates: Vec<Template>,
    /// (token arity, delimiter-structure hash) -> template ids.
    index: HashMap<(usize, u64), Vec<u32>>,
}

/// The catch-all template id: one slot holding the whole line.
pub const CATCH_ALL: u32 = 0;

impl Parser {
    /// Learns templates from every `min(sample_rate * n, ...)`-th line of the
    /// block (deterministic stride sampling, so results are reproducible).
    pub fn train<'a, I>(config: &ParserConfig, lines: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let tokenizer = Tokenizer::new(&config.delims);
        let all: Vec<&[u8]> = lines.into_iter().collect();
        let n = all.len();
        let want = ((n as f64 * config.sample_rate).ceil() as usize)
            .max(config.min_sample)
            .min(n);
        let stride = if want == 0 { 1 } else { n.div_ceil(want).max(1) };

        let mut parser = Self {
            tokenizer,
            templates: vec![Template::catch_all()],
            index: HashMap::new(),
        };
        for line in all.iter().step_by(stride) {
            parser.observe(line, config);
        }
        parser
    }

    /// Observes one sampled line, merging it into an existing template or
    /// creating a new one.
    fn observe(&mut self, line: &[u8], config: &ParserConfig) {
        let toks = self.tokenizer.tokenize(line);
        if toks.tokens.is_empty() {
            return; // Blank-ish line; catch-all will hold it.
        }
        let key = (toks.tokens.len(), toks.delim_hash);
        let candidates = self.index.entry(key).or_default();
        let mut best: Option<(usize, f64)> = None;
        for &tid in candidates.iter() {
            let sim = self.templates[tid as usize].similarity(&toks.tokens);
            if sim >= config.merge_threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((tid as usize, sim));
            }
        }
        match best {
            Some((tid, _)) => self.templates[tid].merge(&toks.tokens),
            None => {
                if self.templates.len() >= config.max_templates {
                    return;
                }
                let tid = self.templates.len() as u32;
                self.templates
                    .push(Template::from_tokens(&toks.tokens, &toks.delim_runs));
                candidates.push(tid);
            }
        }
    }

    /// The learned templates (index 0 is the catch-all).
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Parses a single line, returning `(template_id, slot_values)`.
    ///
    /// Lines that match no learned template return `(CATCH_ALL, [line])`.
    pub fn parse_line<'a>(&self, line: &'a [u8]) -> (u32, Vec<&'a [u8]>) {
        let toks = self.tokenizer.tokenize(line);
        if !toks.tokens.is_empty() {
            let key = (toks.tokens.len(), toks.delim_hash);
            if let Some(candidates) = self.index.get(&key) {
                for &tid in candidates {
                    if let Some(vars) =
                        self.templates[tid as usize].extract(&toks.tokens, &toks.delim_runs)
                    {
                        return (tid, vars);
                    }
                }
            }
        }
        (CATCH_ALL, vec![line])
    }

    /// Parses every line of a block into per-template groups.
    pub fn parse_all<'a, I>(&self, lines: I) -> ParsedBlock
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.merge_chunks(vec![self.parse_chunk(lines, 0)])
    }

    /// Parses a contiguous chunk of a block's lines, numbering rows from
    /// `base`. This is the parallel-parse building block: chunks parsed
    /// independently and concatenated with [`Self::merge_chunks`] (in
    /// chunk order) yield exactly the block a serial [`Self::parse_all`]
    /// over the concatenated lines produces.
    pub fn parse_chunk<'a, I>(&self, lines: I, base: u32) -> Vec<Group>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut groups: Vec<Group> = self
            .templates
            .iter()
            .map(|t| Group::empty(t.slots()))
            .collect();
        // Per-line scratch, reused across the whole block: every line shares
        // the block lifetime `'a`, so one tokenization buffer and one slot-
        // value buffer serve the loop without per-line allocation.
        let mut toks = tokenizer::Tokenized {
            tokens: Vec::new(),
            delim_runs: Vec::new(),
            delim_hash: 0,
        };
        let mut vars: Vec<&'a [u8]> = Vec::new();
        for (offset, line) in lines.into_iter().enumerate() {
            self.tokenizer.tokenize_into(line, &mut toks);
            let mut tid = CATCH_ALL;
            if !toks.tokens.is_empty() {
                let key = (toks.tokens.len(), toks.delim_hash);
                if let Some(candidates) = self.index.get(&key) {
                    for &cand in candidates {
                        if self.templates[cand as usize].extract_into(
                            &toks.tokens,
                            &toks.delim_runs,
                            &mut vars,
                        ) {
                            tid = cand;
                            break;
                        }
                    }
                }
            }
            let group = &mut groups[tid as usize];
            group.line_numbers.push(base + offset as u32);
            if tid == CATCH_ALL {
                group.vars[0].push(line);
            } else {
                for (slot, value) in vars.iter().enumerate() {
                    group.vars[slot].push(value);
                }
            }
        }
        groups
    }

    /// Concatenates per-chunk groups (in chunk order) into one
    /// [`ParsedBlock`] — byte-identical to parsing the concatenated lines
    /// serially, no matter how the lines were chunked.
    pub fn merge_chunks(&self, parts: Vec<Vec<Group>>) -> ParsedBlock {
        let mut parts = parts.into_iter();
        let mut groups: Vec<Group> = parts.next().unwrap_or_else(|| {
            self.templates
                .iter()
                .map(|t| Group::empty(t.slots()))
                .collect()
        });
        for part in parts {
            for (dst, src) in groups.iter_mut().zip(part) {
                dst.line_numbers.extend(src.line_numbers);
                for (d, s) in dst.vars.iter_mut().zip(&src.vars) {
                    d.append(s);
                }
            }
        }
        let total_lines = groups.iter().map(|g| g.rows() as u32).sum();
        telemetry::counter!("parse.lines", u64::from(total_lines));
        telemetry::counter!(
            "parse.catch_all_lines",
            groups[CATCH_ALL as usize].rows() as u64
        );
        ParsedBlock {
            templates: self.templates.clone(),
            groups,
            total_lines,
        }
    }
}

/// All values of one template's slots, for one log block.
#[derive(Debug, Clone)]
pub struct Group {
    /// Original (0-based) line number of each row, ascending.
    pub line_numbers: Vec<u32>,
    /// `vars[slot]` = the column of `slot`'s values, one row per line.
    pub vars: Vec<Column>,
}

impl Group {
    fn empty(slots: usize) -> Self {
        Self {
            line_numbers: Vec::new(),
            vars: vec![Column::new(); slots],
        }
    }

    /// Number of rows (log entries) in this group.
    pub fn rows(&self) -> usize {
        self.line_numbers.len()
    }
}

/// A fully structurized log block: templates plus per-template groups.
#[derive(Debug, Clone)]
pub struct ParsedBlock {
    /// Templates, indexed by template id (0 = catch-all).
    pub templates: Vec<Template>,
    /// One group per template, same indexing.
    pub groups: Vec<Group>,
    /// Number of lines parsed.
    pub total_lines: u32,
}

impl ParsedBlock {
    /// Rebuilds the original line with the given (0-based) line number, or
    /// `None` if out of range.
    pub fn reconstruct_line(&self, lineno: u32) -> Option<Vec<u8>> {
        for (tid, group) in self.groups.iter().enumerate() {
            if let Ok(row) = group.line_numbers.binary_search(&lineno) {
                let vars: Vec<&[u8]> = group.vars.iter().filter_map(|v| v.get(row)).collect();
                return Some(self.templates[tid].render(&vars));
            }
        }
        None
    }

    /// Fraction of lines that fell into the catch-all template.
    pub fn catch_all_rate(&self) -> f64 {
        if self.total_lines == 0 {
            return 0.0;
        }
        self.groups[CATCH_ALL as usize].rows() as f64 / self.total_lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(text: &str) -> Vec<&[u8]> {
        text.lines().map(|l| l.as_bytes()).collect()
    }

    fn train_and_parse(text: &str) -> ParsedBlock {
        let lines = lines_of(text);
        let parser = Parser::train(&ParserConfig::default(), lines.iter().copied());
        parser.parse_all(lines.iter().copied())
    }

    #[test]
    fn figure1_example_forms_two_groups() {
        let block = train_and_parse(
            "T134 bk.FF.13 read\nT169 state: SUC#1604\nT179 bk.C5.15 read\nT181 state: ERR#1623\n",
        );
        // Two real templates + catch-all.
        let used: Vec<usize> = block
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.rows() > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(used.len(), 2, "templates: {:?}", block.templates);
        for lineno in 0..4 {
            assert!(block.reconstruct_line(lineno).is_some());
        }
    }

    #[test]
    fn reconstruction_is_exact() {
        let text = "\
2021-01-03 10:00:01.123 INFO write to file:/tmp/1FF8aa.log\n\
2021-01-03 10:00:02.456 INFO write to file:/tmp/1FF8bb.log\n\
2021-01-03 10:00:03.789 WARN quota exceeded for user:alice limit=100\n\
2021-01-03 10:00:04.000 WARN quota exceeded for user:bob limit=250\n\
completely unstructured line @@@@\n";
        let block = train_and_parse(text);
        for (i, line) in lines_of(text).iter().enumerate() {
            assert_eq!(
                block.reconstruct_line(i as u32).as_deref(),
                Some(*line),
                "line {i}"
            );
        }
    }

    #[test]
    fn digit_tokens_become_slots() {
        let lines = lines_of("req 1 done\nreq 2 done\nreq 3 done\n");
        let parser = Parser::train(&ParserConfig::default(), lines.iter().copied());
        // One learned template with exactly one slot.
        let learned: Vec<&Template> = parser.templates()[1..].iter().collect();
        assert_eq!(learned.len(), 1);
        assert_eq!(learned[0].slots(), 1);
    }

    #[test]
    fn different_arity_lines_do_not_merge() {
        let lines = lines_of("a b c\na b\n");
        let parser = Parser::train(&ParserConfig::default(), lines.iter().copied());
        assert!(parser.templates().len() >= 3);
    }

    #[test]
    fn unseen_variant_falls_to_catch_all_but_reconstructs() {
        let train_lines = lines_of("alpha beta gamma\nalpha beta gamma\n");
        let parser = Parser::train(&ParserConfig::default(), train_lines.iter().copied());
        let mixed: Vec<&[u8]> = vec![b"alpha beta gamma", b"totally different thing here now"];
        let block = parser.parse_all(mixed.iter().copied());
        assert_eq!(block.reconstruct_line(0).unwrap(), b"alpha beta gamma");
        assert_eq!(
            block.reconstruct_line(1).unwrap(),
            b"totally different thing here now".to_vec()
        );
    }

    #[test]
    fn empty_input() {
        let block = train_and_parse("");
        assert_eq!(block.total_lines, 0);
        assert!(block.reconstruct_line(0).is_none());
        assert_eq!(block.catch_all_rate(), 0.0);
    }

    #[test]
    fn empty_lines_reconstruct() {
        let lines: Vec<&[u8]> = vec![b"", b"x y", b""];
        let parser = Parser::train(&ParserConfig::default(), lines.iter().copied());
        let block = parser.parse_all(lines.iter().copied());
        assert_eq!(block.reconstruct_line(0).unwrap(), b"");
        assert_eq!(block.reconstruct_line(1).unwrap(), b"x y");
        assert_eq!(block.reconstruct_line(2).unwrap(), b"");
    }

    #[test]
    fn line_numbers_are_ascending_per_group() {
        let block = train_and_parse("a 1\nb c d\na 2\nb c d\na 3\n");
        for g in &block.groups {
            assert!(g.line_numbers.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
