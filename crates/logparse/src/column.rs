//! Column-wise value storage: one flat byte buffer plus row offsets.
//!
//! A parsed block holds hundreds of thousands of short slot values. Storing
//! each as its own `Vec<u8>` costs one heap allocation per value — the
//! dominant cost of the parse stage, and a scalability cliff when chunks
//! parse on multiple threads (allocator pressure serializes them). A
//! [`Column`] stores a whole variable vector in two allocations.

/// One variable vector stored column-wise.
///
/// Values are concatenated in `bytes`; `offsets` has `len() + 1` entries
/// with `offsets[i]..offsets[i + 1]` spanning value `i`. Offsets are `u32`:
/// a column never outgrows its log block, and blocks are bounded well under
/// 4 GiB (the engine holds the raw block in memory to compress it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
}

impl Default for Column {
    fn default() -> Self {
        Self::new()
    }
}

impl Column {
    /// An empty column.
    pub fn new() -> Self {
        Self {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Builds a column from an iterator of values.
    pub fn from_values<'a, I: IntoIterator<Item = &'a [u8]>>(values: I) -> Self {
        let mut c = Self::new();
        for v in values {
            c.push(v);
        }
        c
    }

    /// Appends one value.
    pub fn push(&mut self, value: &[u8]) {
        self.bytes.extend_from_slice(value);
        debug_assert!(u32::try_from(self.bytes.len()).is_ok(), "column > 4 GiB");
        self.offsets.push(self.bytes.len() as u32);
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total bytes across all values.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The value at row `i`, or `None` out of range.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        let start = *self.offsets.get(i)? as usize;
        let end = *self.offsets.get(i + 1)? as usize;
        self.bytes.get(start..end)
    }

    /// Iterates the values in row order. The iterator is `Clone` +
    /// `ExactSizeIterator`, so it can feed payload builders that take two
    /// passes.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + Clone + '_ {
        self.offsets
            .windows(2)
            .map(|w| self.bytes.get(w[0] as usize..w[1] as usize).unwrap_or(b""))
    }

    /// Appends every value of `other` after this column's values.
    pub fn append(&mut self, other: &Column) {
        let base = self.bytes.len() as u32;
        self.bytes.extend_from_slice(&other.bytes);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| base + o));
    }

    /// Reserves space for `values` more values totalling `bytes` bytes.
    pub fn reserve(&mut self, values: usize, bytes: usize) {
        self.offsets.reserve(values);
        self.bytes.reserve(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let vals: Vec<&[u8]> = vec![b"alpha", b"", b"x", b"beta-beta"];
        let c = Column::from_values(vals.iter().copied());
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.total_bytes(), 15);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), Some(*v));
        }
        assert_eq!(c.get(4), None);
        let collected: Vec<&[u8]> = c.iter().collect();
        assert_eq!(collected, vals);
    }

    #[test]
    fn empty_column() {
        let c = Column::new();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.get(0), None);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn append_rebases_offsets() {
        let mut a = Column::from_values([b"one".as_slice(), b"two"]);
        let b = Column::from_values([b"".as_slice(), b"three"]);
        a.append(&b);
        let collected: Vec<&[u8]> = a.iter().collect();
        assert_eq!(collected, vec![&b"one"[..], b"two", b"", b"three"]);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn iterator_is_clone_for_two_pass_consumers() {
        let c = Column::from_values([b"aa".as_slice(), b"bbb"]);
        let it = c.iter();
        let first: usize = it.clone().map(|v| v.len()).sum();
        let second: usize = it.map(|v| v.len()).sum();
        assert_eq!(first, second);
    }
}
