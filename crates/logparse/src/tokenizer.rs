//! Line tokenization: splits a log line into tokens and the delimiter runs
//! between them, preserving enough structure to rebuild the line exactly.

/// The default delimiter set, mirroring CLP-style token delimiters. Note
/// that `.`, `/`, `#`, `-` and `_` are *not* delimiters: IPs, paths and
//  composite ids stay whole tokens, which is where runtime patterns live.
pub const DEFAULT_DELIMS: &[u8] = b" \t,;:=[](){}\"'|";

/// A tokenized line: `tokens` interleaved with `delim_runs`.
///
/// The original line is `delim_runs[0] + tokens[0] + delim_runs[1] + ... +
/// tokens[n-1] + delim_runs[n]` — there is always exactly one more delimiter
/// run than tokens (runs may be empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tokenized<'a> {
    /// Maximal runs of non-delimiter bytes.
    pub tokens: Vec<&'a [u8]>,
    /// Delimiter runs around the tokens (`tokens.len() + 1` entries).
    pub delim_runs: Vec<&'a [u8]>,
    /// Hash of the delimiter structure, used to index template candidates.
    pub delim_hash: u64,
}

/// A tokenizer for one delimiter set.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    is_delim: [bool; 256],
}

impl Tokenizer {
    /// Creates a tokenizer splitting on the given byte set.
    pub fn new(delims: &[u8]) -> Self {
        let mut is_delim = [false; 256];
        for &d in delims {
            is_delim[d as usize] = true;
        }
        Self { is_delim }
    }

    /// True if `b` is a delimiter.
    #[inline]
    pub fn is_delim(&self, b: u8) -> bool {
        self.is_delim[b as usize]
    }

    /// Splits `line` into tokens and delimiter runs.
    pub fn tokenize<'a>(&self, line: &'a [u8]) -> Tokenized<'a> {
        let mut out = Tokenized {
            tokens: Vec::new(),
            delim_runs: Vec::new(),
            delim_hash: 0,
        };
        self.tokenize_into(line, &mut out);
        out
    }

    /// Splits `line` into tokens and delimiter runs, reusing `out`'s
    /// buffers. The bulk-parse hot loop calls this with one scratch
    /// `Tokenized` so steady-state tokenization allocates nothing.
    pub fn tokenize_into<'a>(&self, line: &'a [u8], out: &mut Tokenized<'a>) {
        out.tokens.clear();
        out.delim_runs.clear();
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis.
        let mut i = 0usize;
        loop {
            // Delimiter run (possibly empty).
            let run_start = i;
            while i < line.len() && self.is_delim(line[i]) {
                i += 1;
            }
            let run = &line[run_start..i];
            for &b in run {
                hash = (hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            hash = (hash ^ 0xfe).wrapping_mul(0x1000_0000_01b3); // Run boundary.
            out.delim_runs.push(run);
            if i >= line.len() {
                break;
            }
            // Token.
            let tok_start = i;
            while i < line.len() && !self.is_delim(line[i]) {
                i += 1;
            }
            out.tokens.push(&line[tok_start..i]);
        }
        out.delim_hash = hash;
    }
}

/// True if the token contains any ASCII digit (the variable-mask heuristic).
pub fn has_digit(token: &[u8]) -> bool {
    token.iter().any(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk(line: &[u8]) -> Tokenized<'_> {
        Tokenizer::new(DEFAULT_DELIMS).tokenize(line)
    }

    fn rebuild(t: &Tokenized<'_>) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, run) in t.delim_runs.iter().enumerate() {
            out.extend_from_slice(run);
            if i < t.tokens.len() {
                out.extend_from_slice(t.tokens[i]);
            }
        }
        out
    }

    #[test]
    fn tokens_and_runs_rebuild_line() {
        for line in [
            &b"T134 bk.FF.13 read"[..],
            b"  leading and trailing  ",
            b"state: SUC#1604",
            b"a=b,c=d",
            b"",
            b"   ",
            b"nodailims",
        ] {
            let t = tk(line);
            assert_eq!(rebuild(&t), line, "line {:?}", line);
            assert_eq!(t.delim_runs.len(), t.tokens.len() + 1);
        }
    }

    #[test]
    fn dots_and_slashes_stay_in_tokens() {
        let t = tk(b"read /tmp/1FF8.log from 11.8.0.1");
        assert_eq!(
            t.tokens,
            vec![&b"read"[..], b"/tmp/1FF8.log", b"from", b"11.8.0.1"]
        );
    }

    #[test]
    fn colon_and_equals_are_delims() {
        let t = tk(b"dst:11.8.0.1 limit=100");
        assert_eq!(t.tokens, vec![&b"dst"[..], b"11.8.0.1", b"limit", b"100"]);
    }

    #[test]
    fn delim_hash_distinguishes_structure() {
        assert_ne!(tk(b"a b").delim_hash, tk(b"a  b").delim_hash);
        assert_ne!(tk(b"a b").delim_hash, tk(b"a,b").delim_hash);
        assert_eq!(tk(b"a b").delim_hash, tk(b"x y").delim_hash);
    }

    #[test]
    fn has_digit_heuristic() {
        assert!(has_digit(b"abc1"));
        assert!(!has_digit(b"abc"));
        assert!(!has_digit(b""));
    }
}
