//! Property tests for the static-pattern parser: reconstruction must be
//! exact for arbitrary structured-ish text, regardless of how templates
//! come out.

use logparse::{Parser, ParserConfig};
use proptest::prelude::*;

fn line_strategy() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("start".to_string()),
        Just("stop".to_string()),
        Just("level".to_string()),
        "[a-z]{1,5}",
        "[0-9]{1,6}",
        "[0-9a-f]{2,8}",
    ];
    let delim = prop_oneof![
        Just(" ".to_string()),
        Just(", ".to_string()),
        Just(":".to_string()),
        Just("=".to_string()),
        Just("  ".to_string()),
    ];
    (
        proptest::collection::vec((token, delim), 0..6),
        prop_oneof![Just("".to_string()), Just(" ".to_string())],
    )
        .prop_map(|(pairs, tail)| {
            let mut s = String::new();
            for (t, d) in pairs {
                s.push_str(&t);
                s.push_str(&d);
            }
            s.push_str(&tail);
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_line_reconstructs(lines in proptest::collection::vec(line_strategy(), 0..80)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        prop_assert_eq!(block.total_lines as usize, lines.len());
        for (i, line) in refs.iter().enumerate() {
            let got = block.reconstruct_line(i as u32);
            prop_assert_eq!(got.as_deref(), Some(*line), "line {}", i);
        }
    }

    #[test]
    fn line_numbers_partition_the_block(lines in proptest::collection::vec(line_strategy(), 1..60)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        let mut seen: Vec<u32> = block
            .groups
            .iter()
            .flat_map(|g| g.line_numbers.iter().copied())
            .collect();
        seen.sort_unstable();
        let want: Vec<u32> = (0..lines.len() as u32).collect();
        prop_assert_eq!(seen, want);
    }

    #[test]
    fn group_vars_are_rectangular(lines in proptest::collection::vec(line_strategy(), 1..60)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        for (tid, g) in block.groups.iter().enumerate() {
            prop_assert_eq!(g.vars.len(), block.templates[tid].slots());
            for slot in &g.vars {
                prop_assert_eq!(slot.len(), g.line_numbers.len());
            }
        }
    }
}
