//! Property tests for the static-pattern parser: reconstruction must be
//! exact for arbitrary structured-ish text, regardless of how templates
//! come out.
//!
//! Line generation lives in [`difftest::strategies`] so every crate's
//! property suite exercises the same token/delimiter interleavings.

use difftest::strategies::kv_line_strategy;
use logparse::{Parser, ParserConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_line_reconstructs(lines in proptest::collection::vec(kv_line_strategy(), 0..80)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        prop_assert_eq!(block.total_lines as usize, lines.len());
        for (i, line) in refs.iter().enumerate() {
            let got = block.reconstruct_line(i as u32);
            prop_assert_eq!(got.as_deref(), Some(*line), "line {}", i);
        }
    }

    #[test]
    fn line_numbers_partition_the_block(lines in proptest::collection::vec(kv_line_strategy(), 1..60)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        let mut seen: Vec<u32> = block
            .groups
            .iter()
            .flat_map(|g| g.line_numbers.iter().copied())
            .collect();
        seen.sort_unstable();
        let want: Vec<u32> = (0..lines.len() as u32).collect();
        prop_assert_eq!(seen, want);
    }

    #[test]
    fn group_vars_are_rectangular(lines in proptest::collection::vec(kv_line_strategy(), 1..60)) {
        let refs: Vec<&[u8]> = lines.iter().map(|l| l.as_bytes()).collect();
        let parser = Parser::train(&ParserConfig::default(), refs.iter().copied());
        let block = parser.parse_all(refs.iter().copied());
        for (tid, g) in block.groups.iter().enumerate() {
            prop_assert_eq!(g.vars.len(), block.templates[tid].slots());
            for slot in &g.vars {
                prop_assert_eq!(slot.len(), g.line_numbers.len());
            }
        }
    }
}
