//! A bounded, std-only worker pool for data-parallel stages.
//!
//! The pool runs a fixed number of scoped worker threads over a slice of
//! items and collects the results **in submission order**, so a parallel
//! stage is observationally identical to its serial counterpart — the
//! property the compression and query pipelines rely on for byte-identical
//! archives and reproducible statistics.
//!
//! Design points:
//!
//! * **Scoped**: workers borrow the caller's data (`std::thread::scope`), so
//!   no `'static` bounds or reference counting are needed at call sites.
//! * **Bounded**: at most [`Pool::threads`] workers exist at a time; the
//!   size comes from `LOGGREP_THREADS` or `available_parallelism` when the
//!   pool is built with [`Pool::from_env`] (or `Pool::new(0)`).
//! * **Chunked work claiming**: workers grab contiguous chunks of the input
//!   off a shared atomic cursor, amortizing synchronization while keeping
//!   the tail balanced.
//! * **Panic propagation**: a panicking worker re-raises its payload on the
//!   calling thread after all workers have stopped, like a plain `for` loop
//!   would.
//! * **Serial fast path**: a one-thread pool (or a one-item input) runs
//!   inline on the caller with zero spawns, so `threads == 1` is *exactly*
//!   the serial pipeline, not an emulation of it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The `pool.queue_depth` gauge: items not yet claimed off the work
/// cursor. Observable live via `loggrep serve-metrics` while a parallel
/// stage runs.
fn queue_depth_gauge() -> &'static telemetry::Gauge {
    static G: OnceLock<&'static telemetry::Gauge> = OnceLock::new();
    G.get_or_init(|| telemetry::gauge("pool.queue_depth"))
}

/// The `pool.workers_active` gauge: workers currently inside a `map` call.
fn workers_active_gauge() -> &'static telemetry::Gauge {
    static G: OnceLock<&'static telemetry::Gauge> = OnceLock::new();
    G.get_or_init(|| telemetry::gauge("pool.workers_active"))
}

/// The environment variable that overrides the default pool size.
pub const THREADS_ENV: &str = "LOGGREP_THREADS";

/// The default worker count: `LOGGREP_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if even
/// that is unavailable).
///
/// The parallelism probe is cached: on virtualized kernels it can take
/// **milliseconds** (procfs-backed syscalls), which would dominate a
/// selective query if paid on every `Pool::new(0)`. The env var is still
/// read on every call (sub-µs) so tests can vary it at runtime.
pub fn default_threads() -> usize {
    match std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => host_parallelism(),
    }
}

/// Cached [`std::thread::available_parallelism`].
fn host_parallelism() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A bounded scoped worker pool.
///
/// The pool itself holds no threads — workers are spawned per call and
/// joined before the call returns — so a `Pool` is a cheap, copyable
/// description of the parallelism budget.
///
/// # Examples
///
/// ```
/// let pool = pool::Pool::new(4);
/// let squares = pool.map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// Creates a pool with `threads` workers; `0` means [`default_threads`].
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
        }
    }

    /// A pool sized from `LOGGREP_THREADS` / `available_parallelism`.
    pub fn from_env() -> Self {
        Self::new(0)
    }

    /// A single-worker pool: every call runs inline on the caller.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// `f` receives `(index, &item)`. Items are processed concurrently in
    /// contiguous chunks; the output vector is deterministic regardless of
    /// scheduling. If any worker panics, the first payload (by join order)
    /// is re-raised here.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.threads.min(n);
        // A few chunks per worker: large enough to amortize the cursor,
        // small enough that one slow chunk cannot strand the tail.
        let chunk = (n / (workers * 4)).max(1);
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

        let mut panics = Vec::new();
        queue_depth_gauge().set(n as i64);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        // Guard so the gauge drops back even if `f` panics.
                        struct ActiveGuard;
                        impl Drop for ActiveGuard {
                            fn drop(&mut self) {
                                workers_active_gauge().add(-1);
                            }
                        }
                        workers_active_gauge().add(1);
                        let _active = ActiveGuard;
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            // Unclaimed tail after this grab; racy across
                            // workers but monotone enough for a live gauge.
                            queue_depth_gauge().set(n.saturating_sub(end) as i64);
                            for (i, item) in items[start..end].iter().enumerate() {
                                local.push((start + i, f(start + i, item)));
                            }
                        }
                        let mut shared = results.lock().unwrap_or_else(|e| e.into_inner());
                        shared.append(&mut local);
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    panics.push(payload);
                }
            }
        });
        queue_depth_gauge().set(0);
        if let Some(payload) = panics.into_iter().next() {
            resume_unwind(payload);
        }

        let mut pairs = results.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Like [`Pool::map`] for fallible stages: runs everything, then
    /// returns the first error **in submission order** (not completion
    /// order), so error reporting is deterministic too.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.map(items, f).into_iter().collect()
    }

    /// Splits `items` into chunks of (at most) `chunk` items and applies
    /// `f` to each chunk concurrently; results come back in chunk order.
    ///
    /// `f` receives `(start_index, chunk_slice)` where `start_index` is the
    /// offset of the chunk's first item in `items`.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        self.map(&chunks, |i, c| f(i * chunk, c))
    }
}

/// A bounded multi-producer FIFO queue.
///
/// The admission-control half of the pool crate: producers `try_push` and
/// get an immediate `Err` (with their item back) once the queue is at
/// capacity, so callers can translate fullness into backpressure instead
/// of unbounded buffering. Std-only, mutex-based — the queues guard
/// admission decisions, not hot-loop item handoff.
///
/// # Examples
///
/// ```
/// let q = pool::BoundedQueue::new(2);
/// assert_eq!(q.try_push(1), Ok(1));
/// assert_eq!(q.try_push(2), Ok(2));
/// assert_eq!(q.try_push(3), Err(3)); // full: item handed back
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    items: Mutex<VecDeque<T>>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            items: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Enqueues `item`, returning the new depth, or hands the item back
    /// when the queue is full.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut items = self.items.lock().unwrap_or_else(|e| e.into_inner());
        if items.len() >= self.capacity {
            return Err(item);
        }
        items.push_back(item);
        Ok(items.len())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        self.items
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every queued item.
    pub fn clear(&self) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bounded_queue_enforces_capacity_fifo() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert!(q.is_empty());
        assert_eq!(q.try_push("a"), Ok(1));
        assert_eq!(q.try_push("b"), Ok(2));
        assert_eq!(q.try_push("c"), Ok(3));
        assert_eq!(q.try_push("d"), Err("d"));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.try_push("d"), Ok(3));
        assert_eq!(q.pop(), Some("b"));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_zero_capacity_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(7), Ok(1));
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let pool = Pool::new(8);
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, &r)| r == i * 3));
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<u32> = (0..1023).map(|i| i * 7 % 513).collect();
        let serial = Pool::serial().map(&items, |_, &x| x as u64 + 1);
        for threads in [2, 3, 4, 16] {
            let par = Pool::new(threads).map(&items, |_, &x| x as u64 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn workers_are_bounded() {
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..256).collect();
        Pool::new(3).map(&items, |_, _| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(50));
            active.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(&items, |_, &x| {
                if x == 13 {
                    panic!("unlucky");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_map_returns_first_error_by_index() {
        let items: Vec<usize> = (0..200).collect();
        let out: Result<Vec<usize>, String> = Pool::new(4).try_map(&items, |_, &x| {
            if x % 90 == 17 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out.unwrap_err(), "bad 17");
        let ok: Result<Vec<usize>, String> = Pool::new(4).try_map(&items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn map_chunks_covers_everything_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let pool = Pool::new(4);
        let chunks = pool.map_chunks(&items, 64, |start, chunk| {
            assert_eq!(chunk[0], start);
            chunk.to_vec()
        });
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(pool.map(&[9u8], |i, &b| (i, b)), vec![(0, 9)]);
        assert_eq!(pool.map_chunks(&[] as &[u8], 4, |_, c| c.len()), Vec::<usize>::new());
    }

    #[test]
    fn gauges_visible_from_workers() {
        // Other tests drive pools concurrently, so only in-worker
        // observations are deterministic: while a worker runs, it is
        // itself counted active, and the queue gauge is a valid depth.
        let items: Vec<usize> = (0..256).collect();
        Pool::new(4).map(&items, |_, &x| {
            let active = telemetry::gauge("pool.workers_active").get();
            assert!(active >= 1, "worker not counted active: {active}");
            let depth = telemetry::gauge("pool.queue_depth").get();
            assert!(depth >= 0, "negative queue depth: {depth}");
            x
        });
    }

    #[test]
    fn zero_means_default_size() {
        assert_eq!(Pool::new(0).threads(), default_threads());
        assert!(default_threads() >= 1);
        assert_eq!(Pool::serial().threads(), 1);
    }
}
