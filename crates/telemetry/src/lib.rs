//! Pipeline-wide telemetry for the LogGrep reproduction.
//!
//! A self-contained (std-only) metrics layer shared by every crate in the
//! workspace: lock-free [`Counter`]s and [`Gauge`]s, power-of-two-bucket
//! [`Histogram`]s for latencies and sizes, and RAII [`Span`] timers that
//! aggregate hierarchically (`compress/extract/merge`, `query/plan`, ...)
//! into a process-wide [`registry`].
//!
//! # Design
//!
//! * **Near-zero cost when disabled.** A single process-wide relaxed
//!   [`AtomicBool`] gates everything. [`span`] returns an inert guard and
//!   the `counter!`/`histogram!` macros skip recording when disabled, so
//!   the instrumented hot paths pay one relaxed load.
//! * **`&'static` metric handles.** The registry leaks each metric once
//!   ([`Box::leak`]) and hands out `&'static` references; hot call sites
//!   cache the handle in a local [`std::sync::OnceLock`] (the `counter!`
//!   and `histogram!` macros do this), so the name-map mutex is only taken
//!   on first touch.
//! * **Hierarchical spans.** Each thread keeps a stack of active span
//!   names; a span records its elapsed nanoseconds into a histogram named
//!   by the joined path (e.g. `query/decompress`), so nested stages
//!   aggregate per position in the pipeline, not just per name.
//! * **Exporters are views.** [`snapshot`] captures every metric; the
//!   [`export`] module renders a snapshot as aligned text or JSON without
//!   any serialization dependency.
//! * **Deep observability is layered on top.** The [`journal`] records
//!   span begin/end edges and counter deltas into per-thread ring buffers
//!   (exportable as Chrome trace-event JSON or collapsed stacks), the
//!   [`sampler`] profiles live span stacks at a configurable rate, the
//!   [`prometheus`] module renders snapshots in text exposition format,
//!   and [`http::MetricsServer`] serves `/metrics`, `/healthz`, and
//!   `/trace/last.json` over a std-only TCP listener.
//!
//! # Example
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span("compress");
//!     let _inner = telemetry::span("extract");
//!     telemetry::counter("parse.lines").add(42);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("parse.lines"), 42);
//! assert!(snap.histogram("compress/extract").is_some());
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod http;
pub mod journal;
pub mod json;
mod metrics;
pub mod prometheus;
mod registry;
pub mod sampler;
mod span;

pub use export::{export_json, export_text, export_trace_text};
pub use http::{MetricsServer, SnapshotProvider};
pub use journal::{
    clear_journal, current_trace_id, export_chrome_trace, export_collapsed, journal_enabled,
    journal_events, mark, set_journal_enabled, trace_scope, trace_scope_with, EventKind,
    TraceEvent, TraceScope,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use prometheus::render as export_prometheus;
pub use registry::{counter, gauge, histogram, reset, snapshot, Snapshot};
pub use sampler::{sample_now, Sampler, SamplerReport};
pub use span::{context, span, span_path, Context, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off process-wide.
///
/// Disabled is the default; when disabled, spans are inert and the
/// recording macros skip their atomic updates.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds to a named counter, caching the `&'static` handle at the call site.
///
/// `counter!("parse.lines", n)` is the hot-path form of
/// `telemetry::counter("parse.lines").add(n)`: the handle is resolved
/// through the registry mutex once and kept in a local `OnceLock`, and the
/// add is skipped entirely while telemetry is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            let handle = *HANDLE.get_or_init(|| $crate::counter($name));
            handle.add($delta);
            if $crate::journal_enabled() {
                $crate::journal::record_counter($name, handle.get());
            }
        }
    }};
}

/// Records a value into a named histogram, caching the handle like
/// [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::histogram($name)).record($value);
        }
    }};
}

/// Serializes tests that flip the process-wide enable flag.
#[cfg(test)]
pub(crate) fn enable_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share one registry; run the whole sequence in a
    /// single test to avoid cross-test interference.
    #[test]
    fn enable_flag_gates_macros() {
        let _guard = enable_lock();
        set_enabled(false);
        counter!("lib.test.gated", 5);
        assert_eq!(snapshot().counter("lib.test.gated"), 0);

        set_enabled(true);
        counter!("lib.test.gated", 5);
        histogram!("lib.test.hist", 100u64);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.gated"), 5);
        assert_eq!(snap.histogram("lib.test.hist").unwrap().count, 1);
        set_enabled(false);
    }
}
