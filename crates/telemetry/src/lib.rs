//! Pipeline-wide telemetry for the LogGrep reproduction.
//!
//! A self-contained (std-only) metrics layer shared by every crate in the
//! workspace: lock-free [`Counter`]s and [`Gauge`]s, power-of-two-bucket
//! [`Histogram`]s for latencies and sizes, and RAII [`Span`] timers that
//! aggregate hierarchically (`compress/extract/merge`, `query/plan`, ...)
//! into a process-wide [`registry`].
//!
//! # Design
//!
//! * **Near-zero cost when disabled.** A single process-wide relaxed
//!   [`AtomicBool`] gates everything. [`span`] returns an inert guard and
//!   the `counter!`/`histogram!` macros skip recording when disabled, so
//!   the instrumented hot paths pay one relaxed load.
//! * **`&'static` metric handles.** The registry leaks each metric once
//!   ([`Box::leak`]) and hands out `&'static` references; hot call sites
//!   cache the handle in a local [`std::sync::OnceLock`] (the `counter!`
//!   and `histogram!` macros do this), so the name-map mutex is only taken
//!   on first touch.
//! * **Hierarchical spans.** Each thread keeps a stack of active span
//!   names; a span records its elapsed nanoseconds into a histogram named
//!   by the joined path (e.g. `query/decompress`), so nested stages
//!   aggregate per position in the pipeline, not just per name.
//! * **Exporters are views.** [`snapshot`] captures every metric; the
//!   [`export`] module renders a snapshot as aligned text or JSON without
//!   any serialization dependency.
//!
//! # Example
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span("compress");
//!     let _inner = telemetry::span("extract");
//!     telemetry::counter("parse.lines").add(42);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("parse.lines"), 42);
//! assert!(snap.histogram("compress/extract").is_some());
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
mod metrics;
mod registry;
mod span;

pub use export::{export_json, export_text, export_trace_text};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{counter, gauge, histogram, reset, snapshot, Snapshot};
pub use span::{context, span, span_path, Context, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off process-wide.
///
/// Disabled is the default; when disabled, spans are inert and the
/// recording macros skip their atomic updates.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds to a named counter, caching the `&'static` handle at the call site.
///
/// `counter!("parse.lines", n)` is the hot-path form of
/// `telemetry::counter("parse.lines").add(n)`: the handle is resolved
/// through the registry mutex once and kept in a local `OnceLock`, and the
/// add is skipped entirely while telemetry is disabled.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::counter($name)).add($delta);
        }
    }};
}

/// Records a value into a named histogram, caching the handle like
/// [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE.get_or_init(|| $crate::histogram($name)).record($value);
        }
    }};
}

/// Serializes tests that flip the process-wide enable flag.
#[cfg(test)]
pub(crate) fn enable_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share one registry; run the whole sequence in a
    /// single test to avoid cross-test interference.
    #[test]
    fn enable_flag_gates_macros() {
        let _guard = enable_lock();
        set_enabled(false);
        counter!("lib.test.gated", 5);
        assert_eq!(snapshot().counter("lib.test.gated"), 0);

        set_enabled(true);
        counter!("lib.test.gated", 5);
        histogram!("lib.test.hist", 100u64);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.gated"), 5);
        assert_eq!(snap.histogram("lib.test.hist").unwrap().count, 1);
        set_enabled(false);
    }
}
