//! The trace journal: a lock-light ring buffer of span begin/end, counter,
//! and instant events, exportable as Chrome trace-event JSON (loads in
//! Perfetto / `chrome://tracing`) and as flamegraph-collapsed stacks.
//!
//! # Design
//!
//! * **Per-thread rings.** Each recording thread owns a bounded
//!   `VecDeque` of [`TraceEvent`]s behind its own mutex, registered in a
//!   global list on first use. Writers only ever lock their own ring
//!   (uncontended except while an exporter drains), so journaling adds a
//!   short uncontended lock + one event per span edge, nothing global.
//! * **Bounded.** Rings overwrite their oldest events past
//!   [`ring_capacity`] events per thread — a long-running process keeps
//!   the *recent* trace, never an unbounded log.
//! * **Off by default.** A dedicated [`set_journal_enabled`] flag gates
//!   recording (separately from the metrics flag, which gates span
//!   arming); both must be on for events to flow.
//! * **Trace ids.** A [`trace_scope`] guard stamps every event recorded
//!   by the current thread with a query-scoped id, and
//!   [`trace_scope_with`] propagates the same id onto worker threads, so
//!   one query's spans correlate across the pool.
//!
//! Timestamps are nanoseconds since the journal epoch (first enable).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export::push_json_string;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static JOURNAL_ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// What a journal event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`value` is 0).
    SpanBegin,
    /// A span closed (`value` is its duration in nanoseconds).
    SpanEnd,
    /// A counter moved (`value` is its new running total).
    Counter,
    /// A point-in-time mark.
    Instant,
}

/// One journal entry.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since the journal epoch.
    pub ts_ns: u64,
    /// Journal-assigned thread id (small, stable per thread).
    pub tid: u64,
    /// The enclosing [`trace_scope`] id, 0 when none.
    pub trace_id: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Span path, counter name, or mark label.
    pub name: String,
    /// Kind-specific payload (see [`EventKind`]).
    pub value: u64,
}

struct ThreadRing {
    tid: u64,
    events: Mutex<VecDeque<TraceEvent>>,
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL_RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(VecDeque::new()),
        });
        rings()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    };
    static TRACE_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Turns journal recording on or off process-wide.
///
/// The journal only receives events while the metrics flag
/// ([`crate::set_enabled`]) is *also* on, since disabled spans are inert.
pub fn set_journal_enabled(on: bool) {
    if on {
        epoch(); // Pin the epoch at first enable.
    }
    JOURNAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether journal recording is currently enabled.
#[inline]
pub fn journal_enabled() -> bool {
    JOURNAL_ENABLED.load(Ordering::Relaxed)
}

/// Caps each thread's ring at `events` entries (oldest evicted first).
/// Applies to subsequent pushes; `0` is treated as 1.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// The journal-assigned id of the current thread.
pub fn current_tid() -> u64 {
    LOCAL_RING.with(|r| r.tid)
}

/// The current thread's active trace id (0 when outside any scope).
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(std::cell::Cell::get)
}

/// A guard holding a trace id on the current thread; restores the previous
/// id when dropped.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

/// Opens a fresh trace scope (a new process-unique id), stamping every
/// event this thread records until the guard drops. Queries open one scope
/// per execution so all their spans share an id.
pub fn trace_scope() -> TraceScope {
    trace_scope_with(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
}

/// Adopts an existing trace id — used by pool workers to join the scope of
/// the query that fanned them out.
pub fn trace_scope_with(id: u64) -> TraceScope {
    let prev = TRACE_ID.with(|t| t.replace(id));
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

#[inline]
fn push(kind: EventKind, name: &str, value: u64) {
    let ts_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let trace_id = current_trace_id();
    LOCAL_RING.with(|ring| {
        let mut events = ring.events.lock().unwrap_or_else(|e| e.into_inner());
        let cap = RING_CAPACITY.load(Ordering::Relaxed).max(1);
        while events.len() >= cap {
            events.pop_front();
        }
        events.push_back(TraceEvent {
            ts_ns,
            tid: ring.tid,
            trace_id,
            kind,
            name: name.to_string(),
            value,
        });
    });
}

/// Records a span-begin edge (called by [`crate::span`]).
#[inline]
pub(crate) fn record_span_begin(path: &str) {
    if journal_enabled() {
        push(EventKind::SpanBegin, path, 0);
    }
}

/// Records a span-end edge with the span's duration.
#[inline]
pub(crate) fn record_span_end(path: &str, dur_ns: u64) {
    if journal_enabled() {
        push(EventKind::SpanEnd, path, dur_ns);
    }
}

/// Records a counter's new running total (called by the `counter!` macro).
#[inline]
pub fn record_counter(name: &str, total: u64) {
    if journal_enabled() {
        push(EventKind::Counter, name, total);
    }
}

/// Records a point-in-time mark (e.g. "cache cleared").
pub fn mark(label: &str) {
    if journal_enabled() {
        push(EventKind::Instant, label, 0);
    }
}

/// A consistent copy of every thread's ring, merged and sorted by
/// timestamp. Non-destructive; see [`clear_journal`] to drop history.
pub fn journal_events() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = rings()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut all = Vec::new();
    for ring in rings {
        let events = ring.events.lock().unwrap_or_else(|e| e.into_inner());
        all.extend(events.iter().cloned());
    }
    all.sort_by_key(|e| (e.ts_ns, e.tid));
    all
}

/// Drops every buffered event (thread rings stay registered).
pub fn clear_journal() {
    let rings: Vec<Arc<ThreadRing>> = rings()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    for ring in rings {
        ring.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Renders events as Chrome trace-event JSON: an object with a
/// `traceEvents` array of `B`/`E` duration edges, `C` counter samples, and
/// `i` instant marks. Loads directly in Perfetto and `chrome://tracing`.
///
/// Timestamps convert to the format's microseconds (fractional, so no
/// nanosecond precision is lost); every event carries `pid`, `tid`, and a
/// `trace` arg holding the [`trace_scope`] id.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = e.ts_ns as f64 / 1e3;
        let ph = match e.kind {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Counter => "C",
            EventKind::Instant => "i",
        };
        out.push_str("{\"name\": ");
        push_json_string(&mut out, &e.name);
        out.push_str(&format!(
            ", \"ph\": \"{ph}\", \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}, ",
            e.tid
        ));
        if e.kind == EventKind::Instant {
            out.push_str("\"s\": \"t\", ");
        }
        match e.kind {
            EventKind::Counter => {
                out.push_str(&format!(
                    "\"args\": {{\"value\": {}, \"trace\": {}}}}}",
                    e.value, e.trace_id
                ));
            }
            _ => {
                out.push_str(&format!("\"args\": {{\"trace\": {}}}}}", e.trace_id));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events as flamegraph-collapsed stacks: one line per span path,
/// `a;b;c <self-nanoseconds>`, where self time is the path's total minus
/// its direct children's totals (clamped at zero). Feed to
/// `flamegraph.pl` or any FlameGraph-format viewer.
pub fn export_collapsed(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::SpanEnd {
            *totals.entry(e.name.as_str()).or_insert(0) += e.value;
        }
    }
    let mut out = String::new();
    for (path, &total) in &totals {
        let child_sum: u64 = totals
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path)
                    && p.as_bytes().get(path.len()) == Some(&b'/')
                    && !p[path.len() + 1..].contains('/')
            })
            .map(|(_, &v)| v)
            .sum();
        let self_ns = total.saturating_sub(child_sum);
        if self_ns > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_records_span_edges_and_counters() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        set_journal_enabled(true);
        clear_journal();
        {
            let _t = trace_scope();
            let _a = crate::span("journal.test.outer");
            let _b = crate::span("inner");
            crate::counter!("journal.test.count", 3);
        }
        set_journal_enabled(false);
        crate::set_enabled(false);

        let events = journal_events();
        let begins: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .collect();
        let ends: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .collect();
        assert_eq!(begins.len(), 2, "{events:?}");
        assert_eq!(ends.len(), 2);
        assert!(begins.iter().any(|e| e.name == "journal.test.outer"));
        assert!(ends.iter().any(|e| e.name == "journal.test.outer/inner"));
        // Every event carries the same nonzero trace id and one tid.
        assert!(events.iter().all(|e| e.trace_id != 0));
        assert!(events.iter().all(|e| e.trace_id == events[0].trace_id));
        let counter = events
            .iter()
            .find(|e| e.kind == EventKind::Counter)
            .expect("counter event");
        assert_eq!(counter.name, "journal.test.count");
        // End edges carry durations; timestamps are monotone after sort.
        assert!(ends.iter().all(|e| e.value > 0));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        set_journal_enabled(false);
        clear_journal();
        let _a = crate::span("journal.test.silent");
        drop(_a);
        crate::set_enabled(false);
        assert!(journal_events().is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        set_journal_enabled(true);
        clear_journal();
        set_ring_capacity(16);
        for _ in 0..100 {
            mark("journal.test.flood");
        }
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_journal_enabled(false);
        crate::set_enabled(false);
        let events = journal_events();
        assert!(events.len() <= 16, "ring not bounded: {}", events.len());
        clear_journal();
        assert!(journal_events().is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json_with_balanced_edges() {
        let events = vec![
            TraceEvent {
                ts_ns: 100,
                tid: 1,
                trace_id: 7,
                kind: EventKind::SpanBegin,
                name: "query".into(),
                value: 0,
            },
            TraceEvent {
                ts_ns: 150,
                tid: 1,
                trace_id: 7,
                kind: EventKind::Counter,
                name: "query.rows \"x\"".into(),
                value: 42,
            },
            TraceEvent {
                ts_ns: 400,
                tid: 1,
                trace_id: 7,
                kind: EventKind::SpanEnd,
                name: "query".into(),
                value: 300,
            },
            TraceEvent {
                ts_ns: 500,
                tid: 2,
                trace_id: 0,
                kind: EventKind::Instant,
                name: "mark".into(),
                value: 0,
            },
        ];
        let json = export_chrome_trace(&events);
        let doc = crate::json::parse(&json).expect("valid JSON");
        let arr = doc
            .get("traceEvents")
            .and_then(crate::json::Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(arr.len(), 4);
        for e in arr {
            assert!(e.str("name").is_some());
            assert!(e.str("ph").is_some());
            assert!(e.num("ts").is_some());
            assert!(e.num("tid").is_some());
            assert!(e.num("pid").is_some());
        }
        assert_eq!(arr[0].str("ph"), Some("B"));
        assert_eq!(arr[1].str("ph"), Some("C"));
        assert_eq!(arr[1].get("args").unwrap().num("value"), Some(42.0));
        assert_eq!(arr[2].str("ph"), Some("E"));
        assert_eq!(arr[3].str("ph"), Some("i"));
        assert_eq!(arr[3].str("s"), Some("t"));
    }

    #[test]
    fn collapsed_subtracts_children() {
        let end = |name: &str, dur: u64| TraceEvent {
            ts_ns: 0,
            tid: 1,
            trace_id: 0,
            kind: EventKind::SpanEnd,
            name: name.into(),
            value: dur,
        };
        let events = vec![
            end("query", 1000),
            end("query/plan", 200),
            end("query/reconstruct", 300),
            end("query/reconstruct/decompress", 120),
        ];
        let collapsed = export_collapsed(&events);
        let mut lines: Vec<&str> = collapsed.lines().collect();
        lines.sort_unstable();
        assert_eq!(
            lines,
            vec![
                "query 500",
                "query;plan 200",
                "query;reconstruct 180",
                "query;reconstruct;decompress 120",
            ]
        );
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace_id(), 0);
        let outer = trace_scope();
        let outer_id = current_trace_id();
        assert_ne!(outer_id, 0);
        {
            let _inner = trace_scope_with(999);
            assert_eq!(current_trace_id(), 999);
        }
        assert_eq!(current_trace_id(), outer_id);
        drop(outer);
        assert_eq!(current_trace_id(), 0);
    }
}
