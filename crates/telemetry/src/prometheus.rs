//! Prometheus text exposition (format version 0.0.4) of a [`Snapshot`].
//!
//! # Naming scheme
//!
//! Every metric is prefixed `loggrep_`; dots, slashes, and other
//! non-`[a-zA-Z0-9_:]` characters in registry names map to `_`:
//!
//! * counters  → `loggrep_<name>_total` (counter type), e.g.
//!   `query.cache.misses` → `loggrep_query_cache_misses_total`;
//! * gauges    → `loggrep_<name>` (gauge type), e.g.
//!   `pool.queue_depth` → `loggrep_pool_queue_depth`;
//! * histograms → `loggrep_<name>` rendered as a *summary*: p50/p95/p99
//!   `quantile` samples derived from the pow2 buckets, plus `_sum` and
//!   `_count`. Span histograms record nanoseconds, so
//!   `query/reconstruct` → `loggrep_query_reconstruct{quantile="0.99"}`
//!   is a nanosecond latency.
//!
//! Quantiles come from [`HistogramSnapshot::quantile`] — the upper bound
//! of the bucket where the cumulative count crosses the rank, clamped to
//! observed min/max — so they are upper estimates with power-of-two
//! resolution, not exact order statistics.

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;

/// The quantiles exported for each histogram.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Maps a registry metric name to a Prometheus metric name (prefixed,
/// sanitized, no suffix).
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("loggrep_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = metric_name(name) + "_total";
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        push_summary(&mut out, &n, h);
    }
    out
}

fn push_summary(out: &mut String, name: &str, h: &HistogramSnapshot) {
    for (q, label) in QUANTILES {
        out.push_str(&format!(
            "{name}{{quantile=\"{label}\"}} {}\n",
            h.quantile(q)
        ));
    }
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn names_sanitize() {
        assert_eq!(metric_name("query.cache.misses"), "loggrep_query_cache_misses");
        assert_eq!(metric_name("query/reconstruct"), "loggrep_query_reconstruct");
        assert_eq!(metric_name("odd name-1:x"), "loggrep_odd_name_1:x");
    }

    #[test]
    fn exposition_shape() {
        let h = Histogram::new();
        for v in [10u64, 100, 1000, 10_000] {
            h.record(v);
        }
        let snap = Snapshot {
            counters: vec![("parse.lines".into(), 120)],
            gauges: vec![("pool.queue_depth".into(), -2)],
            histograms: vec![("query/plan".into(), h.snapshot())],
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE loggrep_parse_lines_total counter\n"), "{text}");
        assert!(text.contains("loggrep_parse_lines_total 120\n"));
        assert!(text.contains("# TYPE loggrep_pool_queue_depth gauge\n"));
        assert!(text.contains("loggrep_pool_queue_depth -2\n"));
        assert!(text.contains("# TYPE loggrep_query_plan summary\n"));
        for q in ["0.5", "0.95", "0.99"] {
            assert!(
                text.contains(&format!("loggrep_query_plan{{quantile=\"{q}\"}} ")),
                "missing quantile {q} in {text}"
            );
        }
        assert!(text.contains("loggrep_query_plan_sum 11110\n"));
        assert!(text.contains("loggrep_query_plan_count 4\n"));

        // Every non-comment line is `name[{labels}] value` with a numeric
        // value — the well-formedness a scraper relies on.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in `{line}`");
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Snapshot::default()), "");
    }
}
