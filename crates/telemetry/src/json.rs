//! A minimal recursive-descent JSON parser.
//!
//! The workspace has no serialization dependency, but several consumers
//! need to *read* JSON this repo itself writes: the Chrome-trace schema
//! test, the `/trace/last.json` endpoint test, and the perf-regression
//! checker that replays `BENCH_hotpath.json` trajectories. This module is
//! that one shared reader — strict enough to validate our own exporters,
//! small enough to audit.
//!
//! Limits: numbers parse as `f64`; `\uXXXX` escapes outside the BMP are
//! kept as the replacement character; input depth is capped so corrupt
//! files cannot overflow the stack.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted by key; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)` as a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_num)
    }

    /// Convenience: `self.get(key)` as a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller saw the opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or_default())
                    .map_err(|_| "non-utf8 string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#)
            .unwrap();
        assert_eq!(v.num("a"), None);
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().str("c"), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn escapes_roundtrip_with_exporter() {
        let mut s = String::new();
        crate::export::push_json_string(&mut s, "a\"b\\c\nd\u{1}é");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn export_json_parses() {
        let snap = crate::snapshot();
        let v = parse(&crate::export_json(&snap)).unwrap();
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse(" 0 ").unwrap().as_num(), Some(0.0));
    }
}
