//! RAII span timers with a per-thread span stack.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it (in nanoseconds) into a histogram named by the full path of
//! nested spans on the current thread — `span("query")` followed by
//! `span("plan")` records under `"query"` and `"query/plan"`. The path
//! reflects *this thread's* nesting only; each thread keeps its own stack,
//! so concurrent pipelines aggregate into the same histograms without
//! interleaving their paths.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An active span; records its elapsed time on drop.
///
/// Inert (no clock read, no stack push) when telemetry is disabled at
/// creation time.
#[derive(Debug)]
pub struct Span {
    /// `None` for inert spans created while telemetry was disabled.
    armed: Option<ArmedSpan>,
}

#[derive(Debug)]
struct ArmedSpan {
    start: Instant,
    path: String,
}

/// Starts a span named `name`, nested under any spans already active on
/// this thread. Hold the returned guard for the duration of the stage:
///
/// ```
/// telemetry::set_enabled(true);
/// let _stage = telemetry::span("compress");
/// // ... work; time lands in the "compress" histogram on drop.
/// # telemetry::set_enabled(false);
/// ```
pub fn span(name: &str) -> Span {
    if !crate::enabled() {
        return Span { armed: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    // Make the span visible to the cross-thread observers: the sampling
    // profiler (published stack) and the trace journal (begin edge).
    crate::sampler::publish_push(&path);
    crate::journal::record_span_begin(&path);
    Span {
        armed: Some(ArmedSpan {
            start: Instant::now(),
            path,
        }),
    }
}

/// The current thread's active span path (e.g. `"query/plan"`), if any.
pub fn span_path() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

/// A context frame: re-roots this thread's span stack at an **absolute**
/// path without recording anything on drop.
///
/// Worker threads use this to attribute their spans under the pipeline
/// stage that fanned them out — a worker that opens
/// `context("compress")` and then `span("encode")` records under
/// `"compress/encode"`, exactly like the serial pipeline, even though the
/// `compress` span itself lives on the spawning thread. Each worker's
/// stack is thread-local, so concurrent workers never interleave paths.
#[derive(Debug)]
pub struct Context {
    /// `None` for inert contexts created while telemetry was disabled.
    armed: Option<String>,
}

/// Pushes an absolute `path` as the current thread's span root; the frame
/// pops when the guard drops. No histogram is recorded — this only shapes
/// the paths of spans opened underneath it.
pub fn context(path: &str) -> Context {
    if !crate::enabled() {
        return Context { armed: None };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(path.to_string()));
    // Contexts shape sampler attribution too: a worker inside
    // `context("compress")` samples as `compress/...`.
    crate::sampler::publish_push(path);
    Context {
        armed: Some(path.to_string()),
    }
}

impl Drop for Context {
    fn drop(&mut self) {
        let Some(path) = self.armed.take() else {
            return;
        };
        crate::sampler::publish_pop(&path);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|p| *p == path) {
                stack.remove(pos);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        let ns = armed.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        crate::histogram(&armed.path).record(ns);
        crate::journal::record_span_end(&armed.path, ns);
        crate::sampler::publish_pop(&armed.path);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame; tolerate out-of-order drops (e.g. a span
            // guard outliving a later sibling) by removing the matching
            // entry rather than blindly popping.
            if let Some(pos) = stack.iter().rposition(|p| *p == armed.path) {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        {
            let _a = span("span.test.outer");
            assert_eq!(span_path().as_deref(), Some("span.test.outer"));
            {
                let _b = span("inner");
                assert_eq!(span_path().as_deref(), Some("span.test.outer/inner"));
            }
            assert_eq!(span_path().as_deref(), Some("span.test.outer"));
        }
        assert_eq!(span_path(), None);
        let snap = crate::snapshot();
        assert_eq!(snap.histogram("span.test.outer").unwrap().count, 1);
        assert_eq!(snap.histogram("span.test.outer/inner").unwrap().count, 1);
        crate::set_enabled(false);
    }

    #[test]
    fn concurrent_nesting_stays_per_thread() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        let _outer = span("span.test.mt");
                        let _inner = span("leaf");
                    }
                    assert_eq!(span_path(), None);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        crate::set_enabled(false);
        let snap = crate::snapshot();
        // All threads aggregate into the same two histograms...
        assert_eq!(snap.histogram("span.test.mt").unwrap().count, 400);
        assert_eq!(snap.histogram("span.test.mt/leaf").unwrap().count, 400);
        // ...and never interleave paths across threads.
        assert!(snap.histogram("span.test.mt/span.test.mt").is_none());
        assert!(snap.histogram("span.test.mt/leaf/leaf").is_none());
        assert!(snap.histogram("span.test.mt/leaf/span.test.mt").is_none());
    }

    #[test]
    fn context_reroots_worker_spans() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        std::thread::spawn(|| {
            let _ctx = context("span.test.ctx");
            let _leaf = span("leaf");
        })
        .join()
        .unwrap();
        crate::set_enabled(false);
        let snap = crate::snapshot();
        // The nested span lands under the context path...
        assert_eq!(snap.histogram("span.test.ctx/leaf").unwrap().count, 1);
        // ...but the context itself records no histogram.
        assert!(snap.histogram("span.test.ctx").is_none());
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = crate::enable_lock();
        crate::set_enabled(false);
        let s = span("span.test.inert");
        assert!(s.armed.is_none());
        assert_eq!(span_path(), None);
        drop(s);
        assert!(crate::snapshot().histogram("span.test.inert").is_none());
    }
}
