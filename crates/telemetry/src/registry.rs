//! The process-wide metric registry.
//!
//! Metrics are created on first use and leaked ([`Box::leak`]) so handles
//! are `&'static` and recording never takes a lock; the name maps behind
//! mutexes are only touched on first resolution of a name and when taking
//! a [`Snapshot`].

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<String, &'static Counter>>,
    gauges: Mutex<HashMap<String, &'static Gauge>>,
    histograms: Mutex<HashMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<T>(map: &Mutex<HashMap<String, &'static T>>, name: &str, make: fn() -> T) -> &'static T {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&m) = map.get(name) {
        return m;
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Resolves (creating on first use) the counter with the given name.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name, Counter::new)
}

/// Resolves (creating on first use) the gauge with the given name.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name, Gauge::new)
}

/// Resolves (creating on first use) the histogram with the given name.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name, Histogram::new)
}

/// Zeroes every registered metric (handles stay valid).
///
/// Used by the CLI between pipeline runs and by tests; concurrent
/// recorders may land updates after the reset.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap_or_else(|e| e.into_inner()).values() {
        c.reset();
    }
    for g in reg.gauges.lock().unwrap_or_else(|e| e.into_inner()).values() {
        g.reset();
    }
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        h.reset();
    }
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram (span paths live here).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter, 0 if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Value of a gauge, 0 if it was never touched.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// State of a histogram, `None` if it was never touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Histograms whose name starts with `prefix` (e.g. `"query"` selects
    /// the whole query span subtree).
    pub fn histograms_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a (String, HistogramSnapshot)> {
        self.histograms.iter().filter(move |(n, _)| {
            n == prefix || (n.starts_with(prefix) && n.as_bytes().get(prefix.len()) == Some(&b'/'))
        })
    }

    /// True when no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&(_, v)| v == 0)
            && self.gauges.iter().all(|&(_, v)| v == 0)
            && self.histograms.iter().all(|(_, h)| h.count == 0)
    }
}

/// Captures the current state of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, c)| (n.clone(), c.get()))
        .collect();
    let mut gauges: Vec<(String, i64)> = reg
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, g)| (n.clone(), g.get()))
        .collect();
    let mut histograms: Vec<(String, HistogramSnapshot)> = reg
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, h)| (n.clone(), h.snapshot()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let a = counter("registry.test.same") as *const Counter;
        let b = counter("registry.test.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_reads_and_prefix_filter() {
        counter("registry.test.snap").add(7);
        gauge("registry.test.gauge").set(-3);
        histogram("registry.test.tree/a").record(1);
        histogram("registry.test.tree/a/b").record(2);
        histogram("registry.test.treeish").record(3);
        let snap = snapshot();
        assert_eq!(snap.counter("registry.test.snap"), 7);
        assert_eq!(snap.gauge("registry.test.gauge"), -3);
        assert_eq!(snap.counter("registry.test.absent"), 0);
        assert!(snap.histogram("registry.test.absent").is_none());
        let under: Vec<&str> = snap
            .histograms_under("registry.test.tree/a")
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(under, ["registry.test.tree/a", "registry.test.tree/a/b"]);
        // Names sorted.
        let mut sorted = snap.counters.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(snap.counters, sorted);
    }
}
