//! Snapshot exporters: aligned text for terminals, JSON for machines.
//!
//! Both render a [`Snapshot`]; neither touches the live registry, so an
//! export is internally consistent with the snapshot it was taken from.

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;

/// Renders a snapshot as aligned, human-readable text.
///
/// Histograms print count, total, mean, p50/p99, and max; span histograms
/// (recorded in nanoseconds) are detected by their `/`-joined names being
/// conventional but are formatted the same way — callers that want
/// duration formatting should use the `ns` columns directly.
pub fn export_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        let width = name_width(snap.counters.iter().map(|(n, _)| n.as_str()));
        for (name, value) in &snap.counters {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = name_width(snap.gauges.iter().map(|(n, _)| n.as_str()));
        for (name, value) in &snap.gauges {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        let width = name_width(snap.histograms.iter().map(|(n, _)| n.as_str()));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {name:<width$}  count={} sum={} mean={:.1} p50={} p99={} max={}\n",
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn name_width<'a>(names: impl Iterator<Item = &'a str>) -> usize {
    names.map(str::len).max().unwrap_or(0)
}

/// Renders a snapshot as a JSON object:
///
/// ```json
/// {
///   "counters": {"parse.lines": 120},
///   "gauges": {},
///   "histograms": {
///     "query/plan": {"count": 1, "sum": 53200, "min": 53200,
///                     "max": 53200, "mean": 53200.0,
///                     "p50": 65535, "p90": 65535, "p95": 65535, "p99": 65535}
///   }
/// }
/// ```
///
/// Hand-rolled (no serialization dependency); names are JSON-escaped.
pub fn export_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    push_entries(&mut out, &snap.counters, |out, v| {
        out.push_str(&v.to_string());
    });
    out.push_str("},\n  \"gauges\": {");
    push_entries(&mut out, &snap.gauges, |out, v| {
        out.push_str(&v.to_string());
    });
    out.push_str("},\n  \"histograms\": {");
    push_entries(&mut out, &snap.histograms, |out, h| {
        push_histogram_json(out, h);
    });
    out.push_str("}\n}\n");
    out
}

fn push_entries<T>(out: &mut String, entries: &[(String, T)], mut value: impl FnMut(&mut String, &T)) {
    for (i, (name, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(": ");
        value(out, v);
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.95),
        h.quantile(0.99),
    ));
}

/// Renders the per-stage trace view of a snapshot: the span tree (each
/// histogram name is a `/`-joined path) with total milliseconds, call
/// counts, and percent-of-parent, followed by the non-zero counters.
///
/// This is the format behind the CLI's `--trace` flag; tools that want the
/// machine-readable equivalent use [`export_json`] on the same snapshot.
pub fn export_trace_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.histograms.is_empty() {
        out.push_str("stages:\n");
        // Sorted names put children directly under their parent prefix.
        let labels: Vec<String> = snap
            .histograms
            .iter()
            .map(|(name, _)| {
                let depth = name.matches('/').count();
                let leaf = name.rsplit('/').next().unwrap_or(name);
                format!("{}{leaf}", "  ".repeat(depth))
            })
            .collect();
        let width = labels.iter().map(String::len).max().unwrap_or(0);
        for ((name, h), label) in snap.histograms.iter().zip(&labels) {
            let ms = h.sum as f64 / 1e6;
            let pct = parent_sum(snap, name)
                .filter(|&p| p > 0)
                .map(|p| format!("  {:5.1}%", h.sum as f64 * 100.0 / p as f64))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {label:<width$}  {ms:>10.3} ms  x{:<6}{pct}\n",
                h.count
            ));
        }
    }
    let live: Vec<&(String, u64)> = snap.counters.iter().filter(|&&(_, v)| v > 0).collect();
    if !live.is_empty() {
        out.push_str("counters:\n");
        let width = live.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in live {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if out.is_empty() {
        out.push_str("(no stages recorded — telemetry disabled?)\n");
    }
    out
}

/// Sum of the parent span's histogram, if `name` has a parent.
fn parent_sum(snap: &Snapshot, name: &str) -> Option<u64> {
    let (parent, _) = name.rsplit_once('/')?;
    snap.histogram(parent).map(|h| h.sum)
}

/// Appends `s` as a JSON string literal (quotes included).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_snapshot() -> Snapshot {
        let h = Histogram::new();
        h.record(10);
        h.record(2000);
        Snapshot {
            counters: vec![("parse.lines".into(), 120)],
            gauges: vec![("cache.bytes".into(), -5)],
            histograms: vec![("query/plan".into(), h.snapshot())],
        }
    }

    #[test]
    fn text_lists_all_sections() {
        let text = export_text(&sample_snapshot());
        assert!(text.contains("counters:"));
        assert!(text.contains("parse.lines"));
        assert!(text.contains("120"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("cache.bytes"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("query/plan"));
        assert!(text.contains("count=2"));
    }

    #[test]
    fn empty_snapshot_text() {
        assert_eq!(export_text(&Snapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn json_shape() {
        let json = export_json(&sample_snapshot());
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"parse.lines\": 120"));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"cache.bytes\": -5"));
        assert!(json.contains("\"query/plan\": {\"count\": 2"));
        // Balanced braces (coarse structural check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }

    #[test]
    fn trace_text_shows_stage_tree_and_percentages() {
        let hist = |sum: u64, count: u64| {
            let h = Histogram::new();
            for _ in 0..count {
                h.record(sum / count);
            }
            h.snapshot()
        };
        let snap = Snapshot {
            counters: vec![
                ("query.stamp_rejections".into(), 4),
                ("query.zero".into(), 0),
            ],
            gauges: vec![],
            histograms: vec![
                ("query".into(), hist(2_000_000, 1)),
                ("query/plan".into(), hist(500_000, 2)),
            ],
        };
        let text = export_trace_text(&snap);
        assert!(text.contains("stages:"), "{text}");
        assert!(text.contains("query"), "{text}");
        // Child indented under parent with a percent-of-parent column.
        assert!(text.contains("  plan"), "{text}");
        assert!(text.contains("25.0%"), "{text}");
        assert!(text.contains("x2"), "{text}");
        // Zero counters are suppressed, live ones shown.
        assert!(text.contains("query.stamp_rejections"), "{text}");
        assert!(!text.contains("query.zero"), "{text}");
        assert!(
            export_trace_text(&Snapshot::default()).contains("no stages recorded")
        );
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
