//! A tiny std-only HTTP exporter for live observability.
//!
//! [`MetricsServer`] binds a `TcpListener` and serves three read-only
//! endpoints from a background thread:
//!
//! * `GET /metrics`         — the registry in Prometheus text exposition
//!   format (see [`crate::prometheus`] for the naming scheme);
//! * `GET /healthz`         — `ok` (liveness probe);
//! * `GET /trace/last.json` — the trace journal as Chrome trace-event
//!   JSON (import into Perfetto / `chrome://tracing`).
//!
//! The snapshot source is pluggable ([`MetricsServer::bind_with`]), so an
//! embedding service — the CLI's `serve-metrics` verb, or a
//! `cluster::Cluster` aggregating per-shard metrics — can serve its own
//! view through the same endpoints. No HTTP dependency: requests are
//! parsed from the first line with a bounded read, responses are written
//! with `Content-Length` and the connection closed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::Snapshot;

/// Upper bound on a request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8192;

/// A provider of the snapshot served at `/metrics`.
pub type SnapshotProvider = Arc<dyn Fn() -> Snapshot + Send + Sync>;

/// A running metrics endpoint; shuts down when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// serves the process-wide registry.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Self::bind_with(addr, Arc::new(crate::snapshot))
    }

    /// Binds `addr` serving snapshots from `provider` — the embedding
    /// hook for services that aggregate or filter their own registry
    /// view.
    pub fn bind_with(addr: &str, provider: SnapshotProvider) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".to_string())
            .spawn(move || accept_loop(listener, stop_flag, provider))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, provider: SnapshotProvider) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: endpoints are cheap and consumers scrape
                // serially; no per-connection thread churn.
                let _ = handle_connection(stream, &provider);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, provider: &SnapshotProvider) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let path = match read_request_path(&mut stream)? {
        Some(p) => p,
        None => {
            return respond(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        }
    };
    match path.as_str() {
        "/metrics" => {
            let body = crate::prometheus::render(&provider());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/trace/last.json" => {
            let body = crate::journal::export_chrome_trace(&crate::journal::journal_events());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Reads the request head (bounded) and extracts the path of a GET line.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        // Stop once the first line is complete; we ignore headers/body.
        if buf.windows(2).any(|w| w == b"\r\n") || buf.contains(&b'\n') {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Ok(None);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let first = head.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_health_metrics_and_404() {
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn custom_provider_is_served() {
        let provider: SnapshotProvider = Arc::new(|| Snapshot {
            counters: vec![("custom.provider.hits".into(), 9)],
            gauges: vec![],
            histograms: vec![],
        });
        let server = MetricsServer::bind_with("127.0.0.1:0", provider).expect("bind");
        let (_, body) = get(server.local_addr(), "/metrics");
        assert!(
            body.contains("loggrep_custom_provider_hits_total 9"),
            "{body}"
        );
    }

    #[test]
    fn malformed_request_is_rejected() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(b"BOGUS\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
}
