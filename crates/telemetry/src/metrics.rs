//! Lock-free metric primitives: counters, gauges, and power-of-two
//! histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (e.g. bytes resident in a cache).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` counts values whose bit length
/// is `i` (bucket 0 holds only zero), so 65 buckets cover all of `u64`.
pub const BUCKETS: usize = 65;

/// Lock-free histogram with power-of-two bucket boundaries.
///
/// Bucket `i` (for `i >= 1`) covers `[2^(i-1), 2^i - 1]`; bucket 0 covers
/// exactly `{0}`. Alongside the buckets it tracks exact `count`, `sum`,
/// `min`, and `max`, so means are exact and only quantiles are bucketed.
/// Suitable for both nanosecond latencies and byte sizes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a standalone (unregistered) histogram. Most callers want
    /// [`crate::histogram`], which registers a handle for snapshots; a
    /// standalone histogram suits local one-shot aggregation (quantiles
    /// over a batch of sizes, say) without polluting the registry.
    pub const fn new() -> Self {
        // `[AtomicU64::new(0); 65]` needs Copy; build via a const block.
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: its bit length (0 for zero).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    #[inline]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (individual loads are relaxed;
    /// concurrent recorders may be partially visible).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Owned copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, index = bit length of the value.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q * count`, clamped to the observed
    /// min/max. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Histogram::bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_match_index() {
        for i in 0..BUCKETS {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i, "upper bound of bucket {i}");
            if i > 0 && i < 64 {
                // The next value up belongs to the next bucket.
                assert_eq!(Histogram::bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        // Median lands in the bucket containing 3 ([2,3]).
        assert_eq!(s.quantile(0.5), 3);
        // Extremes clamp to observed min/max.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
