//! A std-only sampling profiler over the span stacks.
//!
//! Every thread that opens an armed span *publishes* its current stack
//! into a process-wide registry (its own slot, behind its own mutex —
//! contended only by the sampler itself). The [`Sampler`] is a background
//! thread that wakes at a configurable rate, reads the deepest span path
//! of every live thread, and tallies samples per path. Because span paths
//! are already `/`-joined stacks, one sample *is* a flamegraph frame: the
//! report renders directly as collapsed stacks.
//!
//! This attributes time spent *inside* long stages (e.g. the encode loop
//! of `compress/encode`) without instrumenting every inner loop — the
//! fraction of samples landing on a path estimates its share of wall
//! time. Overhead is bounded by design: the sampled threads pay one
//! uncontended mutex push/pop per span edge (paid whenever telemetry is
//! on), and the sampler thread does O(threads) work per tick, so at the
//! default 97 Hz the cost on the workload is well under the 5% budget
//! recorded in `BENCH_hotpath.json`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default sampling rate. A prime, so the sampler does not phase-lock
/// with millisecond-periodic work.
pub const DEFAULT_HZ: u32 = 97;

struct StackSlot {
    tid: u64,
    stack: Mutex<Vec<String>>,
}

fn slots() -> &'static Mutex<Vec<Arc<StackSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<StackSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_SLOT: Arc<StackSlot> = {
        let slot = Arc::new(StackSlot {
            tid: crate::journal::current_tid(),
            stack: Mutex::new(Vec::new()),
        });
        slots()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&slot));
        slot
    };
}

/// Publishes a span path onto this thread's sampler-visible stack
/// (called by [`crate::span`] and [`crate::context`] when armed).
#[inline]
pub(crate) fn publish_push(path: &str) {
    LOCAL_SLOT.with(|slot| {
        slot.stack
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(path.to_string());
    });
}

/// Removes a span path from this thread's published stack.
#[inline]
pub(crate) fn publish_pop(path: &str) {
    LOCAL_SLOT.with(|slot| {
        let mut stack = slot.stack.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = stack.iter().rposition(|p| p == path) {
            stack.remove(pos);
        }
    });
}

/// Reads every live thread's deepest published span path right now.
/// Returns `(tid, path)` pairs; threads with no active span are skipped.
/// This is the sampler's per-tick primitive, exposed for deterministic
/// tests and one-shot inspection.
pub fn sample_now() -> Vec<(u64, String)> {
    let slots: Vec<Arc<StackSlot>> = slots()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut out = Vec::new();
    for slot in slots {
        let stack = slot.stack.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(top) = stack.last() {
            out.push((slot.tid, top.clone()));
        }
    }
    out
}

/// Aggregated output of a sampling run.
#[derive(Debug, Clone, Default)]
pub struct SamplerReport {
    /// `(span path, samples)` sorted by descending sample count.
    pub samples: Vec<(String, u64)>,
    /// Total thread-samples taken (sum over `samples` counts).
    pub total_samples: u64,
    /// Ticks the sampler thread ran (a tick samples every thread once).
    pub ticks: u64,
    /// Wall time the sampler ran for.
    pub elapsed: Duration,
}

impl SamplerReport {
    /// Renders the report as flamegraph-collapsed stacks
    /// (`a;b;c <count>` per line, descending count).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, count) in &self.samples {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The fraction of samples that landed under `prefix` (path-prefix
    /// match, e.g. `"compress/encode"`). 0 when no samples were taken.
    pub fn fraction_under(&self, prefix: &str) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .samples
            .iter()
            .filter(|(p, _)| {
                p == prefix
                    || (p.starts_with(prefix)
                        && p.as_bytes().get(prefix.len()) == Some(&b'/'))
            })
            .map(|(_, n)| n)
            .sum();
        hits as f64 / self.total_samples as f64
    }
}

/// A running sampling profiler; stop it to collect the report.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    ticks: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<HashMap<String, u64>>>,
    started: Instant,
}

impl Sampler {
    /// Starts a background sampler at `hz` samples per second
    /// (`0` = [`DEFAULT_HZ`]).
    pub fn start(hz: u32) -> Self {
        let hz = if hz == 0 { DEFAULT_HZ } else { hz };
        let period = Duration::from_secs_f64(1.0 / f64::from(hz));
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let tick_count = Arc::clone(&ticks);
        let handle = std::thread::Builder::new()
            .name("telemetry-sampler".to_string())
            .spawn(move || {
                let mut tally: HashMap<String, u64> = HashMap::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    for (_tid, path) in sample_now() {
                        *tally.entry(path).or_insert(0) += 1;
                    }
                    tick_count.fetch_add(1, Ordering::Relaxed);
                }
                tally
            })
            .expect("spawn sampler thread");
        Self {
            stop,
            ticks,
            handle: Some(handle),
            started: Instant::now(),
        }
    }

    /// Stops the sampler and returns its aggregated report.
    pub fn stop(mut self) -> SamplerReport {
        self.stop.store(true, Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let tally = match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => HashMap::new(),
        };
        let total_samples: u64 = tally.values().sum();
        let mut samples: Vec<(String, u64)> = tally.into_iter().collect();
        samples.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        SamplerReport {
            samples,
            total_samples,
            ticks: self.ticks.load(Ordering::Relaxed),
            elapsed,
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_stacks_are_sampled() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        let tid = crate::journal::current_tid();
        {
            let _a = crate::span("sampler.test.stage");
            let _b = crate::span("leaf");
            let samples = sample_now();
            let mine = samples
                .iter()
                .find(|(t, _)| *t == tid)
                .expect("own thread sampled");
            assert_eq!(mine.1, "sampler.test.stage/leaf");
        }
        // After the spans drop the stack is empty again.
        assert!(sample_now().iter().all(|(t, _)| *t != tid));
        crate::set_enabled(false);
    }

    #[test]
    fn contexts_publish_for_attribution() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        std::thread::spawn(|| {
            let _ctx = crate::context("sampler.test.ctx");
            let _leaf = crate::span("leaf");
            let samples = sample_now();
            assert!(
                samples
                    .iter()
                    .any(|(_, p)| p == "sampler.test.ctx/leaf"),
                "{samples:?}"
            );
        })
        .join()
        .unwrap();
        crate::set_enabled(false);
    }

    #[test]
    fn sampler_thread_collects_and_reports() {
        let _guard = crate::enable_lock();
        crate::set_enabled(true);
        let sampler = Sampler::start(500);
        {
            let _span = crate::span("sampler.test.busy");
            // Busy-wait long enough for several ticks at 500 Hz.
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(60) {
                std::hint::spin_loop();
            }
        }
        let report = sampler.stop();
        crate::set_enabled(false);
        assert!(report.ticks > 0);
        assert!(
            report
                .samples
                .iter()
                .any(|(p, _)| p == "sampler.test.busy"),
            "missing busy span in {:?}",
            report.samples
        );
        assert!(report.fraction_under("sampler.test.busy") > 0.0);
        let collapsed = report.collapsed();
        assert!(collapsed.contains("sampler.test.busy "), "{collapsed}");
    }

    #[test]
    fn report_fraction_and_collapsed_format() {
        let report = SamplerReport {
            samples: vec![
                ("compress/encode".into(), 6),
                ("compress/encode/lz".into(), 2),
                ("query/plan".into(), 2),
            ],
            total_samples: 10,
            ticks: 10,
            elapsed: Duration::from_millis(100),
        };
        assert!((report.fraction_under("compress/encode") - 0.8).abs() < 1e-9);
        assert!((report.fraction_under("query") - 0.2).abs() < 1e-9);
        assert_eq!(report.fraction_under("compress/enc"), 0.0, "no partial-token match");
        assert_eq!(
            report.collapsed(),
            "compress;encode 6\ncompress;encode;lz 2\nquery;plan 2\n"
        );
    }
}
