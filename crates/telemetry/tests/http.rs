//! Scrapes the metrics endpoint over a real TCP socket and validates the
//! Prometheus text exposition line by line (the curl-free smoke test CI
//! runs).
//!
//! One test function: the registry and journal are process-global, and
//! this integration binary owns its process.

use std::io::{Read, Write};
use std::net::TcpStream;

fn request(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {response:?}"));
    (head.to_string(), body.to_string())
}

#[test]
fn scrape_and_parse_the_exposition() {
    telemetry::set_enabled(true);
    telemetry::set_journal_enabled(true);
    telemetry::reset();
    telemetry::clear_journal();

    // Give the endpoints real data: spans, a counter, and a gauge.
    {
        let _t = telemetry::trace_scope();
        let _outer = telemetry::span("scrape/outer");
        let _inner = telemetry::span("scrape/outer/inner");
        telemetry::counter!("scrape.hits", 3);
        telemetry::gauge("scrape.depth").set(7);
    }

    let mut server = telemetry::MetricsServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // /healthz
    let (head, body) = request(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // /metrics: well-formed Prometheus 0.0.4 text exposition.
    let (head, body) = request(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {head}"
    );
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples += 1;
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line `{line}`"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric value in `{line}`"));
        let name = name_part.split('{').next().unwrap();
        assert!(name.starts_with("loggrep_"), "unprefixed metric `{line}`");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name `{name}`"
        );
        if let Some(labels) = name_part.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "bad label block in `{line}`"
                );
            }
        }
    }
    assert!(samples > 0, "no samples in exposition:\n{body}");
    assert!(body.contains("# TYPE loggrep_scrape_hits_total counter"), "{body}");
    assert!(body.contains("loggrep_scrape_hits_total 3"), "{body}");
    assert!(body.contains("loggrep_scrape_depth 7"), "{body}");
    // Span histograms surface as summaries with the three quantiles.
    for q in ["0.5", "0.95", "0.99"] {
        assert!(
            body.contains(&format!("quantile=\"{q}\"")),
            "missing quantile {q}:\n{body}"
        );
    }

    // /trace/last.json: parseable Chrome trace with our spans in it.
    let (head, body) = request(addr, "/trace/last.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let doc = telemetry::json::parse(&body).unwrap_or_else(|e| panic!("bad trace JSON: {e}"));
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    assert!(
        events.iter().any(|e| e.str("name") == Some("scrape/outer")),
        "recorded span missing from /trace/last.json"
    );

    // Unknown paths 404; garbage requests 400 — neither kills the server.
    let (head, _) = request(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"BOGUS\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let (head, _) = request(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "server died after bad request");

    server.shutdown();
    telemetry::set_journal_enabled(false);
    telemetry::set_enabled(false);
}
