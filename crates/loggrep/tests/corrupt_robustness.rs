//! Deterministic corrupt-archive mutation suite.
//!
//! Three mutation families over one serialized CapsuleBox:
//!
//! 1. **truncation** at every cut point — `from_bytes` must return an error;
//! 2. **whole-file bit flips** — any single flipped bit must be caught by
//!    the CRC-32 trailer;
//! 3. **body corruption with a recomputed CRC** (bit flips and zero-fill),
//!    which sails past the checksum and exercises the structural
//!    validation behind it — opening, decompressing every capsule and
//!    querying must never panic, and a mutant that still opens must
//!    report the original line count (`total_lines` is load-bearing for
//!    the line index, so lying about it is not an acceptable outcome).
//!
//! All randomness is a seeded xorshift, so failures reproduce exactly.

use loggrep::wire::crc32;
use loggrep::{Archive, LogGrep, LogGrepConfig};

/// A log mixing real-pattern (block ids, IPs), nominal-pattern (enum-like
/// status tokens) and plain content, so the box contains every vector kind.
fn sample_log(lines: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..lines {
        let line = match i % 4 {
            0 => format!(
                "2021-01-{:02} INFO blk_17{:05} replicated to 11.187.{}.{}",
                i % 28 + 1,
                i,
                i % 250,
                (i * 7) % 250
            ),
            1 => format!(
                "T{} state: {}#16{:02}",
                100 + i,
                if i % 7 == 0 { "ERR" } else { "SUC" },
                i % 100
            ),
            2 => format!(
                "ERROR quota exceeded user:{} limit={}",
                ["alice", "bob", "carol"][i % 3],
                (i % 4) * 100
            ),
            _ => format!("write to file:/tmp/1FF8{:04X}.log code={}", i * 31 % 65536, i % 3),
        };
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

fn archive_bytes() -> (Vec<u8>, u32) {
    let raw = sample_log(240);
    let engine = LogGrep::new(LogGrepConfig::default());
    let boxed = engine.compress(&raw).unwrap();
    let lines = boxed.total_lines;
    (boxed.to_bytes(), lines)
}

/// Deterministic xorshift64* PRNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const QUERIES: &[&str] = &["read", "ERROR", "user:alice and limit=300", "blk_17", "SUC#16"];

/// Opens a mutant and, if it opens at all, drives every decode path that a
/// reader would hit. Returns whether it opened. Panics (failing the test)
/// only if a structurally-accepted mutant lies about its line count.
fn exercise(bytes: &[u8], original_lines: u32) -> bool {
    let Ok(archive) = Archive::from_bytes(bytes) else {
        return false;
    };
    assert_eq!(
        archive.total_lines(),
        original_lines,
        "mutant opened with a different line count"
    );
    let boxed = archive.capsule_box();
    for id in 0..boxed.capsules.len() as u32 {
        let _ = boxed.decompress_capsule(id);
    }
    for q in QUERIES {
        let _ = archive.query(q);
    }
    let _ = archive.reconstruct_all();
    true
}

#[test]
fn truncation_at_every_cut_is_an_error() {
    let (bytes, _) = archive_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Archive::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} of {} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn single_bit_flips_are_caught_by_the_crc() {
    let (bytes, _) = archive_bytes();
    let mut rng = XorShift(0x1091_7bfe_dead_beef);
    let mut mutant = bytes.clone();
    // A sampled sweep keeps the quadratic CRC cost in check; the guarantee
    // is positional anyway (a single flipped bit always changes the CRC).
    for _ in 0..400 {
        let off = rng.below(bytes.len());
        let bit = 1u8 << rng.below(8);
        mutant[off] ^= bit;
        assert!(
            Archive::from_bytes(&mutant).is_err(),
            "bit flip at byte {off} mask {bit:#x} was accepted"
        );
        mutant[off] ^= bit;
    }
    assert_eq!(mutant, bytes, "mutation sweep must restore the original");
}

/// Replaces the 4-byte CRC trailer so the mutation is only visible to the
/// structural validators.
fn restamp(mutant: &mut [u8]) {
    let body_len = mutant.len() - 4;
    let crc = crc32(&mutant[..body_len]).to_le_bytes();
    mutant[body_len..].copy_from_slice(&crc);
}

#[test]
fn body_bit_flips_with_valid_crc_never_panic_or_lie() {
    let (bytes, lines) = archive_bytes();
    let mut rng = XorShift(0x5eed_0fc0_ffee);
    let mut opened = 0u32;
    for _ in 0..150 {
        let mut mutant = bytes.clone();
        let off = rng.below(bytes.len() - 4);
        mutant[off] ^= 1u8 << rng.below(8);
        restamp(&mut mutant);
        if exercise(&mutant, lines) {
            opened += 1;
        }
    }
    // Most flips land in the blob or a non-load-bearing field, so a decent
    // share of mutants must still open — otherwise `exercise` tested nothing.
    assert!(opened > 0, "no mutant survived validation; suite is vacuous");
}

#[test]
fn body_zero_fill_with_valid_crc_never_panics_or_lies() {
    let (bytes, lines) = archive_bytes();
    let mut rng = XorShift(0xfeed_face_cafe);
    for _ in 0..60 {
        let mut mutant = bytes.clone();
        let start = rng.below(bytes.len() - 4);
        let len = 1 + rng.below(64);
        let end = (start + len).min(bytes.len() - 4);
        mutant[start..end].fill(0);
        restamp(&mut mutant);
        exercise(&mutant, lines);
    }
}
