//! Property-based end-to-end tests: random structured logs and random
//! queries must agree with the line-by-line oracle under every
//! configuration, and reconstruction must always be exact.
//!
//! Generators and the oracle are shared via [`difftest::strategies`]; the
//! oracle is the harness's independent evaluator, so the engine and its
//! reference never share matching code.

use difftest::strategies::{log_strategy, oracle_lines, query_strategy};
use loggrep::{LogGrep, LogGrepConfig};
use proptest::prelude::*;

/// Template-ish fragments, so the parser finds structure some of the time
/// but not always.
const WORDS: &[&str] = &[
    "read",
    "write",
    "ERROR",
    "INFO",
    "[a-z]{1,6}",
    "[0-9]{1,5}",
    "[0-9A-F]{2,6}",
    "blk_",
    "state:",
    "/tmp/x",
];

const TERMS: &[&str] = &[
    "read",
    "ERROR",
    "blk_",
    "state",
    "[a-z]{1,3}",
    "[0-9]{1,3}",
    "1*",
    "b*k",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_logs_random_queries_match_oracle(
        log in log_strategy(WORDS, 8, 1..120),
        query_text in query_strategy(TERMS, 3),
    ) {
        let raw = log.as_bytes();
        let Some(want) = oracle_lines(raw, &query_text) else {
            return Ok(()); // e.g. stars-only terms are rejected by the parser.
        };
        for config in [LogGrepConfig::default(), LogGrepConfig::sp(), LogGrepConfig::without_fixed()] {
            let engine = LogGrep::new(config);
            let archive = engine.compress_to_archive(raw).expect("clean input");
            let got = archive.query(&query_text).expect("valid query");
            prop_assert_eq!(&got.lines, &want, "query `{}`", query_text);
        }
    }

    #[test]
    fn random_logs_reconstruct_exactly(log in log_strategy(WORDS, 8, 1..120)) {
        let raw = log.as_bytes();
        let want: Vec<Vec<u8>> = loggrep::engine::split_lines(raw)
            .into_iter()
            .map(|l| l.to_vec())
            .collect();
        let engine = LogGrep::new(LogGrepConfig::default());
        let archive = engine.compress_to_archive(raw).expect("clean input");
        prop_assert_eq!(archive.reconstruct_all().expect("reconstruct"), want);
    }

    #[test]
    fn serialization_roundtrip_random(log in log_strategy(WORDS, 8, 1..120)) {
        let raw = log.as_bytes();
        let engine = LogGrep::new(LogGrepConfig::default());
        let boxed = engine.compress(raw).expect("clean input");
        let bytes = boxed.to_bytes();
        let reopened = loggrep::CapsuleBox::from_bytes(&bytes).expect("own bytes");
        prop_assert_eq!(reopened.total_lines, boxed.total_lines);
        prop_assert_eq!(reopened.to_bytes(), bytes);
    }
}

#[test]
fn corrupt_boxes_never_panic() {
    // Byte-level fuzzing of the container: every single-byte mutation and
    // truncation must produce Ok or Err, never a panic, and opened archives
    // must keep queries panic-free too.
    let spec_lines = b"a 1 x\nb 2 y\na 3 x\nb 4 y\na 5 x\n";
    let engine = LogGrep::new(LogGrepConfig::default());
    let bytes = engine.compress(spec_lines).unwrap().to_bytes();

    for cut in 0..bytes.len() {
        let _ = loggrep::Archive::from_bytes(&bytes[..cut]);
    }
    let mut mutated = bytes.clone();
    for i in 0..mutated.len() {
        for delta in [1u8, 0x80] {
            mutated[i] = mutated[i].wrapping_add(delta);
            if let Ok(archive) = loggrep::Archive::from_bytes(&mutated) {
                // Structurally valid but possibly semantically corrupt:
                // queries must error gracefully, not panic.
                let _ = archive.query("a");
                let _ = archive.reconstruct_all();
            }
            mutated[i] = bytes[i];
        }
    }
}
