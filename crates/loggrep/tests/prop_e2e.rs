//! Property-based end-to-end tests: random structured logs and random
//! queries must agree with the line-by-line oracle under every
//! configuration, and reconstruction must always be exact.

use loggrep::query::lang::Query;
use loggrep::{LogGrep, LogGrepConfig};
use logparse::DEFAULT_DELIMS;
use proptest::prelude::*;

/// Strategy: a log line assembled from template-ish fragments, so that the
/// parser finds structure some of the time but not always.
fn line_strategy() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("read".to_string()),
        Just("write".to_string()),
        Just("ERROR".to_string()),
        Just("INFO".to_string()),
        "[a-z]{1,6}",
        "[0-9]{1,5}",
        "[0-9A-F]{2,6}",
        Just("blk_".to_string()),
        Just("state:".to_string()),
        Just("/tmp/x".to_string()),
    ];
    proptest::collection::vec(word, 1..8).prop_map(|words| words.join(" "))
}

fn log_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(line_strategy(), 1..120).prop_map(|lines| {
        let mut s = lines.join("\n");
        s.push('\n');
        s
    })
}

fn query_strategy() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        Just("read".to_string()),
        Just("ERROR".to_string()),
        Just("blk_".to_string()),
        Just("state".to_string()),
        "[a-z]{1,3}",
        "[0-9]{1,3}",
        Just("1*".to_string()),
        Just("b*k".to_string()),
    ];
    let op = prop_oneof![
        Just(" and ".to_string()),
        Just(" or ".to_string()),
        Just(" not ".to_string())
    ];
    (term.clone(), proptest::collection::vec((op, term), 0..3)).prop_map(|(first, rest)| {
        let mut q = first;
        for (op, t) in rest {
            q.push_str(&op);
            q.push_str(&t);
        }
        q
    })
}

fn oracle(raw: &[u8], query: &Query) -> Vec<Vec<u8>> {
    loggrep::engine::split_lines(raw)
        .into_iter()
        .filter(|l| query.expr.matches_line(l, DEFAULT_DELIMS))
        .map(|l| l.to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_logs_random_queries_match_oracle(
        log in log_strategy(),
        query_text in query_strategy(),
    ) {
        let raw = log.as_bytes();
        let query = match Query::parse(&query_text) {
            Ok(q) => q,
            Err(_) => return Ok(()), // e.g. "1*" alone can compile; stars-only rejected.
        };
        let want = oracle(raw, &query);
        for config in [LogGrepConfig::default(), LogGrepConfig::sp(), LogGrepConfig::without_fixed()] {
            let engine = LogGrep::new(config);
            let archive = engine.compress_to_archive(raw).expect("clean input");
            let got = archive.query(&query_text).expect("valid query");
            prop_assert_eq!(&got.lines, &want, "query `{}`", query_text);
        }
    }

    #[test]
    fn random_logs_reconstruct_exactly(log in log_strategy()) {
        let raw = log.as_bytes();
        let want: Vec<Vec<u8>> = loggrep::engine::split_lines(raw)
            .into_iter()
            .map(|l| l.to_vec())
            .collect();
        let engine = LogGrep::new(LogGrepConfig::default());
        let archive = engine.compress_to_archive(raw).expect("clean input");
        prop_assert_eq!(archive.reconstruct_all().expect("reconstruct"), want);
    }

    #[test]
    fn serialization_roundtrip_random(log in log_strategy()) {
        let raw = log.as_bytes();
        let engine = LogGrep::new(LogGrepConfig::default());
        let boxed = engine.compress(raw).expect("clean input");
        let bytes = boxed.to_bytes();
        let reopened = loggrep::CapsuleBox::from_bytes(&bytes).expect("own bytes");
        prop_assert_eq!(reopened.total_lines, boxed.total_lines);
        prop_assert_eq!(reopened.to_bytes(), bytes);
    }
}

#[test]
fn corrupt_boxes_never_panic() {
    // Byte-level fuzzing of the container: every single-byte mutation and
    // truncation must produce Ok or Err, never a panic, and opened archives
    // must keep queries panic-free too.
    let spec_lines = b"a 1 x\nb 2 y\na 3 x\nb 4 y\na 5 x\n";
    let engine = LogGrep::new(LogGrepConfig::default());
    let bytes = engine.compress(spec_lines).unwrap().to_bytes();

    for cut in 0..bytes.len() {
        let _ = loggrep::Archive::from_bytes(&bytes[..cut]);
    }
    let mut mutated = bytes.clone();
    for i in 0..mutated.len() {
        for delta in [1u8, 0x80] {
            mutated[i] = mutated[i].wrapping_add(delta);
            if let Ok(archive) = loggrep::Archive::from_bytes(&mutated) {
                // Structurally valid but possibly semantically corrupt:
                // queries must error gracefully, not panic.
                let _ = archive.query("a");
                let _ = archive.reconstruct_all();
            }
            mutated[i] = bytes[i];
        }
    }
}
