//! A deliberately tiny end-to-end roundtrip, sized so `cargo miri test
//! --test miri_roundtrip` finishes in reasonable time. CI runs it under
//! Miri when a nightly toolchain with Miri is available (see
//! `scripts/ci.sh`); it also runs as a plain test everywhere else.

use loggrep::{Archive, LogGrep, LogGrepConfig};

#[test]
fn tiny_box_roundtrips_and_answers_queries() {
    let raw = b"T1 state: SUC#1601\nT2 state: ERR#1602\nT3 state: SUC#1603\n";
    let engine = LogGrep::new(LogGrepConfig::default());
    let boxed = engine.compress(raw).unwrap();
    let bytes = boxed.to_bytes();
    let archive = Archive::from_bytes(&bytes).unwrap();
    assert_eq!(archive.total_lines(), 3);
    let hits = archive.query("ERR#16").unwrap();
    assert_eq!(hits.lines, vec![b"T2 state: ERR#1602".to_vec()]);
    let all = archive.reconstruct_all().unwrap();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0], b"T1 state: SUC#1601");
}
