//! Parallelism must be invisible in the output: compressing with N worker
//! threads yields the byte-identical CapsuleBox a serial run produces, and a
//! parallel query returns the same lines — and does the same amount of
//! selective-decompression work — as a serial one.
//!
//! Both properties hold by construction (capsule ids are assigned at
//! submission and committed in submission order; query workers share the
//! per-Capsule payload caches, decompressing each Capsule exactly once);
//! these tests pin the construction down across the full workloads catalog.

use loggrep::{LogGrep, LogGrepConfig};

/// Per-log raw size for the catalog sweeps: big enough to exercise the
/// parallel paths (several groups, thousands of rows), small enough that a
/// 37-log sweep stays fast.
const LOG_BYTES: usize = 48 * 1024;

fn engine(threads: usize) -> LogGrep {
    LogGrep::new(LogGrepConfig {
        threads,
        ..LogGrepConfig::default()
    })
}

#[test]
fn parallel_compression_is_byte_identical_to_serial() {
    for spec in workloads::all_logs() {
        let raw = spec.generate(11, LOG_BYTES);
        let serial = engine(1).compress(&raw).unwrap().to_bytes();
        for threads in [2, 4] {
            let parallel = engine(threads).compress(&raw).unwrap().to_bytes();
            assert_eq!(
                serial, parallel,
                "{}: {threads}-thread archive differs from serial",
                spec.name
            );
        }
    }
}

#[test]
fn parallel_query_matches_serial_results_and_work() {
    for spec in workloads::all_logs() {
        let raw = spec.generate(23, LOG_BYTES);
        let serial_engine = engine(1);
        let serial = serial_engine.open(serial_engine.compress(&raw).unwrap());
        let parallel_engine = engine(4);
        let parallel = parallel_engine.open(parallel_engine.compress(&raw).unwrap());
        for command in &spec.queries {
            let s = serial.query(command).unwrap();
            let p = parallel.query(command).unwrap();
            assert_eq!(
                s.line_numbers, p.line_numbers,
                "{}: `{command}` line numbers differ",
                spec.name
            );
            assert_eq!(s.lines, p.lines, "{}: `{command}` lines differ", spec.name);
            assert_eq!(
                s.stats.capsules_decompressed, p.stats.capsules_decompressed,
                "{}: `{command}` did different decompression work",
                spec.name
            );
        }
    }
}

#[test]
fn wildcard_scan_is_deterministic_across_thread_counts() {
    // A wildcard search verifies candidate rows by reconstruction, so this
    // drives the heaviest parallel path: fan-out over groups plus chunked
    // reconstruct. `wor*er` matches (nearly) every Log C line.
    let spec = workloads::by_name("Log C").unwrap();
    let raw = spec.generate(7, 96 * 1024);
    let serial_engine = engine(1);
    let serial = serial_engine.open(serial_engine.compress(&raw).unwrap());
    let s = serial.query("wor*er").unwrap();
    assert!(!s.lines.is_empty());
    for threads in [2, 4, 8] {
        let e = engine(threads);
        let a = e.open(e.compress(&raw).unwrap());
        let p = a.query("wor*er").unwrap();
        assert_eq!(s.line_numbers, p.line_numbers, "{threads} threads");
        assert_eq!(s.lines, p.lines, "{threads} threads");
        assert_eq!(
            s.stats.capsules_decompressed, p.stats.capsules_decompressed,
            "{threads} threads"
        );
    }
}
