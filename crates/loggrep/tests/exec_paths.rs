//! Targeted tests for the less-traveled execution paths of §5: planner
//! overflow, large nominal match sets, outlier scanning, and the wildcard
//! verification path.

use loggrep::query::lang::Query;
use loggrep::{LogGrep, LogGrepConfig};
use logparse::DEFAULT_DELIMS;

fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
    let q = Query::parse(command).unwrap();
    loggrep::engine::split_lines(raw)
        .into_iter()
        .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
        .map(|l| l.to_vec())
        .collect()
}

fn check(raw: &[u8], config: LogGrepConfig, commands: &[&str]) {
    let engine = LogGrep::new(config);
    let archive = engine.compress_to_archive(raw).unwrap();
    for q in commands {
        assert_eq!(archive.query(q).unwrap().lines, oracle(raw, q), "query `{q}`");
    }
}

/// A repetitive low-information alphabet drives the planner toward its
/// conjunction budget (overflow → brute-force scan).
#[test]
fn planner_overflow_falls_back_correctly() {
    let mut raw = Vec::new();
    for i in 0..300 {
        // Values made of 'a' runs split by 'a'-adjacent constants maximize
        // possible-match ambiguity.
        raw.extend_from_slice(
            format!(
                "{} aa{} aaa{}aa\n",
                ["aa", "aaa", "aaaa"][i % 3],
                "a".repeat(i % 5),
                "a".repeat((i / 3) % 4),
            )
            .as_bytes(),
        );
    }
    check(
        &raw,
        LogGrepConfig::default(),
        &["aaaa", "aaaaaa", "aa aaa", "aaaaaaaaaa"],
    );
}

/// Many distinct dictionary values matching one keyword exercises the
/// membership-set index scan (> 8 matched indices).
#[test]
fn nominal_large_match_set() {
    let mut raw = Vec::new();
    for i in 0..2000 {
        // 40 distinct codes, all containing "4": a query for "code:4" must
        // collect a large matched-index set.
        raw.extend_from_slice(format!("evt code:4{:02} host h{}\n", i % 40, i % 3).as_bytes());
    }
    check(
        &raw,
        LogGrepConfig::default(),
        &["code:4", "code:41", "code:439", "code:44 and host"],
    );
}

/// Values that defeat the tree expander land in the outlier Capsule, which
/// every query must scan.
#[test]
fn outliers_are_always_found() {
    let mut raw = Vec::new();
    for i in 0..500 {
        let v = if i % 97 == 0 {
            // Structure-breaking values (no common pattern).
            format!("?!odd{}", i)
        } else {
            format!("blk_{:06x}", i * 7919)
        };
        raw.extend_from_slice(format!("store {} ok\n", v).as_bytes());
    }
    check(
        &raw,
        LogGrepConfig::default(),
        &["?!odd97", "odd", "blk_00d", "?!odd and ok"],
    );
}

/// Wildcards force candidate verification by reconstruction; stats must
/// show it and results must stay exact.
#[test]
fn wildcard_verification_path() {
    let mut raw = Vec::new();
    for i in 0..400 {
        raw.extend_from_slice(
            format!("fetch /api/v{}/items/{:04} status={}\n", i % 3, i, 200 + (i % 2) * 300)
                .as_bytes(),
        );
    }
    let engine = LogGrep::new(LogGrepConfig::default());
    let archive = engine.compress_to_archive(&raw).unwrap();
    for q in ["/api/v1/*", "status=5*", "items/00*9", "/api/*/items"] {
        let got = archive.query(q).unwrap();
        assert_eq!(got.lines, oracle(&raw, q), "query `{q}`");
        if !got.lines.is_empty() {
            assert!(got.stats.rows_verified >= got.lines.len(), "query `{q}`");
        }
    }
}

/// `not` with an empty left side must not evaluate (or fail on) the right.
#[test]
fn not_with_empty_left_short_circuits() {
    let raw = b"x 1\nx 2\ny 3\n";
    let engine = LogGrep::new(LogGrepConfig::default());
    let archive = engine.compress_to_archive(raw).unwrap();
    let r = archive.query("absent-term not x").unwrap();
    assert!(r.lines.is_empty());
    assert_eq!(r.stats.capsules_decompressed, 0);
}

/// Empty-value sub-variables (a pattern ending in a variable that is
/// sometimes empty) round-trip and match correctly.
#[test]
fn empty_subvariable_values() {
    let mut raw = Vec::new();
    for i in 0..300 {
        let suffix = if i % 3 == 0 { String::new() } else { format!("{i}") };
        raw.extend_from_slice(format!("tag id=X{suffix} end\n").as_bytes());
    }
    check(
        &raw,
        LogGrepConfig::default(),
        &["id=X end", "id=X7", "id=X29 end", "id=X299"],
    );
}

/// Queries whose keyword equals an entire line and line-boundary content.
#[test]
fn whole_line_and_boundary_keywords() {
    let raw = b"alpha beta\ngamma delta\nalpha delta\n";
    check(
        raw,
        LogGrepConfig::default(),
        &["alpha beta", "gamma delta", "beta", "delta", "alpha delta"],
    );
}

/// The decompression arena recycles payload buffers: a query parks its
/// decompressed Capsules on the archive, repeat queries (and the
/// full-reconstruction path) reuse that storage, and results are identical
/// either way.
#[test]
fn arena_recycles_buffers_across_queries() {
    let mut raw = Vec::new();
    for i in 0..500 {
        raw.extend_from_slice(format!("job {} state S{} took {}ms\n", i, i % 7, i * 3 % 97).as_bytes());
    }
    let engine = LogGrep::new(LogGrepConfig::default());
    let archive = engine.compress_to_archive(&raw).unwrap();
    assert_eq!(archive.arena_buffers(), 0, "arena starts empty");

    let first = archive.query("S3").unwrap();
    assert_eq!(first.lines, oracle(&raw, "S3"));
    let parked = archive.arena_buffers();
    assert!(parked > 0, "query should park its payload buffers");

    archive.clear_caches();
    let second = archive.query("S3").unwrap();
    assert_eq!(first.lines, second.lines);
    assert!(archive.arena_buffers() >= parked, "repeat query must recycle, not leak");

    // The full-decompress path shares the same arena.
    let all = archive.reconstruct_all().unwrap();
    assert_eq!(all.len(), 500);
    assert!(archive.arena_buffers() >= parked);
}
