//! End-to-end correctness: for every configuration (full, SP, each §6.3
//! ablation), query results must equal a naive line-by-line oracle, and
//! reconstruction must be byte-exact.

use loggrep::query::lang::Query;
use loggrep::{Archive, LogGrep, LogGrepConfig};
use logparse::DEFAULT_DELIMS;

/// A deterministic synthetic log mixing real-pattern, nominal-pattern and
/// unstructured content.
fn sample_log(lines: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..lines {
        let line = match i % 5 {
            0 => format!(
                "2021-01-{:02} 10:{:02}:{:02} INFO blk_17{:05} replicated to 11.187.{}.{}",
                i % 28 + 1,
                (i / 60) % 60,
                i % 60,
                i,
                i % 250,
                (i * 7) % 250
            ),
            1 => format!("T{} bk.{:02X}.{} read", 100 + i, i % 256, i % 16),
            2 => format!(
                "T{} state: {}#16{:02}",
                100 + i,
                if i % 7 == 0 { "ERR" } else { "SUC" },
                i % 100
            ),
            3 => format!(
                "ERROR quota exceeded user:{} limit={}",
                ["alice", "bob", "carol"][i % 3],
                (i % 4) * 100
            ),
            _ => format!(
                "write to file:/root/usr/admin/1FF8{:04X}.log code={}",
                i * 31 % 65536,
                i % 3
            ),
        };
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

fn oracle(raw: &[u8], command: &str) -> Vec<Vec<u8>> {
    let q = Query::parse(command).unwrap();
    loggrep::engine::split_lines(raw)
        .into_iter()
        .filter(|l| q.expr.matches_line(l, DEFAULT_DELIMS))
        .map(|l| l.to_vec())
        .collect()
}

fn queries() -> Vec<&'static str> {
    vec![
        "read",
        "ERROR",
        "ERR#16",
        "state: SUC",
        "blk_17",
        "user:alice",
        "user:alice and limit=300",
        "ERROR not user:bob",
        "read or ERROR",
        "11.187.49",
        "1FF8",
        "file:/root/usr/admin",
        "code=2",
        "replicated to 11.187.*",
        "user:*e",
        "bk.*.5 and read",
        "zzz-no-match-zzz",
        "ERR#16 or blk_1700007 not ERROR",
        "T10",
        "0",
    ]
}

fn configs() -> Vec<(&'static str, LogGrepConfig)> {
    vec![
        ("full", LogGrepConfig::default()),
        ("sp", LogGrepConfig::sp()),
        ("w/o real", LogGrepConfig::without_real()),
        ("w/o nomi", LogGrepConfig::without_nominal()),
        ("w/o stamp", LogGrepConfig::without_stamps()),
        ("w/o fixed", LogGrepConfig::without_fixed()),
        ("w/o cache", LogGrepConfig::without_cache()),
    ]
}

#[test]
fn query_results_match_oracle_across_configs() {
    let raw = sample_log(600);
    for (name, config) in configs() {
        let engine = LogGrep::new(config);
        let archive = engine.compress_to_archive(&raw).unwrap();
        for q in queries() {
            let got = archive.query(q).unwrap();
            let want = oracle(&raw, q);
            assert_eq!(
                got.lines, want,
                "config `{name}` query `{q}`: got {} lines, want {}",
                got.lines.len(),
                want.len()
            );
        }
    }
}

#[test]
fn reconstruction_is_byte_exact() {
    let raw = sample_log(400);
    let lines: Vec<&[u8]> = loggrep::engine::split_lines(&raw);
    for (name, config) in configs() {
        let engine = LogGrep::new(config);
        let archive = engine.compress_to_archive(&raw).unwrap();
        let got = archive.reconstruct_all().unwrap();
        assert_eq!(got.len(), lines.len(), "config `{name}`");
        for (i, (g, w)) in got.iter().zip(&lines).enumerate() {
            assert_eq!(g, w, "config `{name}` line {i}");
        }
    }
}

#[test]
fn serialization_roundtrip_preserves_queries() {
    let raw = sample_log(300);
    let engine = LogGrep::new(LogGrepConfig::default());
    let boxed = engine.compress(&raw).unwrap();
    let bytes = boxed.to_bytes();
    let archive = Archive::from_bytes(&bytes).unwrap();
    for q in ["read", "ERROR not user:bob", "blk_17"] {
        assert_eq!(archive.query(q).unwrap().lines, oracle(&raw, q), "query `{q}`");
    }
}

#[test]
fn query_cache_returns_identical_results() {
    let raw = sample_log(200);
    let engine = LogGrep::new(LogGrepConfig::default());
    let archive = engine.compress_to_archive(&raw).unwrap();
    let first = archive.query("ERROR and user:alice").unwrap();
    assert!(!first.stats.cache_hit);
    let second = archive.query("ERROR and user:alice").unwrap();
    assert!(second.stats.cache_hit);
    assert_eq!(first.lines, second.lines);
}

#[test]
fn compression_ratio_beats_plain_deflate_on_structured_logs() {
    use codec::Codec;
    let raw = sample_log(4000);
    let engine = LogGrep::new(LogGrepConfig::default());
    let (boxed, stats) = engine.compress_with_stats(&raw).unwrap();
    let gzip_len = codec::Deflate::default().compress(&raw).len();
    assert!(
        (boxed.compressed_size() as f64) < gzip_len as f64 * 1.15,
        "loggrep {} should be near/below gzip {}",
        boxed.compressed_size(),
        gzip_len
    );
    assert!(stats.ratio() > 5.0, "ratio {}", stats.ratio());
}

#[test]
fn stamps_reduce_decompression_work() {
    let raw = sample_log(2000);
    let with = LogGrep::new(LogGrepConfig::default())
        .compress_to_archive(&raw)
        .unwrap();
    let without = LogGrep::new(LogGrepConfig::without_stamps())
        .compress_to_archive(&raw)
        .unwrap();
    // A keyword whose type mask clashes with most capsules.
    let q = "ERR#1623";
    let a = with.query(q).unwrap();
    let b = without.query(q).unwrap();
    assert_eq!(a.lines, b.lines);
    assert!(
        a.stats.capsules_decompressed <= b.stats.capsules_decompressed,
        "stamps should not increase work: {} vs {}",
        a.stats.capsules_decompressed,
        b.stats.capsules_decompressed
    );
}

#[test]
fn alternate_packer_codecs_work_end_to_end() {
    // The Packer's second-stage codec is configurable (§3 uses LZMA; the
    // offline tier would pick the PPM-class codec).
    let raw = sample_log(300);
    for codec_name in ["deflate", "fastlz", "cm1", "store"] {
        let config = LogGrepConfig {
            codec_name: codec_name.to_string(),
            ..LogGrepConfig::default()
        };
        let engine = LogGrep::new(config);
        let archive = engine.compress_to_archive(&raw).unwrap();
        for q in ["read", "ERROR not user:bob"] {
            assert_eq!(
                archive.query(q).unwrap().lines,
                oracle(&raw, q),
                "codec {codec_name} query `{q}`"
            );
        }
    }
}

#[test]
fn empty_and_degenerate_blocks() {
    let engine = LogGrep::new(LogGrepConfig::default());
    for raw in [&b""[..], b"\n", b"single line", b"\n\n\n"] {
        let archive = engine.compress_to_archive(raw).unwrap();
        let want: Vec<Vec<u8>> = loggrep::engine::split_lines(raw)
            .into_iter()
            .map(|l| l.to_vec())
            .collect();
        assert_eq!(archive.reconstruct_all().unwrap(), want, "raw {raw:?}");
    }
}
