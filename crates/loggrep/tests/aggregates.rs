//! Aggregates on compressed Capsules: layer-pushdown guarantees (metadata
//! verbs never decompress anything; dictionary-backed top-K touches at
//! most the dictionary Capsule), raw-text oracle cross-checks, and
//! thread-count / cache invariance over the full workloads catalog.

use loggrep::query::lang::AggSpec;
use loggrep::vector::VectorMeta;
use loggrep::{AggLayer, AggResult, Archive, LogGrep, LogGrepConfig, Query};
use std::collections::HashMap;

/// Per-log raw size for the catalog sweeps (same tradeoff as the
/// parallel-determinism sweeps: several groups and thousands of rows).
const LOG_BYTES: usize = 32 * 1024;

fn engine(threads: usize) -> LogGrep {
    LogGrep::new(LogGrepConfig {
        threads,
        ..LogGrepConfig::default()
    })
}

/// Every `(template, slot)` stored as a nominal vector.
fn nominal_slots(archive: &Archive) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (t, group) in archive.capsule_box().groups.iter().enumerate() {
        for (v, meta) in group.vectors.iter().enumerate() {
            if matches!(meta, VectorMeta::Nominal { .. }) {
                out.push((t, v));
            }
        }
    }
    out
}

fn result_sum(agg: &AggResult) -> u64 {
    match agg {
        AggResult::Count(n) => *n,
        AggResult::CountByTemplate(groups) => groups.iter().map(|(_, c)| *c).sum(),
        AggResult::TopK { values, .. } => values.iter().map(|(_, c)| *c).sum(),
        AggResult::Histogram { buckets, .. } => buckets.iter().map(|(_, c)| *c).sum(),
    }
}

#[test]
fn metadata_verbs_never_decompress_across_the_catalog() {
    let engine = engine(1);
    for spec in workloads::all_logs() {
        let raw = spec.generate(17, LOG_BYTES);
        let archive = engine.open(engine.compress(&raw).unwrap());
        let total = u64::from(archive.total_lines());
        let specs = [
            AggSpec::Count,
            AggSpec::CountByTemplate,
            AggSpec::Histogram { bucket: 64 },
        ];
        for agg in specs {
            archive.clear_caches();
            let r = archive.query_agg(None, &agg).unwrap();
            assert_eq!(
                r.stats.capsules_decompressed, 0,
                "{}: `{agg}` decompressed a Capsule",
                spec.name
            );
            assert_eq!(
                r.stats.agg_layer,
                Some(AggLayer::Metadata),
                "{}: `{agg}` left the metadata layer",
                spec.name
            );
            assert_eq!(
                result_sum(&r.agg),
                total,
                "{}: `{agg}` does not account for every line",
                spec.name
            );
        }
    }
}

#[test]
fn nominal_top_k_reads_at_most_the_dictionary() {
    let engine = engine(1);
    for spec in workloads::all_logs() {
        let raw = spec.generate(29, LOG_BYTES);
        let archive = engine.open(engine.compress(&raw).unwrap());
        for (t, v) in nominal_slots(&archive) {
            let agg = AggSpec::TopK {
                k: 3,
                template: t,
                slot: v,
            };
            let predicted = archive.explain_agg(None, &agg).unwrap();
            assert!(
                predicted <= AggLayer::Dictionary,
                "{}: t{t}.v{v} predicted {predicted}",
                spec.name
            );
            archive.clear_caches();
            let r = archive.query_agg(None, &agg).unwrap();
            let bound = match predicted {
                AggLayer::Metadata => 0,
                _ => 1, // the dictionary Capsule; never the index Capsule
            };
            assert!(
                r.stats.capsules_decompressed <= bound,
                "{}: t{t}.v{v} decompressed {} (predicted {predicted})",
                spec.name,
                r.stats.capsules_decompressed
            );
            let rows = u64::from(archive.capsule_box().groups[t].rows());
            assert_eq!(
                result_sum(&r.agg),
                rows,
                "{}: t{t}.v{v} distribution does not cover every row",
                spec.name
            );
        }
    }
}

#[test]
fn constant_dictionary_top_k_is_pure_metadata() {
    // Values with pairwise-distinct non-alphanumeric sketches: each forms
    // its own single-value dictionary pattern, which is therefore
    // constant-only, so the whole distribution — values included — comes
    // from vector metadata with zero Capsules decompressed.
    let vals = ["up1", "down-2", "mid_3", "x.9"];
    let weights = [0usize, 0, 0, 1, 1, 2, 3];
    let mut raw = Vec::new();
    for i in 0..400 {
        raw.extend_from_slice(format!("evt {} done\n", vals[weights[i % weights.len()]]).as_bytes());
    }
    let engine = engine(1);
    let archive = engine.open(engine.compress(&raw).unwrap());
    let slots = nominal_slots(&archive);
    assert!(
        !slots.is_empty(),
        "expected the value column to be stored as a nominal vector"
    );
    let (t, v) = slots[0];
    let agg = AggSpec::TopK {
        k: 4,
        template: t,
        slot: v,
    };
    assert_eq!(archive.explain_agg(None, &agg).unwrap(), AggLayer::Metadata);
    let r = archive.query_agg(None, &agg).unwrap();
    assert_eq!(r.stats.capsules_decompressed, 0);
    assert_eq!(r.stats.agg_layer, Some(AggLayer::Metadata));

    // Oracle: tally the raw text.
    let mut oracle: HashMap<&str, u64> = HashMap::new();
    for i in 0..400 {
        *oracle.entry(vals[weights[i % weights.len()]]).or_insert(0) += 1;
    }
    let AggResult::TopK { values, .. } = &r.agg else {
        panic!("wrong result kind");
    };
    assert_eq!(values.len(), oracle.len());
    for (value, count) in values {
        let value = std::str::from_utf8(value).unwrap();
        assert_eq!(oracle[value], *count, "{value}");
    }
    assert!(
        values.windows(2).all(|w| w[0].1 >= w[1].1),
        "distribution must be count-descending"
    );

    // A filter that selects every line must route through the filtered
    // (Capsule-scan) path and still produce the identical distribution.
    let filtered = archive.query_agg(Some("evt"), &agg).unwrap();
    assert_eq!(filtered.agg, r.agg);
}

#[test]
fn filtered_count_matches_the_line_oracle() {
    let engine = engine(1);
    for spec in workloads::all_logs().into_iter().take(12) {
        let raw = spec.generate(31, LOG_BYTES);
        let archive = engine.open(engine.compress(&raw).unwrap());
        for command in &spec.queries {
            let q = Query::parse(command).unwrap();
            let oracle = raw[..raw.len() - 1]
                .split(|&b| b == b'\n')
                .filter(|l| q.expr.matches_line(l, logparse::DEFAULT_DELIMS))
                .count() as u64;
            let r = archive.query_agg(Some(command), &AggSpec::Count).unwrap();
            assert_eq!(
                r.agg,
                AggResult::Count(oracle),
                "{}: `{command}`",
                spec.name
            );
        }
    }
}

#[test]
fn aggregate_results_are_identical_across_threads_and_cache() {
    for spec in workloads::all_logs() {
        let raw = spec.generate(43, LOG_BYTES);
        let base_engine = engine(1);
        let base = base_engine.open(base_engine.compress(&raw).unwrap());
        let mut aggs = vec![
            AggSpec::Count,
            AggSpec::CountByTemplate,
            AggSpec::Histogram { bucket: 32 },
            // Whatever storage form t0.v0 has (including missing).
            AggSpec::TopK {
                k: 5,
                template: 0,
                slot: 0,
            },
        ];
        aggs.extend(nominal_slots(&base).into_iter().take(2).map(|(t, v)| {
            AggSpec::TopK {
                k: 5,
                template: t,
                slot: v,
            }
        }));
        let filter = spec.queries[0].as_str();
        let mut reference = Vec::new();
        for agg in &aggs {
            for f in [None, Some(filter)] {
                reference.push((agg.clone(), f, base.query_agg(f, agg).unwrap().agg));
            }
        }
        let variants: Vec<(&str, Archive)> = vec![
            ("4 threads", {
                let e = engine(4);
                e.open(e.compress(&raw).unwrap())
            }),
            ("cache off", {
                let e = LogGrep::new(LogGrepConfig {
                    threads: 1,
                    ..LogGrepConfig::without_cache()
                });
                e.open(e.compress(&raw).unwrap())
            }),
        ];
        for (label, archive) in &variants {
            for (agg, f, expected) in &reference {
                // Twice: the second run exercises the cache-hit path where
                // the cache is on.
                for round in 0..2 {
                    let got = archive.query_agg(*f, agg).unwrap();
                    assert_eq!(
                        &got.agg, expected,
                        "{}: `{agg}` filter {f:?} under {label}, round {round}",
                        spec.name
                    );
                }
            }
        }
    }
}
