//! Hand-rolled binary serialization for the CapsuleBox on-disk format.
//!
//! All integers are unsigned LEB128 varints (via [`codec::varint`]); byte
//! strings are length-prefixed. The reader checks bounds on every access so
//! corrupt buffers produce [`Error::Corrupt`] instead of panics.

use crate::error::{Error, Result};
use codec::varint;

/// An append-only wire writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a varint.
    pub fn put_u64(&mut self, v: u64) {
        varint::put_uvarint(&mut self.buf, v);
    }

    /// Appends a `u32` as a varint.
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(v as u64);
    }

    /// Appends a `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a single raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a delta-encoded ascending `u32` sequence.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sequence is not ascending.
    pub fn put_ascending_u32s(&mut self, values: &[u32]) {
        self.put_usize(values.len());
        let mut prev = 0u32;
        for (i, &v) in values.iter().enumerate() {
            if i == 0 {
                self.put_u32(v);
            } else {
                debug_assert!(v >= prev, "sequence not ascending");
                self.put_u32(v - prev);
            }
            prev = v;
        }
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked wire reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn corrupt(what: &str) -> Error {
        Error::Corrupt(format!("truncated {what}"))
    }

    /// Reads a varint.
    pub fn get_u64(&mut self) -> Result<u64> {
        let tail = self.buf.get(self.pos..).unwrap_or_default();
        let (v, n) = varint::get_uvarint(tail).ok_or_else(|| Self::corrupt("varint"))?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a length/count varint and rejects anything above `max`.
    ///
    /// This is the required entry point for any value that sizes an
    /// allocation: callers pass the tightest bound they know (usually
    /// [`Self::remaining`], since every wire element occupies at least
    /// one byte), so a four-byte varint can never reserve gigabytes.
    pub fn get_len(&mut self, max: usize) -> Result<usize> {
        let n = self.get_usize()?;
        if n > max {
            return Err(Error::Corrupt(format!("length {n} exceeds bound {max}")));
        }
        Ok(n)
    }

    /// Reads a `u32` varint, rejecting overflow.
    pub fn get_u32(&mut self) -> Result<u32> {
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| Error::Corrupt("u32 overflow".into()))
    }

    /// Reads a `usize` varint, rejecting overflow.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| Error::Corrupt("usize overflow".into()))
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| Self::corrupt("byte"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a `bool` byte (anything nonzero is true).
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_usize()?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("byte string"))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::corrupt("byte string"))?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a delta-encoded ascending `u32` sequence.
    pub fn get_ascending_u32s(&mut self) -> Result<Vec<u32>> {
        // Each entry takes at least one byte, so `remaining` bounds the
        // count: an impossible claim is rejected before reserving.
        let n = self.get_len(self.remaining())?;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let d = self.get_u32()?;
            let v = if i == 0 {
                d
            } else {
                prev.checked_add(d)
                    .ok_or_else(|| Error::Corrupt("ascending overflow".into()))?
            };
            out.push(v);
            prev = v;
        }
        Ok(out)
    }

    /// Reads `len` raw bytes.
    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("raw bytes"))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::corrupt("raw bytes"))?;
        self.pos = end;
        Ok(s)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// The standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c; // lint:allow(no-panic-in-decode) — const-evaluated; n < 256 by the loop bound
        n += 1;
    }
    table
};

/// CRC-32 checksum of `bytes`, used as the CapsuleBox integrity
/// trailer: it detects all single-bit flips and virtually all burst
/// corruption, so a damaged archive fails fast with [`Error::Corrupt`]
/// instead of parsing into a structurally-valid-but-wrong state.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = (c ^ u32::from(b)) & 0xFF;
        c = CRC_TABLE[idx as usize] ^ (c >> 8); // lint:allow(no-panic-in-decode) — idx is masked to 0..=255
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u32(12345);
        w.put_u8(7);
        w.put_bool(true);
        w.put_bytes(b"hello");
        w.put_ascending_u32s(&[3, 3, 10, 500]);
        w.put_raw(b"xyz");
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_u32().unwrap(), 12345);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_ascending_u32s().unwrap(), vec![3, 3, 10, 500]);
        assert_eq!(r.get_raw(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let mut w = Writer::new();
        w.put_bytes(b"hello world");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.get_bytes().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn u32_overflow_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let buf = w.into_bytes();
        assert!(Reader::new(&buf).get_u32().is_err());
    }

    #[test]
    fn hostile_sequence_count_rejected() {
        let mut w = Writer::new();
        w.put_usize(usize::MAX / 2); // Claims a huge element count.
        let buf = w.into_bytes();
        assert!(Reader::new(&buf).get_ascending_u32s().is_err());
    }

    #[test]
    fn get_len_enforces_bound() {
        let mut w = Writer::new();
        w.put_usize(100);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).get_len(100).unwrap(), 100);
        assert!(Reader::new(&buf).get_len(99).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {i}:{bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn empty_sequences() {
        let mut w = Writer::new();
        w.put_ascending_u32s(&[]);
        w.put_bytes(b"");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.get_ascending_u32s().unwrap().is_empty());
        assert_eq!(r.get_bytes().unwrap(), b"");
    }
}
