//! Engine configuration, including the ablation toggles of §6.3.

use logparse::ParserConfig;

/// Configuration for the LogGrep engine.
///
/// The defaults reproduce the full system as evaluated in the paper; the
/// `without_*` constructors produce the §6.3 ablations, and [`Self::sp`]
/// produces **LogGrep-SP** (static patterns only, the paper's first attempt
/// of §2.2).
#[derive(Debug, Clone)]
pub struct LogGrepConfig {
    /// Static-pattern parser configuration (5 % sampling by default).
    pub parser: ParserConfig,
    /// Fraction of a variable vector sampled for runtime-pattern extraction.
    pub value_sample_rate: f64,
    /// Duplication-rate threshold separating real (<) from nominal (>=)
    /// variable vectors (§4.1; paper uses 0.5).
    pub duplication_threshold: f64,
    /// Fraction of sampled values that must contain a candidate delimiter
    /// for a tree split to be accepted (paper: 95 %).
    pub split_coverage: f64,
    /// Delimiter attempts per leaf before marking it unsplitable (paper: 3).
    pub delimiter_attempts: u32,
    /// Maximum pattern-tree depth (bounds pattern size).
    pub max_tree_depth: u32,
    /// Vectors smaller than this stay Plain: metadata would outweigh gains.
    pub min_vector_for_patterns: usize,
    /// If more than this fraction of values fail to match the extracted
    /// pattern, the vector falls back to Plain storage.
    pub max_outlier_rate: f64,
    /// Extract runtime patterns in real variable vectors ("w/o real" off).
    pub use_runtime_real: bool,
    /// Extract runtime patterns in nominal variable vectors ("w/o nomi" off).
    pub use_runtime_nominal: bool,
    /// Filter Capsules with their stamps during queries ("w/o stamp" off).
    pub use_stamps: bool,
    /// Pad values to fixed length and search with Boyer-Moore; when false,
    /// Capsules are delimiter-separated and scanned with KMP ("w/o fixed").
    pub fixed_length: bool,
    /// Cache query results ("w/o cache" off).
    pub use_query_cache: bool,
    /// Second-stage codec name (see [`codec::by_name`]), or `"auto"` for
    /// the per-capsule cost model that picks LzmaLite, Deflate, or FastLz
    /// from payload size and a sampled redundancy probe. The paper uses
    /// LZMA everywhere, reproduced here by `"lzma-lite"`; `"auto"` keeps
    /// LzmaLite where its ratio edge pays (small dictionary-class
    /// capsules) and takes the 3–6× faster stages elsewhere.
    pub codec_name: String,
    /// Seed for the randomized choices in tree expansion (reproducibility).
    pub seed: u64,
    /// Worker-pool size for parallel capsule encoding and query execution;
    /// `0` (the default) resolves through `LOGGREP_THREADS` /
    /// `available_parallelism`. Output is byte-identical for every value.
    pub threads: usize,
    /// Maximum entries the per-archive query cache holds before LRU
    /// eviction; `0` means unbounded.
    pub query_cache_entries: usize,
}

impl Default for LogGrepConfig {
    fn default() -> Self {
        Self {
            parser: ParserConfig::default(),
            value_sample_rate: 0.05,
            duplication_threshold: 0.5,
            split_coverage: 0.95,
            delimiter_attempts: 3,
            max_tree_depth: 8,
            min_vector_for_patterns: 16,
            max_outlier_rate: 0.3,
            use_runtime_real: true,
            use_runtime_nominal: true,
            use_stamps: true,
            fixed_length: true,
            use_query_cache: true,
            codec_name: "auto".to_string(),
            seed: 0x1095_5e23,
            threads: 0,
            query_cache_entries: 256,
        }
    }
}

impl LogGrepConfig {
    /// LogGrep-SP: static patterns only (§2.2) — no runtime patterns at all.
    pub fn sp() -> Self {
        Self {
            use_runtime_real: false,
            use_runtime_nominal: false,
            ..Self::default()
        }
    }

    /// The "w/o real" ablation: no runtime patterns in real vectors.
    pub fn without_real() -> Self {
        Self {
            use_runtime_real: false,
            ..Self::default()
        }
    }

    /// The "w/o nomi" ablation: no runtime patterns in nominal vectors.
    pub fn without_nominal() -> Self {
        Self {
            use_runtime_nominal: false,
            ..Self::default()
        }
    }

    /// The "w/o stamp" ablation: Capsule stamps are not used for filtering.
    pub fn without_stamps() -> Self {
        Self {
            use_stamps: false,
            ..Self::default()
        }
    }

    /// The "w/o fixed" ablation: variant-length Capsules queried with KMP.
    pub fn without_fixed() -> Self {
        Self {
            fixed_length: false,
            ..Self::default()
        }
    }

    /// The "w/o cache" ablation: the query cache is disabled.
    pub fn without_cache() -> Self {
        Self {
            use_query_cache: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = LogGrepConfig::default();
        assert!((c.value_sample_rate - 0.05).abs() < 1e-9);
        assert!((c.duplication_threshold - 0.5).abs() < 1e-9);
        assert!((c.split_coverage - 0.95).abs() < 1e-9);
        assert_eq!(c.delimiter_attempts, 3);
        assert!(c.use_runtime_real && c.use_runtime_nominal);
        assert!(c.use_stamps && c.fixed_length && c.use_query_cache);
    }

    #[test]
    fn parallelism_defaults_to_auto_with_bounded_cache() {
        let c = LogGrepConfig::default();
        assert_eq!(c.threads, 0); // 0 = LOGGREP_THREADS / available_parallelism.
        assert!(c.query_cache_entries > 0);
    }

    #[test]
    fn ablations_flip_exactly_one_knob() {
        assert!(!LogGrepConfig::without_real().use_runtime_real);
        assert!(!LogGrepConfig::without_nominal().use_runtime_nominal);
        assert!(!LogGrepConfig::without_stamps().use_stamps);
        assert!(!LogGrepConfig::without_fixed().fixed_length);
        assert!(!LogGrepConfig::without_cache().use_query_cache);
        let sp = LogGrepConfig::sp();
        assert!(!sp.use_runtime_real && !sp.use_runtime_nominal);
        assert!(sp.use_stamps);
    }
}
