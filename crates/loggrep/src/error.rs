//! Error type shared across the crate.

use std::fmt;

/// Errors produced while compressing, opening or querying a CapsuleBox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input contains a byte LogGrep cannot store (NUL, reserved as the
    /// pad byte).
    UnsupportedByte {
        /// Offset of the offending byte in the input.
        offset: usize,
    },
    /// A CapsuleBox buffer is truncated or structurally invalid.
    Corrupt(String),
    /// A query string failed to parse.
    BadQuery(String),
    /// An inner codec failed to decompress a Capsule.
    Codec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnsupportedByte { offset } => {
                write!(f, "input contains NUL byte at offset {offset}")
            }
            Error::Corrupt(msg) => write!(f, "corrupt capsule box: {msg}"),
            Error::BadQuery(msg) => write!(f, "bad query: {msg}"),
            Error::Codec(msg) => write!(f, "codec failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<codec::CodecError> for Error {
    fn from(e: codec::CodecError) -> Self {
        Error::Codec(e.reason)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
