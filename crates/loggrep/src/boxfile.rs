//! The CapsuleBox: LogGrep's on-disk container for one compressed log block
//! (§3, Figure 1) — metadata (static patterns, runtime patterns, stamps,
//! row maps) plus independently compressed Capsules.

use crate::capsule::{codec_by_id, CapsuleMeta, Layout, Stamp};
use crate::error::{Error, Result};
use crate::typemask::TypeMask;
use crate::vector::VectorMeta;
use crate::wire::{Reader, Writer};
use logparse::{Piece, Template};

/// Magic bytes of the container format.
const MAGIC: &[u8; 4] = b"LGRB";
/// Current format version. Version 2 added the CRC-32 integrity
/// trailer and requires the metadata stream to be fully consumed.
/// Version 3 added per-value occurrence counts to nominal vector
/// metadata (aggregate pushdown reads them instead of the Capsules).
const VERSION: u8 = 3;

/// Metadata of one group (all entries of one static pattern).
#[derive(Debug, Clone)]
pub struct GroupMeta {
    /// The static pattern.
    pub template: Template,
    /// Original line number of each row, ascending (the logical timestamps
    /// used to restore global order during reconstruction).
    pub line_numbers: Vec<u32>,
    /// One encoded vector per template slot.
    pub vectors: Vec<VectorMeta>,
}

impl GroupMeta {
    /// Number of rows (entries) in this group.
    pub fn rows(&self) -> u32 {
        self.line_numbers.len() as u32
    }
}

/// A compressed log block: all Capsules plus their metadata.
#[derive(Debug, Clone)]
pub struct CapsuleBox {
    /// Per-group metadata (index = group id = template id).
    pub groups: Vec<GroupMeta>,
    /// Capsule table; `VectorMeta` refers into it by id.
    pub capsules: Vec<CapsuleMeta>,
    /// Concatenated compressed Capsule payloads.
    pub blob: Vec<u8>,
    /// Number of lines in the original block.
    pub total_lines: u32,
    /// Size of the original block in bytes.
    pub raw_size: u64,
    /// Whether Capsules use fixed-length padding (config echo).
    pub fixed_length: bool,
}

impl CapsuleBox {
    /// Total serialized size in bytes (what the compression ratio counts).
    pub fn compressed_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the box.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(MAGIC);
        w.put_u8(VERSION);
        w.put_bool(self.fixed_length);
        w.put_u32(self.total_lines);
        w.put_u64(self.raw_size);

        w.put_usize(self.groups.len());
        for g in &self.groups {
            let pieces = g.template.pieces();
            w.put_usize(pieces.len());
            for p in pieces {
                match p {
                    Piece::Static(s) => {
                        w.put_u8(0);
                        w.put_bytes(s);
                    }
                    Piece::Slot(i) => {
                        w.put_u8(1);
                        w.put_usize(*i);
                    }
                }
            }
            w.put_ascending_u32s(&g.line_numbers);
            w.put_usize(g.vectors.len());
            for v in &g.vectors {
                v.write(&mut w);
            }
        }

        w.put_usize(self.capsules.len());
        for c in &self.capsules {
            match c.layout {
                Layout::Padded { width } => {
                    w.put_u8(0);
                    w.put_u32(width);
                }
                Layout::Delimited => w.put_u8(1),
                Layout::Raw => w.put_u8(2),
            }
            w.put_u32(c.rows);
            c.stamp.write(&mut w);
            w.put_u64(c.offset);
            w.put_u64(c.clen);
            w.put_u8(c.codec);
        }

        w.put_bytes(&self.blob);
        let mut bytes = w.into_bytes();
        let crc = crate::wire::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Deserializes a box.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation, bad magic, a CRC-32
    /// trailer mismatch, or structural inconsistencies (e.g. capsule
    /// payload ranges outside the blob, group rows not summing to
    /// `total_lines`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        // The CRC-32 trailer goes first: any bit-level damage is caught
        // before the damaged bytes are interpreted structurally.
        let body_len = bytes
            .len()
            .checked_sub(4)
            .ok_or_else(|| Error::Corrupt("missing checksum trailer".into()))?;
        let body = bytes
            .get(..body_len)
            .ok_or_else(|| Error::Corrupt("missing checksum trailer".into()))?;
        let want = match bytes.get(body_len..) {
            Some([a, b, c, d]) => u32::from_le_bytes([*a, *b, *c, *d]),
            _ => return Err(Error::Corrupt("missing checksum trailer".into())),
        };
        if crate::wire::crc32(body) != want {
            return Err(Error::Corrupt("checksum mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.get_raw(4)? != MAGIC {
            return Err(Error::Corrupt("bad magic".into()));
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(Error::Corrupt(format!("unsupported version {version}")));
        }
        let fixed_length = r.get_bool()?;
        let total_lines = r.get_u32()?;
        let raw_size = r.get_u64()?;

        let ngroups = r.get_len(r.remaining())?;
        let mut groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let npieces = r.get_len(r.remaining())?;
            let mut pieces = Vec::with_capacity(npieces);
            let mut next_slot = 0usize;
            for _ in 0..npieces {
                match r.get_u8()? {
                    0 => pieces.push(Piece::Static(r.get_bytes()?.to_vec())),
                    1 => {
                        let i = r.get_usize()?;
                        if i != next_slot {
                            return Err(Error::Corrupt("non-sequential slots".into()));
                        }
                        next_slot += 1;
                        pieces.push(Piece::Slot(i));
                    }
                    t => return Err(Error::Corrupt(format!("bad piece tag {t}"))),
                }
            }
            let template = Template::from_pieces(pieces);
            let line_numbers = r.get_ascending_u32s()?;
            let nvec = r.get_len(r.remaining())?;
            if nvec != template.slots() {
                return Err(Error::Corrupt("vector/slot mismatch".into()));
            }
            let mut vectors = Vec::with_capacity(nvec);
            for _ in 0..nvec {
                vectors.push(VectorMeta::read(&mut r)?);
            }
            groups.push(GroupMeta {
                template,
                line_numbers,
                vectors,
            });
        }

        let ncaps = r.get_len(r.remaining())?;
        let mut capsules = Vec::with_capacity(ncaps);
        for _ in 0..ncaps {
            let layout = match r.get_u8()? {
                0 => {
                    let width = r.get_u32()?;
                    if width == 0 {
                        return Err(Error::Corrupt("zero-width capsule".into()));
                    }
                    Layout::Padded { width }
                }
                1 => Layout::Delimited,
                2 => Layout::Raw,
                t => return Err(Error::Corrupt(format!("bad layout tag {t}"))),
            };
            let rows = r.get_u32()?;
            let stamp = Stamp::read(&mut r)?;
            let offset = r.get_u64()?;
            let clen = r.get_u64()?;
            let codec = r.get_u8()?;
            capsules.push(CapsuleMeta {
                layout,
                rows,
                stamp,
                offset,
                clen,
                codec,
            });
        }

        let blob = r.get_bytes()?.to_vec();
        if r.remaining() != 0 {
            return Err(Error::Corrupt("trailing bytes after blob".into()));
        }
        // Validate capsule ranges and references up front so later accesses
        // cannot go out of bounds.
        for c in &capsules {
            let end = c
                .offset
                .checked_add(c.clen)
                .ok_or_else(|| Error::Corrupt("capsule range overflow".into()))?;
            if end > blob.len() as u64 {
                return Err(Error::Corrupt("capsule range outside blob".into()));
            }
            codec_by_id(c.codec)?;
        }
        let mut rows_total = 0u64;
        for g in &groups {
            let rows = g.rows();
            rows_total += u64::from(rows);
            for v in &g.vectors {
                for cid in v.capsules() {
                    if cid as usize >= capsules.len() {
                        return Err(Error::Corrupt("capsule id out of range".into()));
                    }
                }
                match v {
                    VectorMeta::Real { outlier_rows, .. } => {
                        // Outlier rows must be vector-local, strictly
                        // ascending, and in range — `pattern_row_map` and
                        // the outlier lookup in query exec rely on it.
                        let ascending = outlier_rows
                            .iter()
                            .zip(outlier_rows.iter().skip(1))
                            .all(|(a, b)| a < b);
                        if !ascending || outlier_rows.last().is_some_and(|&last| last >= rows) {
                            return Err(Error::Corrupt("outlier rows out of range".into()));
                        }
                    }
                    VectorMeta::Nominal {
                        patterns,
                        dict_len,
                        value_counts,
                        ..
                    } => {
                        // Region arithmetic must not overflow, and the
                        // per-pattern counts must sum to the dictionary
                        // length (the §5.2 direct-jump computation).
                        VectorMeta::dict_regions(patterns)?;
                        let counted: u64 =
                            patterns.iter().map(|p| u64::from(p.count)).sum();
                        if counted != u64::from(*dict_len) {
                            return Err(Error::Corrupt("dictionary count mismatch".into()));
                        }
                        // Each row stores exactly one dictionary index, so
                        // the per-value occurrence counts must sum to the
                        // group's row count; aggregate pushdown trusts them
                        // instead of reading the index Capsule.
                        let occurrences: u64 =
                            value_counts.iter().map(|&c| u64::from(c)).sum();
                        if occurrences != u64::from(rows) {
                            return Err(Error::Corrupt(
                                "dictionary value counts do not sum to rows".into(),
                            ));
                        }
                    }
                    VectorMeta::Plain { .. } => {}
                }
            }
            // Line numbers are ascending by wire construction; they must
            // also be strictly ascending (each row is a distinct line)
            // and in range.
            let strict = g
                .line_numbers
                .iter()
                .zip(g.line_numbers.iter().skip(1))
                .all(|(a, b)| a < b);
            if !strict {
                return Err(Error::Corrupt("duplicate line numbers".into()));
            }
            if let Some(&last) = g.line_numbers.last() {
                if last >= total_lines {
                    return Err(Error::Corrupt("line number out of range".into()));
                }
            }
        }
        // Groups partition the block's lines, so their row counts must sum
        // to `total_lines`; `Archive::line_index` sizes its table by it.
        if rows_total != u64::from(total_lines) {
            return Err(Error::Corrupt("group rows do not sum to total_lines".into()));
        }

        Ok(Self {
            groups,
            capsules,
            blob,
            total_lines,
            raw_size,
            fixed_length,
        })
    }

    /// Decompresses one Capsule payload.
    pub fn decompress_capsule(&self, id: u32) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.decompress_capsule_into(id, &mut out)?;
        Ok(out)
    }

    /// Decompresses one Capsule payload into a caller-provided buffer
    /// (cleared first), reusing its capacity — the arena-friendly form the
    /// query engine's payload cache uses.
    pub fn decompress_capsule_into(&self, id: u32, out: &mut Vec<u8>) -> Result<()> {
        let meta = self
            .capsules
            .get(id as usize)
            .ok_or_else(|| Error::Corrupt("capsule id out of range".into()))?;
        let start = usize::try_from(meta.offset)
            .map_err(|_| Error::Corrupt("capsule offset overflow".into()))?;
        let clen = usize::try_from(meta.clen)
            .map_err(|_| Error::Corrupt("capsule length overflow".into()))?;
        let end = start
            .checked_add(clen)
            .ok_or_else(|| Error::Corrupt("capsule range overflow".into()))?;
        let payload = self
            .blob
            .get(start..end)
            .ok_or_else(|| Error::Corrupt("capsule range outside blob".into()))?;
        let codec = codec_by_id(meta.codec)?;
        codec.decompress_tracked_into(payload, out)?;
        Ok(())
    }
}

/// An opened CapsuleBox with a query engine attached.
///
/// See [`crate::engine::LogGrep`] for compression and
/// [`Archive::query`] for the grep-like interface.
#[derive(Debug)]
pub struct Archive {
    pub(crate) boxed: CapsuleBox,
    pub(crate) cache: crate::query::cache::QueryCache,
    pub(crate) use_query_cache: bool,
    pub(crate) use_stamps: bool,
    /// Query worker-pool size; `0` resolves through `LOGGREP_THREADS` /
    /// `available_parallelism`. Results are identical for every value.
    pub(crate) threads: usize,
    /// Lazily built map: line number → (group id, group row).
    line_index: std::sync::OnceLock<Vec<(u32, u32)>>,
    /// Recycled decompression buffers: query sessions decompress Capsules
    /// into these and return them on session drop, so repeated queries stop
    /// re-allocating megabytes of payload Vecs (see `ExecShared`).
    arena: parking_lot::Mutex<Vec<Vec<u8>>>,
}

/// Most buffers the arena will hold; beyond it, returned buffers are freed.
/// Bounds idle memory at `ARENA_MAX_BUFFERS ×` the largest payload while
/// still covering every Capsule of a typical block.
const ARENA_MAX_BUFFERS: usize = 64;

impl Archive {
    /// Opens an archive from serialized CapsuleBox bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_box(CapsuleBox::from_bytes(bytes)?))
    }

    /// Opens an archive from an in-memory CapsuleBox.
    pub fn from_box(boxed: CapsuleBox) -> Self {
        open_archives_gauge().add(1);
        Self {
            boxed,
            cache: crate::query::cache::QueryCache::new(),
            use_query_cache: true,
            use_stamps: true,
            threads: 0,
            line_index: std::sync::OnceLock::new(),
            arena: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Takes a recycled decompression buffer (empty, capacity retained), or
    /// a fresh one when the arena is dry.
    pub(crate) fn take_buffer(&self) -> Vec<u8> {
        self.arena.lock().pop().unwrap_or_default()
    }

    /// Returns a buffer to the arena for the next query session. The buffer
    /// is cleared here; its capacity is what gets recycled.
    pub(crate) fn return_buffer(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut arena = self.arena.lock();
        if arena.len() < ARENA_MAX_BUFFERS {
            arena.push(buf);
        }
    }

    /// Number of buffers currently parked in the decompression arena
    /// (test/telemetry visibility for the recycling path).
    pub fn arena_buffers(&self) -> usize {
        self.arena.lock().len()
    }

    /// The line-number → (group, row) map, built on first use.
    pub(crate) fn line_index(&self) -> &[(u32, u32)] {
        self.line_index.get_or_init(|| {
            // lint:allow(no-untrusted-prealloc) — from_bytes enforces Σ group rows == total_lines, so this allocation is bounded by the archive's actual row count
            let mut index = vec![(u32::MAX, u32::MAX); self.boxed.total_lines as usize];
            for (gid, g) in self.boxed.groups.iter().enumerate() {
                for (row, &lineno) in g.line_numbers.iter().enumerate() {
                    if let Some(slot) = index.get_mut(lineno as usize) {
                        *slot = (gid as u32, row as u32);
                    }
                }
            }
            index
        })
    }

    /// Disables/enables the query cache ("w/o cache" ablation).
    pub fn set_query_cache(&mut self, on: bool) {
        self.use_query_cache = on;
    }

    /// Disables/enables stamp filtering ("w/o stamp" ablation).
    pub fn set_stamps(&mut self, on: bool) {
        self.use_stamps = on;
    }

    /// Sets the query worker-pool size (`0` = auto). Query results and
    /// statistics are identical for every value; only latency changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Caps the query cache at `entries` entries (LRU; `0` = unbounded).
    pub fn set_query_cache_entries(&mut self, entries: usize) {
        self.cache.set_capacity(entries);
    }

    /// Drops the query-result cache, so benchmarks can re-time a query cold.
    pub fn clear_caches(&self) {
        self.cache.clear();
    }

    /// Number of entries currently held by the query cache (test/telemetry
    /// visibility for the LRU bound).
    pub fn query_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Entries the query cache has evicted under its LRU bound so far.
    pub fn query_cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// The underlying box.
    pub fn capsule_box(&self) -> &CapsuleBox {
        &self.boxed
    }

    /// Number of lines stored.
    pub fn total_lines(&self) -> u32 {
        self.boxed.total_lines
    }
}

/// The `archive.open` gauge: archives currently open in this process
/// (every constructor counts up, [`Drop`] counts down).
fn open_archives_gauge() -> &'static telemetry::Gauge {
    static G: std::sync::OnceLock<&'static telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| telemetry::gauge("archive.open"))
}

impl Drop for Archive {
    fn drop(&mut self) {
        open_archives_gauge().add(-1);
    }
}

/// Builds a `TypeMask` summary over a whole group's static text — used by
/// the §2.2-style strictness experiments.
pub fn group_static_mask(group: &GroupMeta) -> TypeMask {
    TypeMask::of(&group.template.static_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_box() -> CapsuleBox {
        // Hand-assemble a one-group, one-plain-vector box.
        let values: Vec<&[u8]> = vec![b"aa", b"b"];
        let (payload, layout, stamp, rows) = crate::capsule::build_payload(values, true);
        let codec = codec::by_name("store").unwrap();
        let compressed = codec.compress(&payload);
        let capsule = CapsuleMeta {
            layout,
            rows,
            stamp,
            offset: 0,
            clen: compressed.len() as u64,
            codec: 0,
        };
        let template = Template::from_pieces(vec![
            Piece::Static(b"v=".to_vec()),
            Piece::Slot(0),
        ]);
        CapsuleBox {
            groups: vec![GroupMeta {
                template,
                line_numbers: vec![0, 1],
                vectors: vec![VectorMeta::Plain { capsule: 0 }],
            }],
            capsules: vec![capsule],
            blob: compressed,
            total_lines: 2,
            raw_size: 9,
            fixed_length: true,
        }
    }

    #[test]
    fn roundtrip_serialization() {
        let b = tiny_box();
        let bytes = b.to_bytes();
        let got = CapsuleBox::from_bytes(&bytes).unwrap();
        assert_eq!(got.total_lines, 2);
        assert_eq!(got.raw_size, 9);
        assert_eq!(got.groups.len(), 1);
        assert_eq!(got.groups[0].rows(), 2);
        assert_eq!(got.capsules.len(), 1);
        let payload = got.decompress_capsule(0).unwrap();
        assert_eq!(payload, b"aab\0");
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        let bytes = tiny_box().to_bytes();
        for cut in 0..bytes.len() {
            let _ = CapsuleBox::from_bytes(&bytes[..cut]);
        }
        let mut bad = bytes.clone();
        for i in 0..bad.len() {
            bad[i] ^= 0x1;
            let _ = CapsuleBox::from_bytes(&bad);
            bad[i] ^= 0x1;
        }
    }

    #[test]
    fn single_bit_flips_rejected_by_checksum() {
        let bytes = tiny_box().to_bytes();
        let mut bad = bytes.clone();
        for i in 0..bad.len() {
            for bit in [0x01u8, 0x10, 0x80] {
                bad[i] ^= bit;
                assert!(CapsuleBox::from_bytes(&bad).is_err(), "flip {i}:{bit:#x} accepted");
                bad[i] ^= bit;
            }
        }
    }

    #[test]
    fn rows_must_sum_to_total_lines() {
        let mut b = tiny_box();
        b.total_lines = 3; // Lies: the only group has 2 rows.
        let bytes = b.to_bytes(); // to_bytes stamps a valid CRC over the lie.
        assert!(CapsuleBox::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let bytes = tiny_box().to_bytes();
        let mut body = bytes[..bytes.len() - 4].to_vec();
        body.push(0xAB);
        let crc = crate::wire::crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(CapsuleBox::from_bytes(&body).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = tiny_box().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CapsuleBox::from_bytes(&bytes),
            Err(Error::Corrupt(_))
        ));
    }
}
