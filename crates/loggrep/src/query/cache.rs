//! The Query Cache (§3): a map from query command to its location result,
//! so repeated queries — common in the *refining mode* where an engineer
//! builds a command up gradually — skip the matching phase entirely.

use parking_lot::Mutex;
use std::collections::HashMap;

/// A thread-safe query-result cache keyed by the raw query text.
#[derive(Debug, Default)]
pub struct QueryCache {
    inner: Mutex<HashMap<String, Vec<u32>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a prior result (cloned line-number list).
    pub fn get(&self, query: &str) -> Option<Vec<u32>> {
        let found = self.inner.lock().get(query).cloned();
        match found {
            Some(v) => {
                *self.hits.lock() += 1;
                Some(v)
            }
            None => {
                *self.misses.lock() += 1;
                None
            }
        }
    }

    /// Stores a result.
    pub fn put(&self, query: &str, lines: Vec<u32>) {
        self.inner.lock().insert(query.to_string(), lines);
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Drops all entries and counters.
    pub fn clear(&self) {
        self.inner.lock().clear();
        *self.hits.lock() = 0;
        *self.misses.lock() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let c = QueryCache::new();
        assert_eq!(c.get("q"), None);
        c.put("q", vec![1, 2, 3]);
        assert_eq!(c.get("q"), Some(vec![1, 2, 3]));
        assert_eq!(c.counters(), (1, 1));
        c.clear();
        assert_eq!(c.get("q"), None);
    }
}
