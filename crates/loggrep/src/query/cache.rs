//! The Query Cache (§3): a map from query command to its location result,
//! so repeated queries — common in the *refining mode* where an engineer
//! builds a command up gradually — skip the matching phase entirely.
//!
//! Line queries and aggregate queries share the cache (and its LRU bound)
//! but live in **disjoint key spaces**: a cached line result can never be
//! returned for an aggregate over the same filter, or vice versa, no
//! matter how the raw key strings collide.
//!
//! The cache is **bounded**: once it holds `capacity` entries, storing a
//! new result evicts the least-recently-used one (refining sessions touch a
//! handful of commands; an unbounded map would grow with every distinct
//! query ever run against a long-lived archive). Evictions are counted
//! locally and on the `query.cache.evictions` telemetry counter.

use crate::query::agg::AggResult;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default entry cap (see [`crate::LogGrepConfig::query_cache_entries`]).
pub const DEFAULT_CAPACITY: usize = 256;

/// The `query.cache.entries` gauge: live entries summed across every
/// cache in the process (each cache adds on insert and subtracts on
/// evict/clear/drop), so `/metrics` shows total resident results.
fn entries_gauge() -> &'static telemetry::Gauge {
    static G: std::sync::OnceLock<&'static telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| telemetry::gauge("query.cache.entries"))
}

/// A typed cache key: the enum discriminant separates the line-query and
/// aggregate key spaces structurally, so no string convention can make
/// them collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// A line query, keyed by its raw command text.
    Lines(String),
    /// An aggregate query, keyed by `offset|spec|filter` (see
    /// `agg_cache_key`).
    Agg(String),
}

/// A cached result, matching its [`Key`]'s variant.
#[derive(Debug, Clone)]
enum Cached {
    Lines(Vec<u32>),
    Agg(AggResult),
}

#[derive(Debug)]
struct Entry {
    value: Cached,
    /// Logical timestamp of the last get/put touching this entry.
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<Key, Entry>,
    /// Monotonic logical clock driving LRU order.
    tick: u64,
    /// Maximum entries before eviction; 0 = unbounded.
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, LRU-bounded query-result cache keyed by the raw query
/// text.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl QueryCache {
    /// Creates an empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` entries
    /// (`0` = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                capacity,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Changes the entry cap, evicting LRU entries if now over it.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        while over_capacity(&inner) {
            evict_lru(&mut inner);
        }
    }

    /// Looks up a prior line-query result (cloned line-number list).
    pub fn get(&self, query: &str) -> Option<Vec<u32>> {
        match self.get_value(&Key::Lines(query.to_string()))? {
            Cached::Lines(lines) => Some(lines),
            // Unreachable: a `Key::Lines` entry always stores
            // `Cached::Lines`. Fail as a miss rather than panic.
            Cached::Agg(_) => None,
        }
    }

    /// Stores a line-query result, evicting the least-recently-used entry
    /// if full.
    pub fn put(&self, query: &str, lines: Vec<u32>) {
        self.put_value(Key::Lines(query.to_string()), Cached::Lines(lines));
    }

    /// Looks up a prior aggregate result.
    pub fn get_agg(&self, key: &str) -> Option<AggResult> {
        match self.get_value(&Key::Agg(key.to_string()))? {
            Cached::Agg(agg) => Some(agg),
            // Unreachable: see [`QueryCache::get`].
            Cached::Lines(_) => None,
        }
    }

    /// Stores an aggregate result, evicting the least-recently-used entry
    /// if full.
    pub fn put_agg(&self, key: &str, agg: AggResult) {
        self.put_value(Key::Agg(key.to_string()), Cached::Agg(agg));
    }

    fn get_value(&self, key: &Key) -> Option<Cached> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn put_value(&self, key: Key, value: Cached) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return;
        }
        if inner.capacity > 0 && inner.map.len() >= inner.capacity {
            evict_lru(&mut inner);
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        entries_gauge().add(1);
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of entries evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and counters (the capacity is kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        entries_gauge().add(-(inner.map.len() as i64));
        inner.map.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }
}

impl Drop for QueryCache {
    fn drop(&mut self) {
        // Keep the process-wide entries gauge balanced when an archive
        // (and its cache) goes away.
        let inner = self.inner.lock();
        entries_gauge().add(-(inner.map.len() as i64));
    }
}

fn over_capacity(inner: &Inner) -> bool {
    inner.capacity > 0 && inner.map.len() > inner.capacity
}

/// Removes the least-recently-used entry. O(entries), which is fine at the
/// small caps this cache runs with.
fn evict_lru(inner: &mut Inner) {
    let victim = inner
        .map
        .iter()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, _)| k.clone());
    if let Some(victim) = victim {
        inner.map.remove(&victim);
        inner.evictions += 1;
        entries_gauge().add(-1);
        telemetry::counter!("query.cache.evictions", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let c = QueryCache::new();
        assert_eq!(c.get("q"), None);
        c.put("q", vec![1, 2, 3]);
        assert_eq!(c.get("q"), Some(vec![1, 2, 3]));
        assert_eq!(c.counters(), (1, 1));
        c.clear();
        assert_eq!(c.get("q"), None);
    }

    #[test]
    fn lru_eviction_fires_at_the_cap() {
        let c = QueryCache::with_capacity(2);
        c.put("a", vec![1]);
        c.put("b", vec![2]);
        assert_eq!(c.evictions(), 0);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(c.get("a"), Some(vec![1]));
        c.put("c", vec![3]);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("b"), None, "LRU entry evicted");
        assert_eq!(c.get("a"), Some(vec![1]));
        assert_eq!(c.get("c"), Some(vec![3]));
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let c = QueryCache::with_capacity(2);
        c.put("a", vec![1]);
        c.put("b", vec![2]);
        c.put("a", vec![9]);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get("a"), Some(vec![9]));
        assert_eq!(c.get("b"), Some(vec![2]));
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let c = QueryCache::with_capacity(8);
        for i in 0..8 {
            c.put(&format!("q{i}"), vec![i]);
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 5);
        // The three most recently stored survive.
        for i in 5..8 {
            assert_eq!(c.get(&format!("q{i}")), Some(vec![i]), "q{i}");
        }
    }

    #[test]
    fn line_and_agg_key_spaces_never_cross() {
        let c = QueryCache::new();
        c.put("k", vec![1, 2]);
        assert_eq!(c.get_agg("k"), None, "line entry must not answer an aggregate");
        c.put_agg("k", AggResult::Count(7));
        assert_eq!(c.get("k"), Some(vec![1, 2]));
        assert_eq!(c.get_agg("k"), Some(AggResult::Count(7)));
        assert_eq!(c.len(), 2, "same string, two distinct entries");
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let c = QueryCache::with_capacity(0);
        for i in 0..1000u32 {
            c.put(&format!("q{i}"), vec![i]);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.evictions(), 0);
    }
}
